from setuptools import setup

# Offline environments lack the `wheel` package that PEP 660 editable
# installs require; this stub enables `pip install -e . --no-use-pep517`.
setup()
