"""Interrupt system: service request nodes and per-core arbitration.

Automotive workloads are interrupt-driven ("most of the processing
activities are triggered directly by interrupts", paper Section 1).  Every
peripheral owns one or more Service Request Nodes (SRNs); each SRN has a
priority and a target service provider — the TriCore, the PCP, or a DMA
channel — exactly the TriCore interrupt-router structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.simulator import Component


@dataclass
class ServiceRequestNode:
    id: int
    name: str
    priority: int
    core: str = "tc"            # "tc", "pcp", or "dma"
    dma_channel: Optional[int] = None
    pending: bool = False
    raised_count: int = 0
    taken_count: int = 0
    #: per-SRN observation wires (the MCDS taps individual request lines)
    raised_sid: int = -1
    taken_sid: int = -1


def srn_raised_signal(name: str) -> str:
    """Hub signal fired when the named SRN raises a request."""
    return f"irq.raised.{name}"


def srn_taken_signal(name: str) -> str:
    """Hub signal fired when the named SRN is taken for service."""
    return f"irq.taken.{name}"


class InterruptRouter(Component):
    """Holds all SRNs and answers 'highest pending request for core X'."""

    name = "icu"

    def __init__(self, hub: EventHub) -> None:
        self.hub = hub
        self.srns: Dict[int, ServiceRequestNode] = {}
        self._by_core: Dict[str, List[ServiceRequestNode]] = {}
        #: core name -> single-element pending-request count, shared with
        #: the service providers so their per-cycle poll is one list read
        #: instead of a scan over the priority-sorted SRN list
        self._pending_cells: Dict[str, List[int]] = {}
        self._sid_raised = hub.register(signals.IRQ_RAISED)
        self._sid_taken = hub.register(signals.IRQ_TAKEN)
        self.dma_controller = None   # wired by the device builder
        #: core name -> service-provider component; a raised request wakes
        #: the provider so a quiescent core sees it the same cycle the
        #: naive loop would (wired by the device builder)
        self.providers: Dict[str, Component] = {}

    def add_srn(self, name: str, priority: int, core: str = "tc",
                dma_channel: Optional[int] = None) -> ServiceRequestNode:
        if priority < 1:
            raise ValueError("SRN priority must be >= 1 (0 = no request)")
        srn = ServiceRequestNode(len(self.srns) + 1, name, priority, core,
                                 dma_channel)
        srn.raised_sid = self.hub.register(srn_raised_signal(name))
        srn.taken_sid = self.hub.register(srn_taken_signal(name))
        self.srns[srn.id] = srn
        self._by_core.setdefault(core, []).append(srn)
        self.pending_cell(core)
        # keep highest priority first so lookup is a linear scan to first hit
        self._by_core[core].sort(key=lambda s: -s.priority)
        return srn

    def pending_cell(self, core: str) -> List[int]:
        """The mutable ``[count]`` of pending requests for one core.

        Callers may cache the list itself; it is updated in place by
        raise/take/reset/restore, so ``cell[0]`` is always current.
        """
        cell = self._pending_cells.get(core)
        if cell is None:
            cell = self._pending_cells[core] = [0]
        return cell

    def _recount_pending(self) -> None:
        for cell in self._pending_cells.values():
            cell[0] = 0
        for srn in self.srns.values():
            if srn.pending:
                self.pending_cell(srn.core)[0] += 1

    def raise_request(self, srn_id: int) -> None:
        """Peripheral-side: set the request flag (idempotent while pending)."""
        srn = self.srns[srn_id]
        srn.raised_count += 1
        emit = self.hub.emit
        emit(self._sid_raised)
        emit(srn.raised_sid)
        if srn.core == "dma":
            # DMA requests bypass the CPU entirely (paper Section 3: activity
            # without any data passing through a processor core)
            srn.taken_count += 1
            emit(self._sid_taken)
            emit(srn.taken_sid)
            if self.dma_controller is not None:
                self.dma_controller.trigger(srn.dma_channel)
            return
        if not srn.pending:
            srn.pending = True
            self._pending_cells[srn.core][0] += 1
        provider = self.providers.get(srn.core)
        if provider is not None:
            provider.wake()

    def highest(self, core: str) -> Optional[ServiceRequestNode]:
        cell = self._pending_cells.get(core)
        if cell is not None and not cell[0]:
            return None
        for srn in self._by_core.get(core, ()):
            if srn.pending:
                return srn
        return None

    def take(self, srn: ServiceRequestNode) -> None:
        if srn.pending:
            srn.pending = False
            self._pending_cells[srn.core][0] -= 1
        srn.taken_count += 1
        self.hub.emit(self._sid_taken)
        self.hub.emit(srn.taken_sid)

    def reset(self) -> None:
        for srn in self.srns.values():
            srn.pending = False
            srn.raised_count = 0
            srn.taken_count = 0
        for cell in self._pending_cells.values():
            cell[0] = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "srns": {
                srn_id: {"pending": srn.pending,
                         "raised_count": srn.raised_count,
                         "taken_count": srn.taken_count}
                for srn_id, srn in sorted(self.srns.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        for srn_id, entry in state["srns"].items():
            srn = self.srns[srn_id]
            srn.pending = entry["pending"]
            srn.raised_count = entry["raised_count"]
            srn.taken_count = entry["taken_count"]
        self._recount_pending()
