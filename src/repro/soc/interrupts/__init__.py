"""Interrupt router and service request nodes."""

from .icu import InterruptRouter, ServiceRequestNode

__all__ = ["InterruptRouter", "ServiceRequestNode"]
