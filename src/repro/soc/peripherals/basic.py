"""Peripheral models: timers, ADC, CAN.

Peripherals exist to generate the real-time event pattern the paper
describes — crank-angle interrupts, converted analog inputs, network
messages — each raising service requests into the interrupt router.  Their
timing is what makes the workload "hard real-time" rather than a loop.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.simulator import Component


class PeriodicTimer(Component):
    """Raises a service request every ``period`` cycles.

    ``period`` may be a callable ``(cycle) -> int`` so workloads can model a
    varying engine speed (the crank-angle interrupt period shrinks as RPM
    rises).
    """

    def __init__(self, name: str, hub: EventHub, icu, srn_id: int,
                 period: Union[int, Callable[[int], int]],
                 phase: int = 0) -> None:
        self.name = name
        self.hub = hub
        self.icu = icu
        self.srn_id = srn_id
        self._period = period
        self._phase = phase
        self._next = phase if phase > 0 else self._period_at(0)
        self.events = 0
        self._sid = hub.register(signals.TIMER_EVENT)

    def _period_at(self, cycle: int) -> int:
        period = self._period(cycle) if callable(self._period) else self._period
        if period < 1:
            raise ValueError("timer period must be >= 1 cycle")
        return period

    def idle_until(self, cycle: int) -> int:
        # self-timed: nothing can happen before the programmed event cycle
        return self._next

    def tick(self, cycle: int) -> None:
        if cycle >= self._next:
            self.events += 1
            self.hub.emit(self._sid)
            self.icu.raise_request(self.srn_id)
            self._next = cycle + self._period_at(cycle)

    def reset(self) -> None:
        self._next = self._phase if self._phase > 0 else self._period_at(0)
        self.events = 0

    def snapshot_state(self) -> dict:
        return {"next": self._next, "events": self.events}

    def restore_state(self, state: dict) -> None:
        self._next = state["next"]
        self.events = state["events"]


class Adc(Component):
    """Analog-to-digital converter with a fixed conversion time.

    A start trigger (autoscan period) launches a conversion; ``latency``
    cycles later the result is ready and the result SRN fires.  Profiling
    sees the resulting data-dependent interrupt pattern.
    """

    def __init__(self, name: str, hub: EventHub, icu, srn_id: int,
                 scan_period: int, conversion_cycles: int) -> None:
        self.name = name
        self.hub = hub
        self.icu = icu
        self.srn_id = srn_id
        self.scan_period = scan_period
        self.conversion_cycles = conversion_cycles
        self._next_start = scan_period
        self._done_at: Optional[int] = None
        self.conversions = 0
        self._sid = hub.register(signals.ADC_CONVERSION)

    def idle_until(self, cycle: int) -> int:
        # converting: the completion edge; idle: the next autoscan start
        return self._done_at if self._done_at is not None \
            else self._next_start

    def tick(self, cycle: int) -> None:
        if self._done_at is not None and cycle >= self._done_at:
            self._done_at = None
            self.conversions += 1
            self.hub.emit(self._sid)
            self.icu.raise_request(self.srn_id)
        if cycle >= self._next_start and self._done_at is None:
            self._done_at = cycle + self.conversion_cycles
            self._next_start = cycle + self.scan_period

    def reset(self) -> None:
        self._next_start = self.scan_period
        self._done_at = None
        self.conversions = 0

    def snapshot_state(self) -> dict:
        return {"next_start": self._next_start, "done_at": self._done_at,
                "conversions": self.conversions}

    def restore_state(self, state: dict) -> None:
        self._next_start = state["next_start"]
        self._done_at = state["done_at"]
        self.conversions = state["conversions"]


class CanNode(Component):
    """CAN message receiver with seeded stochastic arrivals.

    Inter-arrival times are exponential around ``mean_period`` (bounded
    below by the minimal frame time), reproducing the bursty communication
    load of a body/gateway application.
    """

    def __init__(self, name: str, hub: EventHub, icu, srn_id: int,
                 mean_period: int, rng, min_period: int = 500) -> None:
        self.name = name
        self.hub = hub
        self.icu = icu
        self.srn_id = srn_id
        self.mean_period = mean_period
        self.min_period = min_period
        self.rng = rng
        self._next = self._draw(0)
        self.messages = 0
        self._sid = hub.register(signals.CAN_RX)

    def _draw(self, cycle: int) -> int:
        gap = int(self.rng.expovariate(1.0 / self.mean_period))
        return cycle + max(self.min_period, gap)

    def idle_until(self, cycle: int) -> int:
        # the next arrival is already drawn, so the gap is fully known
        return self._next

    def tick(self, cycle: int) -> None:
        if cycle >= self._next:
            self.messages += 1
            self.hub.emit(self._sid)
            self.icu.raise_request(self.srn_id)
            self._next = self._draw(cycle)

    def reset(self) -> None:
        self.messages = 0
        self._next = self.min_period

    def snapshot_state(self) -> dict:
        # the arrival RNG is a named simulator stream, captured separately
        return {"next": self._next, "messages": self.messages}

    def restore_state(self, state: dict) -> None:
        self._next = state["next"]
        self.messages = state["messages"]
