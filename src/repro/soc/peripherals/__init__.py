"""Peripheral models."""

from .basic import Adc, CanNode, PeriodicTimer
from .timer_cells import TimerCellArray

__all__ = ["Adc", "CanNode", "PeriodicTimer", "TimerCellArray"]
