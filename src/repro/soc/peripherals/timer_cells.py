"""Timer-cell array: compare/capture channels (GPTA-lite).

The paper counts "timer cells" among the on-chip resources customers map
work onto (Section 4).  Powertrain applications schedule injector and
ignition edges by writing compare values computed in the crank ISR; the
cell fires autonomously at the programmed time — hardware taking over a
hard deadline from software.

The model provides one-shot compare channels (fire an output event and
optionally a service request at an absolute cycle) and capture channels
(record the time of an input event), both observable by the MCDS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..kernel.hub import EventHub
from ..kernel.simulator import FOREVER, Component

#: event signal emitted on every compare match
TCELL_MATCH = "tcell.match"
#: event signal emitted on every input capture
TCELL_CAPTURE = "tcell.capture"


@dataclass
class _CompareChannel:
    index: int
    compare_at: Optional[int] = None
    srn_id: Optional[int] = None
    matches: int = 0
    #: compare values written after their time are late programmings —
    #: a real-time bug the MCDS is used to find
    late_writes: int = 0


@dataclass
class _CaptureChannel:
    index: int
    timestamps: List[int] = None
    srn_id: Optional[int] = None

    def __post_init__(self):
        if self.timestamps is None:
            self.timestamps = []


class TimerCellArray(Component):
    """A bank of one-shot compare channels and capture channels."""

    name = "timer_cells"

    def __init__(self, name: str, hub: EventHub, icu,
                 compare_channels: int = 8, capture_channels: int = 4
                 ) -> None:
        self.name = name
        self.hub = hub
        self.icu = icu
        self.compare = [_CompareChannel(i) for i in range(compare_channels)]
        self.capture = [_CaptureChannel(i) for i in range(capture_channels)]
        self._armed: List[_CompareChannel] = []
        self._sid_match = hub.register(TCELL_MATCH)
        self._sid_capture = hub.register(TCELL_CAPTURE)

    @property
    def _now(self) -> int:
        # the hub publishes the current cycle before any component ticks,
        # so late-write detection and capture timestamps stay exact even
        # when the array is asleep between programmed compare points
        return self.hub.cycle

    # -- compare side -------------------------------------------------------
    def bind_compare_srn(self, channel: int, srn_id: int) -> None:
        self.compare[channel].srn_id = srn_id

    def set_compare(self, channel: int, fire_at: int) -> None:
        """Program a one-shot compare; ``fire_at`` is an absolute cycle."""
        cell = self.compare[channel]
        if fire_at <= self._now:
            cell.late_writes += 1      # deadline already passed
            fire_at = self._now + 1    # hardware fires immediately-ish
        cell.compare_at = fire_at
        if cell not in self._armed:
            self._armed.append(cell)
        self.wake()

    def cancel_compare(self, channel: int) -> None:
        cell = self.compare[channel]
        cell.compare_at = None
        if cell in self._armed:
            self._armed.remove(cell)

    # -- capture side ------------------------------------------------------------
    def bind_capture_srn(self, channel: int, srn_id: int) -> None:
        self.capture[channel].srn_id = srn_id

    def capture_event(self, channel: int) -> int:
        """Latch the current time on an input edge; returns the timestamp."""
        cell = self.capture[channel]
        cell.timestamps.append(self._now)
        self.hub.emit(self._sid_capture)
        if cell.srn_id is not None and self.icu is not None:
            self.icu.raise_request(cell.srn_id)
        return self._now

    # -- clocking ------------------------------------------------------------------
    def idle_until(self, cycle: int):
        if not self._armed:
            return FOREVER          # set_compare wakes the array
        return min(cell.compare_at for cell in self._armed)

    def tick(self, cycle: int) -> None:
        if not self._armed:
            return
        fired = [cell for cell in self._armed if cycle >= cell.compare_at]
        for cell in fired:
            cell.matches += 1
            cell.compare_at = None
            self._armed.remove(cell)
            self.hub.emit(self._sid_match)
            if cell.srn_id is not None and self.icu is not None:
                self.icu.raise_request(cell.srn_id)

    def reset(self) -> None:
        for cell in self.compare:
            cell.compare_at = None
            cell.matches = 0
            cell.late_writes = 0
        for cell in self.capture:
            cell.timestamps.clear()
        self._armed.clear()

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "compare": [{"compare_at": cell.compare_at,
                         "matches": cell.matches,
                         "late_writes": cell.late_writes}
                        for cell in self.compare],
            "capture": [list(cell.timestamps) for cell in self.capture],
            "armed": [cell.index for cell in self._armed],
        }

    def restore_state(self, state: dict) -> None:
        for cell, entry in zip(self.compare, state["compare"]):
            cell.compare_at = entry["compare_at"]
            cell.matches = entry["matches"]
            cell.late_writes = entry["late_writes"]
        for cell, stamps in zip(self.capture, state["capture"]):
            cell.timestamps = list(stamps)
        self._armed = [self.compare[index] for index in state["armed"]]
