"""EEPROM emulation driver on the data flash.

"This embedded flash is used for application code and data and for EEPROM
emulation" (paper Section 4).  Data flash cannot be rewritten in place:
the driver appends versioned records into a sector until it fills, then
copies live records into the spare sector and erases the old one — the
standard automotive emulation scheme.  Erases occupy the data-flash
resource for a long time, which is exactly the kind of background activity
that shows up as mysterious ``dflash`` latency in a profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel.resource import TimedResource

#: flash program pulse per record write, in data-flash occupancy multiples
_WRITE_OCCUPANCY_FACTOR = 4


@dataclass
class SectorState:
    index: int
    used_bytes: int = 0
    live_records: Dict[int, int] = field(default_factory=dict)
    erase_count: int = 0


class EepromEmulation:
    """Record-based EEPROM emulation over two (or more) flash sectors."""

    RECORD_OVERHEAD = 8    # header: id, version, checksum

    def __init__(self, dflash: TimedResource, sector_bytes: int = 8192,
                 sectors: int = 2, record_bytes: int = 16) -> None:
        if sectors < 2:
            raise ValueError("EEPROM emulation needs at least two sectors")
        self.dflash = dflash
        self.sector_bytes = sector_bytes
        self.record_bytes = record_bytes
        self.sectors = [SectorState(i) for i in range(sectors)]
        self.active = 0
        self.writes = 0
        self.swaps = 0
        self.total_erase_cycles = 0
        self._record_size = record_bytes + self.RECORD_OVERHEAD

    # -- application API ----------------------------------------------------
    def write_record(self, now: int, record_id: int, value: int) -> int:
        """Append a new version of a record; returns the busy-until cycle.

        Triggers a sector swap (copy + erase) when the active sector is
        full — the long tail the profile sees.
        """
        sector = self.sectors[self.active]
        if sector.used_bytes + self._record_size > self.sector_bytes:
            now = self._swap(now)
            sector = self.sectors[self.active]
        wait, done = self.dflash.access(
            now, occupancy=self.dflash.occupancy * _WRITE_OCCUPANCY_FACTOR)
        sector.used_bytes += self._record_size
        sector.live_records[record_id] = value
        self.writes += 1
        return done

    def read_record(self, now: int, record_id: int) -> Optional[int]:
        """Read the live version (driver RAM mirror, flash-backed)."""
        return self.sectors[self.active].live_records.get(record_id)

    # -- wear-levelling internals -------------------------------------------------
    def _swap(self, now: int) -> int:
        """Copy live records to the next sector and erase the old one."""
        old = self.sectors[self.active]
        self.active = (self.active + 1) % len(self.sectors)
        fresh = self.sectors[self.active]
        fresh.used_bytes = 0
        fresh.live_records = dict(old.live_records)
        fresh.used_bytes = len(fresh.live_records) * self._record_size
        # copy cost: one program pulse per live record
        cursor = now
        for _ in old.live_records:
            wait, cursor = self.dflash.access(
                cursor,
                occupancy=self.dflash.occupancy * _WRITE_OCCUPANCY_FACTOR)
        # erase cost: a long pulse occupying the flash
        erase_cycles = self.sector_bytes  # ~1 cycle per byte, order of ms
        self.dflash.reserve_until(cursor + erase_cycles)
        self.total_erase_cycles += erase_cycles
        old.used_bytes = 0
        old.live_records = {}
        old.erase_count += 1
        self.swaps += 1
        return cursor

    # -- checkpoint ---------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "sectors": [{"used_bytes": s.used_bytes,
                         "live_records": dict(s.live_records),
                         "erase_count": s.erase_count}
                        for s in self.sectors],
            "active": self.active,
            "writes": self.writes,
            "swaps": self.swaps,
            "total_erase_cycles": self.total_erase_cycles,
        }

    def restore_state(self, state: dict) -> None:
        for sector, entry in zip(self.sectors, state["sectors"]):
            sector.used_bytes = entry["used_bytes"]
            sector.live_records = dict(entry["live_records"])
            sector.erase_count = entry["erase_count"]
        self.active = state["active"]
        self.writes = state["writes"]
        self.swaps = state["swaps"]
        self.total_erase_cycles = state["total_erase_cycles"]

    # -- health -------------------------------------------------------------------
    @property
    def max_erase_count(self) -> int:
        return max(s.erase_count for s in self.sectors)

    def wear_report(self) -> str:
        lines = [f"{'sector':>7}{'used':>8}{'live':>6}{'erases':>8}"]
        for sector in self.sectors:
            marker = " *" if sector.index == self.active else ""
            lines.append(f"{sector.index:>7}{sector.used_bytes:>8}"
                         f"{len(sector.live_records):>6}"
                         f"{sector.erase_count:>8}{marker}")
        lines.append(f"writes={self.writes} swaps={self.swaps} "
                     f"erase cycles={self.total_erase_cycles}")
        return "\n".join(lines)
