"""TriCore-like address map.

Addresses follow the TriCore segmented layout: the top nibble selects a
segment, which is what the hardware's address decoders key on.  Workload
programs place code, calibration tables, and data into these regions, and
the memory system dispatches accesses by segment — one dictionary lookup on
the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

# region kinds
PFLASH_CACHED = "pflash_cached"      # segment 0x8: program flash, cacheable
PFLASH_UNCACHED = "pflash_uncached"  # segment 0xA: same flash, uncached view
DFLASH = "dflash"                    # EEPROM-emulation data flash
PSPR = "pspr"                        # program scratchpad (single cycle)
DSPR = "dspr"                        # data scratchpad (single cycle)
LMU = "lmu"                          # on-chip SRAM behind the LMB
PERIPH = "periph"                    # SPB/FPI peripheral space
EMEM = "emem"                        # emulation memory (EEC, ED only)
OVERLAY = "overlay"                  # flash ranges redirected to EMEM (calibration)

# segment base addresses (TriCore style)
PFLASH_BASE = 0x8000_0000
PFLASH_UNCACHED_BASE = 0xA000_0000
DFLASH_BASE = 0xAF00_0000
PSPR_BASE = 0xC000_0000
DSPR_BASE = 0xD000_0000
LMU_BASE = 0xE800_0000
PERIPH_BASE = 0xF000_0000
EMEM_BASE = 0xBE00_0000


@dataclass(frozen=True)
class Region:
    name: str
    kind: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressMap:
    """Segment-indexed address decoder with optional overlay ranges."""

    def __init__(self, regions) -> None:
        self.regions = list(regions)
        self._by_segment: Dict[int, list] = {}
        for region in self.regions:
            first = region.base >> 28
            last = (region.end - 1) >> 28
            for seg in range(first, last + 1):
                self._by_segment.setdefault(seg, []).append(region)
        # flat (base, end, kind) decode table per segment: classify runs on
        # every fetch/read/write of every master, so the hot path iterates
        # plain tuples instead of calling Region methods (regions are fixed
        # after construction; only overlay ranges ever change)
        self._decode: Dict[int, tuple] = {
            seg: tuple((r.base, r.end, r.kind) for r in lst)
            for seg, lst in self._by_segment.items()
        }
        # calibration overlay ranges: list of (start, end) within flash that
        # the ED redirects into EMEM; empty on the production device
        self._overlay_ranges: list = []

    @classmethod
    def for_config(cls, cfg) -> "AddressMap":
        """Build the map matching a :class:`~repro.soc.config.SoCConfig`."""
        mem = cfg.memory
        return cls([
            Region("pflash", PFLASH_CACHED, PFLASH_BASE, cfg.flash.size_kb * 1024),
            Region("pflash_nc", PFLASH_UNCACHED, PFLASH_UNCACHED_BASE,
                   cfg.flash.size_kb * 1024),
            Region("dflash", DFLASH, DFLASH_BASE, mem.dflash_kb * 1024),
            Region("pspr", PSPR, PSPR_BASE, mem.pspr_kb * 1024),
            Region("dspr", DSPR, DSPR_BASE, mem.dspr_kb * 1024),
            Region("lmu", LMU, LMU_BASE, mem.lmu_kb * 1024),
            Region("periph", PERIPH, PERIPH_BASE, 0x0100_0000),
            Region("emem", EMEM, EMEM_BASE, 1024 * 1024),
        ])

    def classify(self, addr: int) -> str:
        """Return the region *kind* an address belongs to.

        Overlay redirection is checked only for flash addresses, keeping the
        common path one segment lookup.
        """
        for base, end, kind in self._decode.get(addr >> 28, ()):
            if base <= addr < end:
                if kind == PFLASH_CACHED and self._overlay_ranges:
                    for start, stop in self._overlay_ranges:
                        if start <= addr < stop:
                            return OVERLAY
                return kind
        raise ValueError(f"address 0x{addr:08x} maps to no region")

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    # -- calibration overlay (ED feature) -----------------------------------
    def add_overlay(self, start: int, size: int) -> None:
        """Redirect ``[start, start+size)`` of program flash into EMEM."""
        pflash = self.region("pflash")
        if not (pflash.contains(start) and pflash.contains(start + size - 1)):
            raise ValueError("overlay range must lie inside program flash")
        self._overlay_ranges.append((start, start + size))

    def clear_overlays(self) -> None:
        self._overlay_ranges.clear()

    @property
    def overlay_ranges(self):
        return tuple(self._overlay_ranges)

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"overlays": [tuple(r) for r in self._overlay_ranges]}

    def restore_state(self, state: dict) -> None:
        self._overlay_ranges = [tuple(r) for r in state["overlays"]]
