"""Memory fabric: flash, caches, scratchpads, address map."""

from .cache import Cache
from .eeprom import EepromEmulation
from .flash import EmbeddedFlash
from .system import MemorySystem
from . import map

__all__ = ["Cache", "EepromEmulation", "EmbeddedFlash", "MemorySystem", "map"]
