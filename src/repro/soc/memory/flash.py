"""Embedded program flash with buffered code and data ports.

Paper Section 4: "the path from CPU to flash is the main lever to increase
the CPU system performance ... the behavior of this path is very complex due
to code and data caches, multimaster bus, pre-fetch buffers for, and
arbitration between, the code and data ports of the flash."

This module models exactly those mechanisms:

* a flash array with a fixed access time in nanoseconds, so CPU-cycle wait
  states grow with CPU frequency;
* multiple banks — code and data accesses to different banks overlap, same
  bank accesses arbitrate (the ``pflash.port_conflict`` event source);
* a code-port read/prefetch buffer holding whole lines, with optional
  next-line speculative prefetch;
* a data-port read buffer for constants and calibration tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import FlashConfig
from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.resource import TimedResource

_OFFSET_MASK = 0x0FFF_FFFF  # strips the cached/uncached segment prefix


class _LineBuffer:
    """FIFO buffer of flash lines with per-line availability times."""

    def __init__(self, lines: int) -> None:
        self.capacity = max(1, lines)
        self.ready: Dict[int, int] = {}
        self.order: List[int] = []

    def get(self, line: int) -> Optional[int]:
        """Cycle at which the line's data is valid, or None if absent."""
        return self.ready.get(line)

    def put(self, line: int, ready_cycle: int) -> None:
        if line in self.ready:
            self.ready[line] = min(self.ready[line], ready_cycle)
            return
        if len(self.order) >= self.capacity:
            evicted = self.order.pop(0)
            del self.ready[evicted]
        self.order.append(line)
        self.ready[line] = ready_cycle

    def clear(self) -> None:
        self.ready.clear()
        self.order.clear()

    def snapshot_state(self) -> dict:
        return {"order": list(self.order),
                "ready": [self.ready[line] for line in self.order]}

    def restore_state(self, state: dict) -> None:
        self.order = list(state["order"])
        self.ready = dict(zip(self.order, state["ready"]))


class EmbeddedFlash:
    """Banked flash array seen through a code port and a data port."""

    def __init__(self, cfg: FlashConfig, frequency_mhz: int, hub: EventHub) -> None:
        self.cfg = cfg
        self.hub = hub
        self.line_shift = cfg.line_bytes.bit_length() - 1
        self.wait_states = cfg.wait_states(frequency_mhz)
        occupancy = self.wait_states + 1
        self.banks = [
            TimedResource(f"pflash.bank{i}", occupancy) for i in range(cfg.banks)
        ]
        self._bank_last_port: List[Optional[str]] = [None] * cfg.banks
        # in-flight speculative prefetch per bank: (start, end, line) —
        # abortable if the data port needs the bank (data_port_priority)
        self._bank_prefetch: List[Optional[tuple]] = [None] * cfg.banks
        self._bank_span = max(1, (cfg.size_kb * 1024) // cfg.banks)
        self.code_buffer = _LineBuffer(cfg.code_buffer_lines)
        self.data_buffer = _LineBuffer(cfg.data_buffer_lines)

        register = hub.register
        self._sid_code_access = register(signals.PFLASH_CODE_ACCESS)
        self._sid_data_access = register(signals.PFLASH_DATA_ACCESS)
        self._sid_buf_hit_code = register(signals.PFLASH_BUF_HIT_CODE)
        self._sid_buf_hit_data = register(signals.PFLASH_BUF_HIT_DATA)
        self._sid_conflict = register(signals.PFLASH_PORT_CONFLICT)
        self._sid_prefetch = register(signals.PFLASH_PREFETCH)

    # -- helpers -------------------------------------------------------------
    def _bank_of(self, offset: int) -> int:
        index = offset // self._bank_span
        return index if index < len(self.banks) else len(self.banks) - 1

    def _array_access(self, now: int, line: int, port: str) -> int:
        """Read one line from the array; returns the completion cycle."""
        offset = line << self.line_shift
        bank_index = self._bank_of(offset)
        bank = self.banks[bank_index]
        if port == "data" and self.cfg.data_port_priority:
            self._abort_prefetch(bank_index, now)
        wait, done = bank.access(now)
        if wait and self._bank_last_port[bank_index] not in (None, port):
            self.hub.emit(self._sid_conflict, wait)
        self._bank_last_port[bank_index] = port
        return done

    def _abort_prefetch(self, bank_index: int, now: int) -> None:
        """Cancel an in-flight speculative prefetch to free the bank.

        Demand data reads are latency critical (calibration tables on the
        hot path); a speculative code prefetch occupying the bank is
        dropped and its buffer entry invalidated.
        """
        inflight = self._bank_prefetch[bank_index]
        if inflight is None:
            return
        start, end, line = inflight
        if start <= now < end:
            bank = self.banks[bank_index]
            bank.busy_until = now        # bank freed for the demand access
            entry = self.code_buffer.ready.get(line)
            if entry == end and line in self.code_buffer.order:
                self.code_buffer.order.remove(line)
                del self.code_buffer.ready[line]
        self._bank_prefetch[bank_index] = None

    # -- code port ------------------------------------------------------------
    def fetch_line(self, now: int, addr: int) -> int:
        """Instruction-side line fetch; returns data-valid cycle."""
        line = (addr & _OFFSET_MASK) >> self.line_shift
        ready = self.code_buffer.get(line)
        if ready is not None:
            self.hub.emit(self._sid_buf_hit_code)
            return ready if ready > now + 1 else now + 1
        self.hub.emit(self._sid_code_access)
        done = self._array_access(now, line, "code")
        self.code_buffer.put(line, done)
        if self.cfg.prefetch_enabled:
            next_line = line + 1
            if self.code_buffer.get(next_line) is None:
                pf_start = self.banks[self._bank_of(
                    next_line << self.line_shift)].busy_until
                pf_done = self._array_access(done, next_line, "code")
                self.code_buffer.put(next_line, pf_done)
                self._bank_prefetch[self._bank_of(
                    next_line << self.line_shift)] = (
                    max(pf_start, done), pf_done, next_line)
                self.hub.emit(self._sid_prefetch)
        return done

    # -- data port --------------------------------------------------------------
    def read_data(self, now: int, addr: int) -> int:
        """Data-side read (constants, tables); returns data-valid cycle."""
        line = (addr & _OFFSET_MASK) >> self.line_shift
        self.hub.emit(self._sid_data_access)
        ready = self.data_buffer.get(line)
        if ready is not None:
            self.hub.emit(self._sid_buf_hit_data)
            return ready if ready > now + 1 else now + 1
        done = self._array_access(now, line, "data")
        self.data_buffer.put(line, done)
        return done

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self._bank_last_port = [None] * len(self.banks)
        self._bank_prefetch = [None] * len(self.banks)
        self.code_buffer.clear()
        self.data_buffer.clear()

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "banks": [bank.snapshot_state() for bank in self.banks],
            "last_port": list(self._bank_last_port),
            "prefetch": [None if pf is None else tuple(pf)
                         for pf in self._bank_prefetch],
            "code_buffer": self.code_buffer.snapshot_state(),
            "data_buffer": self.data_buffer.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        for bank, entry in zip(self.banks, state["banks"]):
            bank.restore_state(entry)
        self._bank_last_port = list(state["last_port"])
        self._bank_prefetch = [None if pf is None else tuple(pf)
                               for pf in state["prefetch"]]
        self.code_buffer.restore_state(state["code_buffer"])
        self.data_buffer.restore_state(state["data_buffer"])
