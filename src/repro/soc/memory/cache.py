"""Set-associative cache model (tags only).

Only hit/miss behaviour matters for the profiling methodology, so the model
keeps tag state and true-LRU replacement but no data.  Used for the TriCore
ICACHE and the optional data cache evaluated as an architecture option.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CacheConfig


class Cache:
    """Tag-state set-associative cache with true LRU replacement."""

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.line_shift = cfg.line_bytes.bit_length() - 1
        if (1 << self.line_shift) != cfg.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self.sets = cfg.sets
        self.ways = cfg.ways
        # per-set list of line tags, most-recently-used last
        self._sets: List[List[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, addr: int) -> int:
        return (addr >> self.line_shift) % self.sets

    def lookup(self, addr: int) -> bool:
        """Access the cache; returns True on hit.  Misses do NOT allocate."""
        line = addr >> self.line_shift
        ways = self._sets[line % self.sets]
        if line in ways:
            self.hits += 1
            # refresh LRU position
            ways.remove(line)
            ways.append(line)
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> Optional[int]:
        """Allocate a line; returns the evicted line tag, if any."""
        line = addr >> self.line_shift
        ways = self._sets[line % self.sets]
        if line in ways:
            return None
        victim = None
        if len(ways) >= self.ways:
            victim = ways.pop(0)
        ways.append(line)
        return victim

    def contains(self, addr: int) -> bool:
        """Non-destructive probe (does not touch LRU or counters)."""
        line = addr >> self.line_shift
        return line in self._sets[line % self.sets]

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset(self) -> None:
        self.invalidate_all()
        self.hits = 0
        self.misses = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"sets": [list(ways) for ways in self._sets],
                "hits": self.hits, "misses": self.misses}

    def restore_state(self, state: dict) -> None:
        self._sets = [list(ways) for ways in state["sets"]]
        self.hits = state["hits"]
        self.misses = state["misses"]
