"""Unified memory system: the timing fabric every master goes through.

Dispatches fetches, reads, and writes by address-map region kind and charges
the correct latency chain (scratchpad, cache, flash port buffer, bus layer,
EEPROM-emulation flash, calibration overlay).  All masters — TriCore, PCP,
DMA — share the same instance, so cross-master contention on the flash
banks and bus layers emerges naturally and becomes visible to the MCDS
event taps.
"""

from __future__ import annotations

from typing import Tuple

from ..bus.layers import Bus, CrossbarBus
from ..config import SoCConfig
from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.resource import TimedResource
from .cache import Cache
from .flash import EmbeddedFlash
from . import map as amap


class MemorySystem:
    """Address-routed timing model of the whole on-chip memory fabric."""

    #: latency of an EMEM access once on the Back Bone Bus (SRAM speed)
    EMEM_LATENCY = 2

    def __init__(self, cfg: SoCConfig, hub: EventHub,
                 address_map: amap.AddressMap) -> None:
        self.cfg = cfg
        self.hub = hub
        self.map = address_map
        freq = cfg.cpu.frequency_mhz
        self.flash = EmbeddedFlash(cfg.flash, freq, hub)
        self.icache = Cache(cfg.icache) if cfg.icache.enabled else None
        self.dcache = Cache(cfg.dcache) if cfg.dcache.enabled else None
        lmb_cls = CrossbarBus if cfg.bus.lmb_crossbar else Bus
        self.lmb = lmb_cls("lmb", hub, cfg.bus.lmb_occupancy,
                           cfg.memory.lmu_latency,
                           signals.LMB_XFER, signals.LMB_CONTENTION)
        self.spb = Bus("spb", hub, cfg.bus.spb_occupancy, cfg.bus.spb_latency,
                       signals.SPB_XFER, signals.SPB_CONTENTION)
        self.dflash = TimedResource("dflash", cfg.memory.dflash_latency)

        #: MCDS data-trace observers: callables ``(cycle, addr, is_write, master)``
        self.watchers = []
        #: instruction-fetch observers: callables ``(cycle, addr, master)``
        self.fetch_watchers = []

        register = hub.register
        self._sid_icache_access = register(signals.ICACHE_ACCESS)
        self._sid_icache_hit = register(signals.ICACHE_HIT)
        self._sid_icache_miss = register(signals.ICACHE_MISS)
        self._sid_dcache_access = register(signals.DCACHE_ACCESS)
        self._sid_dcache_hit = register(signals.DCACHE_HIT)
        self._sid_dcache_miss = register(signals.DCACHE_MISS)
        self._sid_dspr = register(signals.DSPR_ACCESS)
        self._sid_pspr = register(signals.PSPR_ACCESS)
        self._sid_lmu = register(signals.LMU_ACCESS)
        self._sid_dflash = register(signals.DFLASH_ACCESS)

    # -- instruction side -------------------------------------------------
    def fetch(self, now: int, addr: int, master: str = "tc") -> int:
        """Fetch the instruction line containing ``addr``.

        Returns the cycle at which decode can proceed.  Called by the CPU
        fetch unit once per line crossed, matching the line-granular fetch
        groups of the hardware.
        """
        if self.fetch_watchers:
            for watcher in self.fetch_watchers:
                watcher(now, addr, master)
        kind = self.map.classify(addr)
        if kind == amap.PSPR:
            self.hub.emit(self._sid_pspr)
            return now + 1
        if kind == amap.PFLASH_CACHED and self.icache is not None:
            self.hub.emit(self._sid_icache_access)
            if self.icache.lookup(addr):
                self.hub.emit(self._sid_icache_hit)
                return now + 1
            self.hub.emit(self._sid_icache_miss)
            done = self.flash.fetch_line(now, addr)
            self.icache.fill(addr)
            return done
        if kind in (amap.PFLASH_CACHED, amap.PFLASH_UNCACHED):
            return self.flash.fetch_line(now, addr)
        if kind == amap.OVERLAY:
            wait, done = self.lmb.transfer(now, master,
                                           latency=self.EMEM_LATENCY,
                                           target="emem")
            return done
        raise ValueError(f"cannot fetch instructions from {kind} "
                         f"(0x{addr:08x})")

    # -- data side ------------------------------------------------------------
    def read(self, now: int, addr: int, master: str = "tc") -> int:
        """Data read; returns the data-valid cycle."""
        if self.watchers:
            for watcher in self.watchers:
                watcher(now, addr, False, master)
        kind = self.map.classify(addr)
        if kind == amap.DSPR:
            self.hub.emit(self._sid_dspr)
            return now + 1
        if kind == amap.PFLASH_CACHED and self.dcache is not None:
            self.hub.emit(self._sid_dcache_access)
            if self.dcache.lookup(addr):
                self.hub.emit(self._sid_dcache_hit)
                return now + 1
            self.hub.emit(self._sid_dcache_miss)
            done = self.flash.read_data(now, addr)
            self.dcache.fill(addr)
            return done
        if kind in (amap.PFLASH_CACHED, amap.PFLASH_UNCACHED):
            return self.flash.read_data(now, addr)
        if kind == amap.OVERLAY:
            wait, done = self.lmb.transfer(now, master,
                                           latency=self.EMEM_LATENCY,
                                           target="emem")
            return done
        if kind == amap.DFLASH:
            self.hub.emit(self._sid_dflash)
            wait, done = self.dflash.access(now)
            return done
        if kind == amap.LMU:
            self.hub.emit(self._sid_lmu)
            wait, done = self.lmb.transfer(now, master, target="lmu")
            return done
        if kind == amap.PERIPH:
            wait, done = self.spb.transfer(now, master)
            return done
        if kind == amap.EMEM:
            wait, done = self.lmb.transfer(
                now, master,
                latency=self.cfg.bus.mli_latency + self.EMEM_LATENCY,
                target="emem")
            return done
        raise ValueError(f"unreadable region {kind} (0x{addr:08x})")

    def write(self, now: int, addr: int, master: str = "tc") -> int:
        """Posted data write; returns the cycle the master may proceed.

        Writes complete in the background; the master only waits for the
        target port to accept the beat (queue wait), which is how the store
        buffers of the real device behave under light load.
        """
        if self.watchers:
            for watcher in self.watchers:
                watcher(now, addr, True, master)
        kind = self.map.classify(addr)
        if kind == amap.DSPR:
            self.hub.emit(self._sid_dspr)
            return now + 1
        if kind == amap.OVERLAY:
            wait, start_done = self.lmb.transfer(now, master,
                                                 latency=self.EMEM_LATENCY,
                                                 target="emem")
            return now + 1 + wait
        if kind == amap.DFLASH:
            # EEPROM emulation: long program pulse occupies the data flash,
            # but the driver's write buffering posts it for the CPU
            self.hub.emit(self._sid_dflash)
            wait, _ = self.dflash.access(now, occupancy=4 * (self.dflash.occupancy))
            return now + 1 + wait
        if kind == amap.LMU:
            self.hub.emit(self._sid_lmu)
            wait, _ = self.lmb.transfer(now, master, target="lmu")
            return now + 1 + wait
        if kind == amap.PERIPH:
            wait, _ = self.spb.transfer(now, master)
            return now + 1 + wait
        if kind == amap.EMEM:
            wait, _ = self.lmb.transfer(now, master, target="emem")
            return now + 1 + wait
        raise ValueError(f"unwritable region {kind} (0x{addr:08x})")

    def reset(self) -> None:
        self.flash.reset()
        if self.icache is not None:
            self.icache.reset()
        if self.dcache is not None:
            self.dcache.reset()
        self.lmb.reset()
        self.spb.reset()
        self.dflash.reset()

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "flash": self.flash.snapshot_state(),
            "icache": None if self.icache is None
            else self.icache.snapshot_state(),
            "dcache": None if self.dcache is None
            else self.dcache.snapshot_state(),
            "lmb": self.lmb.snapshot_state(),
            "spb": self.spb.snapshot_state(),
            "dflash": self.dflash.snapshot_state(),
            "map": self.map.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.flash.restore_state(state["flash"])
        if self.icache is not None and state["icache"] is not None:
            self.icache.restore_state(state["icache"])
        if self.dcache is not None and state["dcache"] is not None:
            self.dcache.restore_state(state["dcache"])
        self.lmb.restore_state(state["lmb"])
        self.spb.restore_state(state["spb"])
        self.dflash.restore_state(state["dflash"])
        self.map.restore_state(state["map"])
