"""SoC substrate: TriCore-like product-chip timing simulator."""

from .config import SoCConfig, tc1797_config, tc1767_config
from .device import Soc

__all__ = ["SoCConfig", "tc1797_config", "tc1767_config", "Soc"]
