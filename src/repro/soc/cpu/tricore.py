"""TriCore-like CPU timing model.

A pipelined, multi-scalar core: up to three instructions retire per cycle —
one integer-pipeline op, one load/store-pipeline op, and one loop/control
op, matching the TriCore 1.3 issue rules the paper leans on ("up to 3
within a clock cycle for TriCore").  Hardware loops close with zero taken
penalty (the loop pipeline); other taken control flow pays a refill
penalty.

The core publishes every performance-relevant event the MCDS can tap:
executed-instruction counts, stall cycles by cause, branch and context
switch events, interrupt entries.  A program-trace sink can additionally be
attached for MCDS program tracing; when detached the core runs identically
(non-intrusiveness is experiment E8).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import CpuConfig
from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.simulator import FOREVER, Component
from ..memory.system import MemorySystem
from . import isa

# hot-loop constants: the issue loop compares opcodes and advances the PC
# hundreds of thousands of times per run, so bind the ISA names once here
# instead of re-reading module attributes per instruction
_IP = isa.IP
_LD = isa.LD
_ST = isa.ST
_BR = isa.BR
_JUMP = isa.JUMP
_LOOP = isa.LOOP
_CALL = isa.CALL
_RET = isa.RET
_RFE = isa.RFE
_INSTR_BYTES = isa.INSTR_BYTES


class TriCoreCpu(Component):
    name = "tricore"

    def __init__(self, cfg: CpuConfig, hub: EventHub, memory: MemorySystem,
                 icu=None, rng=None) -> None:
        self.cfg = cfg
        self.hub = hub
        self.memory = memory
        self.icu = icu
        self.rng = rng
        self.program: Optional[isa.Program] = None
        self.vectors: Dict[int, int] = {}   # srn id -> handler address
        self.trace = None                   # optional MCDS program-trace sink

        self.pc = 0
        self.halted = False
        #: debug run-control freeze (MCDS watch/breakpoints); unlike
        #: ``halted`` it also blocks interrupt entry
        self.debug_halt = False
        self.stall_until = 0
        self.current_priority = 0
        self._call_stack = []
        self._irq_stack = []
        self._states: Dict[int, object] = {}  # per-instruction behaviour state
        self._line = -1
        self._line_shift = 5  # 32-byte fetch groups

        self.retired = 0
        self.halt_cycles = 0

        # cfg-derived latencies, folded once (configs are frozen after
        # build); the ICU's pending cell is shared in-place, so one list
        # read replaces the per-cycle highest() scan when nothing pends
        self._issue_width = cfg.issue_width
        self._branch_lat = 1 + cfg.branch_penalty
        self._cs_lat = 1 + cfg.context_switch_cycles
        self._irq_entry_lat = cfg.irq_entry_cycles + cfg.context_switch_cycles
        self._icu_cell = icu.pending_cell("tc") if icu is not None else None

        register = hub.register
        self._sid_instr = register(signals.TC_INSTR)
        self._sid_stall_fetch = register(signals.TC_STALL_FETCH)
        self._sid_stall_load = register(signals.TC_STALL_LOAD)
        self._sid_stall_store = register(signals.TC_STALL_STORE)
        self._sid_branch = register(signals.TC_BRANCH)
        self._sid_branch_taken = register(signals.TC_BRANCH_TAKEN)
        self._sid_csa = register(signals.TC_CSA)
        self._sid_irq_entry = register(signals.TC_IRQ_ENTRY)
        self._sid_irq_cycles = register(signals.TC_IRQ_CYCLES)
        self._rebind_hot()

    def _rebind_hot(self) -> None:
        """Fold the issue loop's per-tick collaborator binds into one tuple.

        One attribute read plus a sequence unpack replaces nine attribute
        walks per tick; rebuilt whenever a program is (re)loaded.  All
        members are construction-time-fixed except the instruction map.
        """
        self._hot_binds = (
            self._issue_width, self.memory, self.hub.emit, self.rng,
            self._line_shift,
            None if self.program is None else self.program.instructions,
            self._sid_instr, self._sid_branch, self._sid_branch_taken)

    # -- setup ---------------------------------------------------------------
    def load_program(self, program: isa.Program) -> None:
        self.program = program
        self.pc = program.entry
        self.halted = False
        self._line = -1
        self._rebind_hot()
        self.wake()

    def set_vector(self, srn_id: int, handler: str) -> None:
        """Bind a service request to a handler function (by symbol name)."""
        if self.program is None:
            raise RuntimeError("load a program before binding vectors")
        self.vectors[srn_id] = self.program.symbol(handler)
        self.wake()

    # -- behaviour-state helper -----------------------------------------------
    def _state_of(self, instr: isa.Instr, behaviour) -> object:
        key = id(instr)
        state = self._states.get(key)
        if state is None:
            state = behaviour.make_state()
            self._states[key] = state
        return state

    # -- interrupt entry --------------------------------------------------------
    def _try_interrupt(self, cycle: int) -> bool:
        if self.icu is None:
            return False
        srn = self.icu.highest("tc")
        if srn is None or srn.priority <= self.current_priority:
            return False
        handler = self.vectors.get(srn.id)
        if handler is None:
            return False
        self.icu.take(srn)
        src = self.pc
        self._irq_stack.append((self.pc, self.current_priority, self.halted))
        self.current_priority = srn.priority
        self.pc = handler
        self.halted = False
        self._line = -1
        self.stall_until = cycle + self._irq_entry_lat
        self.hub.emit(self._sid_irq_entry)
        self.hub.emit(self._sid_csa)
        if self.trace is not None:
            self.trace.on_discontinuity(cycle, src, handler, "irq")
        return True

    # -- quiescence contract -------------------------------------------------
    def _serviceable_pending(self) -> bool:
        """Would ``_try_interrupt`` take something right now?"""
        if self.icu is None:
            return False
        cell = self._icu_cell
        if cell is not None and not cell[0]:
            return False
        srn = self.icu.highest("tc")
        return (srn is not None and srn.priority > self.current_priority
                and srn.id in self.vectors)

    def idle_until(self, cycle: int):
        # priority > 0 emits TC_IRQ_CYCLES every cycle; debug_halt is
        # toggled by plain attribute writes (mcds.debug), so the core stays
        # hot in both states rather than requiring wake() discipline there
        if self.current_priority > 0 or self.debug_halt:
            return None
        if cycle < self.stall_until:
            # stalled cores do not poll the ICU, so the wait is opaque even
            # to a pending interrupt — sleep through it
            return self.stall_until
        if self.halted or self.program is None:
            # wait-for-interrupt (or no software at all): only an SRN
            # raise, a vector bind, or a program load can change anything.
            # The ICU poll is deferred to here so a busy core's idle probe
            # stays a handful of attribute reads.
            return None if self._serviceable_pending() else FOREVER
        return None

    def on_kernel_skip(self, start: int, stop: int) -> None:
        # the naive loop increments halt_cycles once per halted tick; a
        # stall-sleep (stall_until > start) or debug freeze would not
        if self.halted and not self.debug_halt \
                and self.current_priority == 0 and self.stall_until <= start:
            self.halt_cycles += stop - start

    # -- main clock tick ----------------------------------------------------------
    def tick(self, cycle: int):
        if self.debug_halt:
            return None
        if self.current_priority > 0:
            self.hub.emit(self._sid_irq_cycles)
        if cycle < self.stall_until:
            # inline idle bid (see Component.tick): a priority-0 stall is
            # opaque even to pending interrupts, so the wait can be slept
            # through; at priority > 0 the per-cycle IRQ-cycle emission
            # above must keep the core hot
            return None if self.current_priority > 0 else self.stall_until
        cell = self._icu_cell
        if (cell[0] if cell is not None else self.icu is not None) \
                and self._try_interrupt(cycle):
            return None
        if self.halted:
            self.halt_cycles += 1
            return None
        program = self.program
        if program is None:
            return None
        (width, memory, emit, rng, line_shift, instructions,
         sid_instr, sid_branch, sid_branch_taken) = self._hot_binds
        issued = 0
        ip_used = False
        ls_used = False
        ctl_used = False
        pc = self.pc
        start_pc = pc
        cur_line = self._line

        while issued < width:
            line = pc >> line_shift
            if line != cur_line:
                done = memory.fetch(cycle, pc, "tc")
                cur_line = line
                if done > cycle + 1:
                    self.stall_until = done
                    emit(self._sid_stall_fetch, done - cycle - 1)
                    break
            instr = instructions.get(pc)
            if instr is None:
                instr = program.at(pc)   # raises the decorated KeyError
            op = instr.op

            if op == _IP:
                # one integer-pipeline op per cycle (dual-pipeline issue:
                # IP + LS + loop can retire together, never two IP ops)
                if ip_used:
                    break
                ip_used = True
                pc += _INSTR_BYTES
                issued += 1
                continue

            if op == _LD or op == _ST:
                if ls_used:
                    break
                ls_used = True
                gen = instr.addr_gen
                addr = gen.next(self._state_of(instr, gen), rng)
                issued += 1
                if op == _LD:
                    done = memory.read(cycle, addr, "tc")
                    pc += _INSTR_BYTES
                    if done > cycle + 1:
                        self.stall_until = done
                        emit(self._sid_stall_load, done - cycle - 1)
                        break
                else:
                    done = memory.write(cycle, addr, "tc")
                    pc += _INSTR_BYTES
                    if done > cycle + 1:
                        self.stall_until = done
                        emit(self._sid_stall_store, done - cycle - 1)
                        break
                continue

            if op == "halt":
                self.halted = True
                issued_halt_pc = pc
                pc = issued_halt_pc  # resume at the halt on wakeup-return
                break

            # control ops
            if ctl_used:
                break
            ctl_used = True
            issued += 1
            src = pc

            if op == _BR:
                pattern = instr.pattern
                taken = pattern.taken(self._state_of(instr, pattern), rng)
                emit(sid_branch)
                if taken:
                    emit(sid_branch_taken)
                    pc = instr.target
                    cur_line = -1
                    self.stall_until = cycle + self._branch_lat
                    if self.trace is not None:
                        self.trace.on_discontinuity(cycle, src, pc, "br")
                    break
                pc += _INSTR_BYTES
                continue

            if op == _JUMP:
                emit(sid_branch)
                emit(sid_branch_taken)
                pc = instr.target
                cur_line = -1
                self.stall_until = cycle + self._branch_lat
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "br")
                break

            if op == _LOOP:
                pattern = instr.pattern
                taken = pattern.taken(self._state_of(instr, pattern), rng)
                emit(sid_branch)
                if taken:
                    # loop pipeline: zero-cycle taken loop-close
                    emit(sid_branch_taken)
                    pc = instr.target
                    cur_line = -1
                    if self.trace is not None:
                        self.trace.on_discontinuity(cycle, src, pc, "loop")
                    break
                pc += _INSTR_BYTES
                continue

            if op == _CALL:
                self._call_stack.append(pc + _INSTR_BYTES)
                pc = instr.target
                cur_line = -1
                emit(self._sid_csa)
                self.stall_until = cycle + self._cs_lat
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "call")
                break

            if op == _RET:
                if not self._call_stack:
                    raise RuntimeError(
                        f"RET with empty call stack at 0x{pc:08x}")
                pc = self._call_stack.pop()
                cur_line = -1
                emit(self._sid_csa)
                self.stall_until = cycle + self._cs_lat
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "ret")
                break

            if op == _RFE:
                if not self._irq_stack:
                    raise RuntimeError(
                        f"RFE with empty interrupt stack at 0x{pc:08x}")
                pc, self.current_priority, self.halted = self._irq_stack.pop()
                cur_line = -1
                emit(self._sid_csa)
                self.stall_until = cycle + self._cs_lat
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "rfe")
                break

            raise ValueError(f"unknown opcode {op!r} at 0x{pc:08x}")

        self._line = cur_line
        self.pc = pc
        if issued:
            self.retired += issued
            emit(sid_instr, issued)
            if self.trace is not None:
                self.trace.on_cycle(cycle, start_pc, issued)
        # inline idle bid, mirroring idle_until for the common end-of-tick
        # states; anything subtler (halt wake conditions, debug freeze)
        # defers to idle_until via None
        if self.current_priority > 0 or self.halted or self.debug_halt:
            return None
        stall = self.stall_until
        return stall if stall > cycle + 1 else cycle + 1

    def reset(self) -> None:
        if self.program is not None:
            self.pc = self.program.entry
        self.halted = False
        self.debug_halt = False
        self.stall_until = 0
        self.current_priority = 0
        self._call_stack.clear()
        self._irq_stack.clear()
        self._states.clear()
        self._line = -1
        self.retired = 0
        self.halt_cycles = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        # behaviour states live keyed by id(instr), which does not survive
        # a process boundary; remap to instruction addresses (the program
        # image is rebuilt identically from the job spec/seed)
        states = {}
        if self.program is not None:
            for addr, instr in self.program.instructions.items():
                state = self._states.get(id(instr))
                if state is not None:
                    states[addr] = list(state)
        return {
            "pc": self.pc,
            "halted": self.halted,
            "debug_halt": self.debug_halt,
            "stall_until": self.stall_until,
            "current_priority": self.current_priority,
            "call_stack": list(self._call_stack),
            "irq_stack": [tuple(frame) for frame in self._irq_stack],
            "states": states,
            "vectors": dict(self.vectors),
            "line": self._line,
            "retired": self.retired,
            "halt_cycles": self.halt_cycles,
        }

    def restore_state(self, state: dict) -> None:
        self.pc = state["pc"]
        self.halted = state["halted"]
        self.debug_halt = state["debug_halt"]
        self.stall_until = state["stall_until"]
        self.current_priority = state["current_priority"]
        self._call_stack = list(state["call_stack"])
        self._irq_stack = [tuple(frame) for frame in state["irq_stack"]]
        self.vectors = dict(state["vectors"])
        self._states.clear()
        if self.program is not None:
            for addr, behaviour_state in state["states"].items():
                self._states[id(self.program.at(addr))] = \
                    list(behaviour_state)
        # the fetch-line latch must round-trip exactly: invalidating it
        # would issue a spurious re-fetch the uninterrupted run never does
        self._line = state["line"]
        self.retired = state["retired"]
        self.halt_cycles = state["halt_cycles"]
