"""TriCore-like CPU timing model.

A pipelined, multi-scalar core: up to three instructions retire per cycle —
one integer-pipeline op, one load/store-pipeline op, and one loop/control
op, matching the TriCore 1.3 issue rules the paper leans on ("up to 3
within a clock cycle for TriCore").  Hardware loops close with zero taken
penalty (the loop pipeline); other taken control flow pays a refill
penalty.

The core publishes every performance-relevant event the MCDS can tap:
executed-instruction counts, stall cycles by cause, branch and context
switch events, interrupt entries.  A program-trace sink can additionally be
attached for MCDS program tracing; when detached the core runs identically
(non-intrusiveness is experiment E8).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import CpuConfig
from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.simulator import FOREVER, Component
from ..memory.system import MemorySystem
from . import isa


class TriCoreCpu(Component):
    name = "tricore"

    def __init__(self, cfg: CpuConfig, hub: EventHub, memory: MemorySystem,
                 icu=None, rng=None) -> None:
        self.cfg = cfg
        self.hub = hub
        self.memory = memory
        self.icu = icu
        self.rng = rng
        self.program: Optional[isa.Program] = None
        self.vectors: Dict[int, int] = {}   # srn id -> handler address
        self.trace = None                   # optional MCDS program-trace sink

        self.pc = 0
        self.halted = False
        #: debug run-control freeze (MCDS watch/breakpoints); unlike
        #: ``halted`` it also blocks interrupt entry
        self.debug_halt = False
        self.stall_until = 0
        self.current_priority = 0
        self._call_stack = []
        self._irq_stack = []
        self._states: Dict[int, object] = {}  # per-instruction behaviour state
        self._line = -1
        self._line_shift = 5  # 32-byte fetch groups

        self.retired = 0
        self.halt_cycles = 0

        register = hub.register
        self._sid_instr = register(signals.TC_INSTR)
        self._sid_stall_fetch = register(signals.TC_STALL_FETCH)
        self._sid_stall_load = register(signals.TC_STALL_LOAD)
        self._sid_stall_store = register(signals.TC_STALL_STORE)
        self._sid_branch = register(signals.TC_BRANCH)
        self._sid_branch_taken = register(signals.TC_BRANCH_TAKEN)
        self._sid_csa = register(signals.TC_CSA)
        self._sid_irq_entry = register(signals.TC_IRQ_ENTRY)
        self._sid_irq_cycles = register(signals.TC_IRQ_CYCLES)

    # -- setup ---------------------------------------------------------------
    def load_program(self, program: isa.Program) -> None:
        self.program = program
        self.pc = program.entry
        self.halted = False
        self._line = -1
        self.wake()

    def set_vector(self, srn_id: int, handler: str) -> None:
        """Bind a service request to a handler function (by symbol name)."""
        if self.program is None:
            raise RuntimeError("load a program before binding vectors")
        self.vectors[srn_id] = self.program.symbol(handler)
        self.wake()

    # -- behaviour-state helper -----------------------------------------------
    def _state_of(self, instr: isa.Instr, behaviour) -> object:
        key = id(instr)
        state = self._states.get(key)
        if state is None or key not in self._states:
            state = behaviour.make_state()
            self._states[key] = state
        return state

    # -- interrupt entry --------------------------------------------------------
    def _try_interrupt(self, cycle: int) -> bool:
        if self.icu is None:
            return False
        srn = self.icu.highest("tc")
        if srn is None or srn.priority <= self.current_priority:
            return False
        handler = self.vectors.get(srn.id)
        if handler is None:
            return False
        self.icu.take(srn)
        src = self.pc
        self._irq_stack.append((self.pc, self.current_priority, self.halted))
        self.current_priority = srn.priority
        self.pc = handler
        self.halted = False
        self._line = -1
        entry = self.cfg.irq_entry_cycles + self.cfg.context_switch_cycles
        self.stall_until = cycle + entry
        self.hub.emit(self._sid_irq_entry)
        self.hub.emit(self._sid_csa)
        if self.trace is not None:
            self.trace.on_discontinuity(cycle, src, handler, "irq")
        return True

    # -- quiescence contract -------------------------------------------------
    def _serviceable_pending(self) -> bool:
        """Would ``_try_interrupt`` take something right now?"""
        if self.icu is None:
            return False
        srn = self.icu.highest("tc")
        return (srn is not None and srn.priority > self.current_priority
                and srn.id in self.vectors)

    def idle_until(self, cycle: int):
        # priority > 0 emits TC_IRQ_CYCLES every cycle; debug_halt is
        # toggled by plain attribute writes (mcds.debug), so the core stays
        # hot in both states rather than requiring wake() discipline there
        if self.current_priority > 0 or self.debug_halt:
            return None
        if cycle < self.stall_until:
            # stalled cores do not poll the ICU, so the wait is opaque even
            # to a pending interrupt — sleep through it
            return self.stall_until
        if self.halted or self.program is None:
            # wait-for-interrupt (or no software at all): only an SRN
            # raise, a vector bind, or a program load can change anything.
            # The ICU poll is deferred to here so a busy core's idle probe
            # stays a handful of attribute reads.
            return None if self._serviceable_pending() else FOREVER
        return None

    def on_kernel_skip(self, start: int, stop: int) -> None:
        # the naive loop increments halt_cycles once per halted tick; a
        # stall-sleep (stall_until > start) or debug freeze would not
        if self.halted and not self.debug_halt \
                and self.current_priority == 0 and self.stall_until <= start:
            self.halt_cycles += stop - start

    # -- main clock tick ----------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if self.debug_halt:
            return
        if self.current_priority > 0:
            self.hub.emit(self._sid_irq_cycles)
        if cycle < self.stall_until:
            return
        if self._try_interrupt(cycle):
            return
        if self.halted:
            self.halt_cycles += 1
            return

        program = self.program
        if program is None:
            return
        issued = 0
        ip_used = False
        ls_used = False
        ctl_used = False
        pc = self.pc
        start_pc = pc
        width = self.cfg.issue_width
        memory = self.memory
        hub = self.hub
        emit = hub.emit
        rng = self.rng

        while issued < width:
            line = pc >> self._line_shift
            if line != self._line:
                done = memory.fetch(cycle, pc, "tc")
                self._line = line
                if done > cycle + 1:
                    self.stall_until = done
                    emit(self._sid_stall_fetch, done - cycle - 1)
                    break
            instr = program.at(pc)
            op = instr.op

            if op == isa.IP:
                # one integer-pipeline op per cycle (dual-pipeline issue:
                # IP + LS + loop can retire together, never two IP ops)
                if ip_used:
                    break
                ip_used = True
                pc += isa.INSTR_BYTES
                issued += 1
                continue

            if op == isa.LD or op == isa.ST:
                if ls_used:
                    break
                ls_used = True
                gen = instr.addr_gen
                addr = gen.next(self._state_of(instr, gen), rng)
                issued += 1
                if op == isa.LD:
                    done = memory.read(cycle, addr, "tc")
                    pc += isa.INSTR_BYTES
                    if done > cycle + 1:
                        self.stall_until = done
                        emit(self._sid_stall_load, done - cycle - 1)
                        break
                else:
                    done = memory.write(cycle, addr, "tc")
                    pc += isa.INSTR_BYTES
                    if done > cycle + 1:
                        self.stall_until = done
                        emit(self._sid_stall_store, done - cycle - 1)
                        break
                continue

            if op == "halt":
                self.halted = True
                issued_halt_pc = pc
                pc = issued_halt_pc  # resume at the halt on wakeup-return
                break

            # control ops
            if ctl_used:
                break
            ctl_used = True
            issued += 1
            src = pc

            if op == isa.BR:
                pattern = instr.pattern
                taken = pattern.taken(self._state_of(instr, pattern), rng)
                emit(self._sid_branch)
                if taken:
                    emit(self._sid_branch_taken)
                    pc = instr.target
                    self._line = -1
                    self.stall_until = cycle + 1 + self.cfg.branch_penalty
                    if self.trace is not None:
                        self.trace.on_discontinuity(cycle, src, pc, "br")
                    break
                pc += isa.INSTR_BYTES
                continue

            if op == isa.JUMP:
                emit(self._sid_branch)
                emit(self._sid_branch_taken)
                pc = instr.target
                self._line = -1
                self.stall_until = cycle + 1 + self.cfg.branch_penalty
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "br")
                break

            if op == isa.LOOP:
                pattern = instr.pattern
                taken = pattern.taken(self._state_of(instr, pattern), rng)
                emit(self._sid_branch)
                if taken:
                    # loop pipeline: zero-cycle taken loop-close
                    emit(self._sid_branch_taken)
                    pc = instr.target
                    self._line = -1
                    if self.trace is not None:
                        self.trace.on_discontinuity(cycle, src, pc, "loop")
                    break
                pc += isa.INSTR_BYTES
                continue

            if op == isa.CALL:
                self._call_stack.append(pc + isa.INSTR_BYTES)
                pc = instr.target
                self._line = -1
                emit(self._sid_csa)
                self.stall_until = cycle + 1 + self.cfg.context_switch_cycles
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "call")
                break

            if op == isa.RET:
                if not self._call_stack:
                    raise RuntimeError(
                        f"RET with empty call stack at 0x{pc:08x}")
                pc = self._call_stack.pop()
                self._line = -1
                emit(self._sid_csa)
                self.stall_until = cycle + 1 + self.cfg.context_switch_cycles
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "ret")
                break

            if op == isa.RFE:
                if not self._irq_stack:
                    raise RuntimeError(
                        f"RFE with empty interrupt stack at 0x{pc:08x}")
                pc, self.current_priority, self.halted = self._irq_stack.pop()
                self._line = -1
                emit(self._sid_csa)
                self.stall_until = cycle + 1 + self.cfg.context_switch_cycles
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, src, pc, "rfe")
                break

            raise ValueError(f"unknown opcode {op!r} at 0x{pc:08x}")

        self.pc = pc
        if issued:
            self.retired += issued
            emit(self._sid_instr, issued)
            if self.trace is not None:
                self.trace.on_cycle(cycle, start_pc, issued)

    def reset(self) -> None:
        if self.program is not None:
            self.pc = self.program.entry
        self.halted = False
        self.debug_halt = False
        self.stall_until = 0
        self.current_priority = 0
        self._call_stack.clear()
        self._irq_stack.clear()
        self._states.clear()
        self._line = -1
        self.retired = 0
        self.halt_cycles = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        # behaviour states live keyed by id(instr), which does not survive
        # a process boundary; remap to instruction addresses (the program
        # image is rebuilt identically from the job spec/seed)
        states = {}
        if self.program is not None:
            for addr, instr in self.program.instructions.items():
                state = self._states.get(id(instr))
                if state is not None:
                    states[addr] = list(state)
        return {
            "pc": self.pc,
            "halted": self.halted,
            "debug_halt": self.debug_halt,
            "stall_until": self.stall_until,
            "current_priority": self.current_priority,
            "call_stack": list(self._call_stack),
            "irq_stack": [tuple(frame) for frame in self._irq_stack],
            "states": states,
            "vectors": dict(self.vectors),
            "line": self._line,
            "retired": self.retired,
            "halt_cycles": self.halt_cycles,
        }

    def restore_state(self, state: dict) -> None:
        self.pc = state["pc"]
        self.halted = state["halted"]
        self.debug_halt = state["debug_halt"]
        self.stall_until = state["stall_until"]
        self.current_priority = state["current_priority"]
        self._call_stack = list(state["call_stack"])
        self._irq_stack = [tuple(frame) for frame in state["irq_stack"]]
        self.vectors = dict(state["vectors"])
        self._states.clear()
        if self.program is not None:
            for addr, behaviour_state in state["states"].items():
                self._states[id(self.program.at(addr))] = \
                    list(behaviour_state)
        # the fetch-line latch must round-trip exactly: invalidating it
        # would issue a spurious re-fetch the uninterrupted run never does
        self._line = state["line"]
        self.retired = state["retired"]
        self.halt_cycles = state["halt_cycles"]
