"""TriCore-like CPU core and instruction model."""

from . import isa
from .tricore import TriCoreCpu

__all__ = ["isa", "TriCoreCpu"]
