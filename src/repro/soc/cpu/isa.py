"""Timing-level instruction model for the TriCore-like CPU.

The profiling methodology observes *when* instructions execute and *where*
they access memory — it never inspects register values.  The instruction
model is therefore functional-lite: control flow and memory addressing are
fully modelled (with deterministic, seeded behaviour generators standing in
for data-dependent outcomes), while arithmetic results are not computed.

Instructions occupy 4 bytes each; a 32-byte flash line thus holds 8
instructions, which matches the fetch-group behaviour that drives the
I-cache and prefetch-buffer statistics.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

INSTR_BYTES = 4

# --- opcode classes ---------------------------------------------------------
IP = "ip"        # integer pipeline (ALU, MAC, shifts)
LD = "ld"        # load (load/store pipeline)
ST = "st"        # store (load/store pipeline)
BR = "br"        # conditional branch
JUMP = "jump"    # unconditional jump
LOOP = "loop"    # hardware loop (TriCore loop pipeline: 0-cycle taken)
CALL = "call"
RET = "ret"
RFE = "rfe"      # return from interrupt

#: op classes that end an issue group because they redirect fetch
CONTROL_OPS = frozenset((BR, JUMP, LOOP, CALL, RET, RFE))
#: op classes handled by the load/store pipeline
LS_OPS = frozenset((LD, ST))


class Instr:
    """One decoded instruction with its behaviour parameters."""

    __slots__ = ("op", "addr", "target", "addr_gen", "pattern", "label")

    def __init__(self, op: str, target: Optional[int] = None,
                 addr_gen=None, pattern=None, label: Optional[str] = None):
        self.op = op
        self.addr = 0            # assigned by the assembler
        self.target = target     # control-flow destination
        self.addr_gen = addr_gen  # memory address generator for LD/ST
        self.pattern = pattern   # branch/loop behaviour generator
        self.label = label       # symbolic target, resolved at assembly

    def __repr__(self) -> str:
        return f"<{self.op} @0x{self.addr:08x}>"


# --- behaviour generators ----------------------------------------------------
class LoopCount:
    """Hardware-loop trip count: taken ``count - 1`` times, then falls through.

    TriCore LOOP instructions iterate a fixed number of times per entry; the
    counter re-arms when the loop is next entered.
    """

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("loop count must be >= 1")
        self.count = count

    def make_state(self) -> list:
        return [self.count - 1]

    def taken(self, state: list, rng: random.Random) -> bool:
        if state[0] > 0:
            state[0] -= 1
            return True
        state[0] = self.count - 1
        return False


class TakenProbability:
    """Conditional branch taken with probability ``p`` (seeded stream)."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.p = p

    def make_state(self) -> None:
        return None

    def taken(self, state, rng: random.Random) -> bool:
        return rng.random() < self.p


class TakenPeriodic:
    """Branch taken every ``period``-th execution (deterministic)."""

    def __init__(self, period: int, phase: int = 0) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.phase = phase

    def make_state(self) -> list:
        return [self.phase]

    def taken(self, state: list, rng: random.Random) -> bool:
        state[0] += 1
        if state[0] >= self.period:
            state[0] = 0
            return True
        return False


# --- address generators -------------------------------------------------------
class FixedAddr:
    """Always the same address (a scalar variable or peripheral register)."""

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def make_state(self) -> None:
        return None

    def next(self, state, rng: random.Random) -> int:
        return self.addr


class StrideAddr:
    """Sequential walk: arrays, buffers, filter delay lines."""

    def __init__(self, base: int, stride: int, count: int) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.base = base
        self.stride = stride
        self.count = count

    def make_state(self) -> list:
        return [0]

    def next(self, state: list, rng: random.Random) -> int:
        addr = self.base + (state[0] % self.count) * self.stride
        state[0] += 1
        return addr


class TableAddr:
    """Look-up-table access with temporal locality.

    Engine-control software interpolates 2-D calibration maps: successive
    lookups land near the current operating point and drift slowly.  With
    probability ``locality`` the next access stays within ``window`` entries
    of the previous one; otherwise the operating point jumps.
    """

    def __init__(self, base: int, entry_bytes: int, entries: int,
                 locality: float = 0.9, window: int = 8) -> None:
        if entries < 1:
            raise ValueError("table must have at least one entry")
        self.base = base
        self.entry_bytes = entry_bytes
        self.entries = entries
        self.locality = locality
        self.window = max(1, window)

    def make_state(self) -> list:
        return [0]

    def next(self, state: list, rng: random.Random) -> int:
        if rng.random() < self.locality:
            index = state[0] + rng.randint(-self.window, self.window)
        else:
            index = rng.randrange(self.entries)
        index %= self.entries
        state[0] = index
        return self.base + index * self.entry_bytes


class Program:
    """Assembled instruction image with symbol table."""

    def __init__(self, instructions: Dict[int, Instr], entry: int,
                 symbols: Dict[str, int]) -> None:
        self.instructions = instructions
        self.entry = entry
        self.symbols = symbols

    def at(self, addr: int) -> Instr:
        try:
            return self.instructions[addr]
        except KeyError:
            raise KeyError(f"no instruction at 0x{addr:08x}") from None

    def symbol(self, name: str) -> int:
        return self.symbols[name]

    def function_of(self, addr: int) -> str:
        """Name of the function whose entry is the closest symbol <= addr.

        Dot-prefixed local labels are not functions and are skipped.
        """
        best_name, best_addr = "?", -1
        for name, sym in self.symbols.items():
            if "." in name:
                continue
            if best_addr < sym <= addr:
                best_name, best_addr = name, sym
        return best_name

    def __len__(self) -> int:
        return len(self.instructions)
