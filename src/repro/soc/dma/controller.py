"""DMA controller: autonomous data movers.

DMA traffic is the canonical example of "significant activity without any
of the data passing through a processor core" (paper Section 3) — it is
visible only on the buses, which is why the MCDS traces buses independently
of the cores.  Each channel, once triggered by a service request, performs
a block of moves that occupy the source and destination ports and therefore
contend with the CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import DmaConfig
from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.simulator import FOREVER, Component
from ..memory.system import MemorySystem


@dataclass
class DmaChannelConfig:
    """Static setup of one channel (what the application programs once)."""

    src: int                 # source base address
    dst: int                 # destination base address
    moves: int               # beats per transfer
    stride: int = 4          # address increment per beat
    completion_srn: Optional[int] = None  # raised when a transfer finishes


class _ChannelState:
    __slots__ = ("config", "remaining", "src", "dst", "queued")

    def __init__(self, config: DmaChannelConfig) -> None:
        self.config = config
        self.remaining = 0
        self.src = config.src
        self.dst = config.dst
        self.queued = 0


class DmaController(Component):
    name = "dma"

    def __init__(self, cfg: DmaConfig, hub: EventHub, memory: MemorySystem,
                 icu=None) -> None:
        self.cfg = cfg
        self.hub = hub
        self.memory = memory
        self.icu = icu
        self.channels: Dict[int, _ChannelState] = {}
        self._next_free = 0      # single shared move engine
        self._active: List[int] = []   # round-robin order of busy channels
        self.transfers_done = 0
        self._sid_move = hub.register(signals.DMA_MOVE)
        self._sid_done = hub.register(signals.DMA_XFER_DONE)

    def configure_channel(self, channel: int, config: DmaChannelConfig) -> None:
        if not 0 <= channel < self.cfg.channels:
            raise ValueError(f"channel {channel} out of range "
                             f"(0..{self.cfg.channels - 1})")
        self.channels[channel] = _ChannelState(config)

    def trigger(self, channel: int) -> None:
        """Hardware trigger (from an SRN routed to DMA) or software start."""
        state = self.channels.get(channel)
        if state is None:
            raise KeyError(f"channel {channel} not configured")
        if state.remaining == 0:
            state.remaining = state.config.moves
            state.src = state.config.src
            state.dst = state.config.dst
            self._active.append(channel)
            self.wake()
        else:
            state.queued += 1   # re-trigger while busy: queue one more block

    def idle_until(self, cycle: int):
        if not self._active:
            return FOREVER          # trigger() wakes the move engine
        # one move per grant of the shared engine: sleep out the busy gap
        return self._next_free if self._next_free > cycle else None

    def tick(self, cycle: int) -> None:
        if cycle < self._next_free or not self._active:
            return
        channel = self._active[0]
        state = self.channels[channel]
        read_done = self.memory.read(cycle, state.src, "dma")
        write_free = self.memory.write(read_done, state.dst, "dma")
        self._next_free = max(write_free, read_done) + self.cfg.move_cycles - 1
        state.src += state.config.stride
        state.dst += state.config.stride
        state.remaining -= 1
        self.hub.emit(self._sid_move)
        if state.remaining == 0:
            self._active.pop(0)
            self.transfers_done += 1
            self.hub.emit(self._sid_done)
            if state.config.completion_srn is not None and self.icu is not None:
                self.icu.raise_request(state.config.completion_srn)
            if state.queued:
                state.queued -= 1
                self.trigger(channel)
        else:
            # round-robin between busy channels, one move each
            self._active.append(self._active.pop(0))

    def reset(self) -> None:
        for state in self.channels.values():
            state.remaining = 0
            state.queued = 0
            state.src = state.config.src
            state.dst = state.config.dst
        self._active.clear()
        self._next_free = 0
        self.transfers_done = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "channels": {
                channel: {"remaining": state.remaining, "src": state.src,
                          "dst": state.dst, "queued": state.queued}
                for channel, state in sorted(self.channels.items())
            },
            "active": list(self._active),
            "next_free": self._next_free,
            "transfers_done": self.transfers_done,
        }

    def restore_state(self, state: dict) -> None:
        for channel, entry in state["channels"].items():
            chan = self.channels[channel]
            chan.remaining = entry["remaining"]
            chan.src = entry["src"]
            chan.dst = entry["dst"]
            chan.queued = entry["queued"]
        self._active = list(state["active"])
        self._next_free = state["next_free"]
        self.transfers_done = state["transfers_done"]
