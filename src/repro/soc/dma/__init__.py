"""DMA controller."""

from .controller import DmaChannelConfig, DmaController

__all__ = ["DmaChannelConfig", "DmaController"]
