"""Catalog of performance-relevant event signals.

The paper's Enhanced System Profiling methodology taps "performance relevant
event sources like cache hits/misses, bus contentions, etc." directly in
hardware (Section 3).  Every component of the SoC model publishes its events
onto the :class:`~repro.soc.kernel.hub.EventHub` under one of the names
defined here, and MCDS counter structures subscribe to them by name.

The catalog is intentionally flat strings (not an enum) so that device
variants can register additional, device-specific sources without touching
this module; names use a ``block.event`` convention.
"""

from __future__ import annotations

# --- TriCore CPU -----------------------------------------------------------
TC_INSTR = "tc.instr_executed"          # executed instructions (count per cycle, up to 3)
TC_STALL_FETCH = "tc.stall.fetch"       # cycles stalled waiting on instruction fetch
TC_STALL_LOAD = "tc.stall.load"         # cycles stalled on data-load latency
TC_STALL_STORE = "tc.stall.store"       # cycles stalled on store-buffer/bus backpressure
TC_STALL_CONTENTION = "tc.stall.contention"  # stall cycles attributable to arbitration waits
TC_BRANCH = "tc.branch"                 # branches executed
TC_BRANCH_TAKEN = "tc.branch_taken"     # taken branches (pipeline refill)
TC_CSA = "tc.context_switch"            # fast context switch events (call/interrupt)
TC_IRQ_ENTRY = "tc.irq_entry"           # interrupt service entries on TriCore
TC_IRQ_CYCLES = "tc.irq_cycles"         # cycles spent at interrupt priority > 0

# --- Instruction cache / program fetch path --------------------------------
ICACHE_ACCESS = "icache.access"
ICACHE_HIT = "icache.hit"
ICACHE_MISS = "icache.miss"

DCACHE_ACCESS = "dcache.access"
DCACHE_HIT = "dcache.hit"
DCACHE_MISS = "dcache.miss"

# --- Program memory unit / embedded flash ----------------------------------
PFLASH_CODE_ACCESS = "pflash.code_access"    # code-port line fetches reaching the flash
PFLASH_DATA_ACCESS = "pflash.data_access"    # CPU/PCP/DMA data reads from program flash
PFLASH_BUF_HIT_CODE = "pflash.buffer_hit.code"
PFLASH_BUF_HIT_DATA = "pflash.buffer_hit.data"
PFLASH_PORT_CONFLICT = "pflash.port_conflict"  # code/data port bank arbitration conflicts
PFLASH_PREFETCH = "pflash.prefetch"          # speculative line prefetches issued
DFLASH_ACCESS = "dflash.access"              # EEPROM-emulation flash accesses

# --- SRAMs ------------------------------------------------------------------
DSPR_ACCESS = "dspr.access"             # data scratchpad accesses
PSPR_ACCESS = "pspr.access"             # program scratchpad fetches
LMU_ACCESS = "lmu.access"               # on-chip SRAM (local memory unit) accesses

# --- Buses ------------------------------------------------------------------
LMB_XFER = "lmb.transfer"
LMB_CONTENTION = "lmb.contention"       # wait cycles caused by LMB arbitration
SPB_XFER = "spb.transfer"
SPB_CONTENTION = "spb.contention"       # wait cycles caused by SPB/FPI arbitration

# --- PCP --------------------------------------------------------------------
PCP_INSTR = "pcp.instr_executed"
PCP_STALL = "pcp.stall"
PCP_IRQ_ENTRY = "pcp.irq_entry"

# --- DMA --------------------------------------------------------------------
DMA_MOVE = "dma.move"                   # single data moves completed
DMA_XFER_DONE = "dma.transfer_done"     # whole channel transfers completed

# --- Interrupt system -------------------------------------------------------
IRQ_RAISED = "irq.raised"               # service requests raised by peripherals
IRQ_TAKEN = "irq.taken"                 # service requests dispatched (either core)

# --- Peripherals -------------------------------------------------------------
ADC_CONVERSION = "adc.conversion"
CAN_RX = "can.rx"
TIMER_EVENT = "timer.event"


#: every signal a stock device registers at build time, in a stable order
STANDARD_SIGNALS = (
    TC_INSTR, TC_STALL_FETCH, TC_STALL_LOAD, TC_STALL_STORE,
    TC_STALL_CONTENTION, TC_BRANCH, TC_BRANCH_TAKEN, TC_CSA,
    TC_IRQ_ENTRY, TC_IRQ_CYCLES,
    ICACHE_ACCESS, ICACHE_HIT, ICACHE_MISS,
    DCACHE_ACCESS, DCACHE_HIT, DCACHE_MISS,
    PFLASH_CODE_ACCESS, PFLASH_DATA_ACCESS, PFLASH_BUF_HIT_CODE,
    PFLASH_BUF_HIT_DATA, PFLASH_PORT_CONFLICT, PFLASH_PREFETCH, DFLASH_ACCESS,
    DSPR_ACCESS, PSPR_ACCESS, LMU_ACCESS,
    LMB_XFER, LMB_CONTENTION, SPB_XFER, SPB_CONTENTION,
    PCP_INSTR, PCP_STALL, PCP_IRQ_ENTRY,
    DMA_MOVE, DMA_XFER_DONE,
    IRQ_RAISED, IRQ_TAKEN,
    ADC_CONVERSION, CAN_RX, TIMER_EVENT,
)
