"""Event hub: the wiring between SoC components and observation hardware.

Real silicon routes performance-event wires from each block to the MCDS
observation inputs (paper Section 3: "tap directly performance relevant event
sources").  The hub models that wiring: components ``emit`` named signals,
and observers (MCDS counters, oracle totals) receive them in the same cycle.

Emission is deliberately cheap — integer-indexed list lookups, no string
keys, no allocation, and subscriber dispatch skipped entirely when nothing
listens — because the CPU emits several signals per simulated cycle.
Hub-heavy tick methods additionally cache ``hub.emit`` in a local before
their issue loops, saving the attribute walk per emission.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class EventHub:
    """Registry and fan-out point for performance-event signals.

    Every signal also feeds a cumulative *oracle* counter.  The oracle is not
    part of the modelled hardware; it is the ground truth that tests and the
    model-validation experiments compare MCDS-measured rates against.
    """

    def __init__(self) -> None:
        #: current simulation cycle, published by the simulator each step so
        #: that hub-driven observers can timestamp without a tick of their own
        self.cycle = 0
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []
        self._subs: List[List[Callable[[int], None]]] = []
        self.totals: List[int] = []

    # -- registration --------------------------------------------------------
    def register(self, name: str) -> int:
        """Register (or look up) a signal and return its integer id."""
        sid = self._ids.get(name)
        if sid is None:
            sid = len(self._names)
            self._ids[name] = sid
            self._names.append(name)
            self._subs.append([])
            self.totals.append(0)
        return sid

    def register_all(self, names) -> None:
        for name in names:
            self.register(name)

    def signal_id(self, name: str) -> int:
        """Return the id of an already-registered signal.

        Raises ``KeyError`` for unknown names: a typo in a profiling spec
        must fail loudly, not silently count nothing.
        """
        return self._ids[name]

    def signal_name(self, sid: int) -> str:
        return self._names[sid]

    @property
    def names(self):
        return tuple(self._names)

    # -- wiring ---------------------------------------------------------------
    def subscribe(self, name: str, callback: Callable[[int], None]) -> None:
        """Attach ``callback(count)`` to a signal; called on every emission."""
        self._subs[self.register(name)].append(callback)

    def unsubscribe(self, name: str, callback: Callable[[int], None]) -> None:
        self._subs[self.signal_id(name)].remove(callback)

    # -- hot path --------------------------------------------------------------
    def emit(self, sid: int, count: int = 1) -> None:
        """Emit ``count`` occurrences of signal ``sid`` this cycle."""
        self.totals[sid] += count
        subs = self._subs[sid]
        if subs:
            for cb in subs:
                cb(count)

    # -- oracle access ---------------------------------------------------------
    def total(self, name: str) -> int:
        """Cumulative oracle count of a signal since construction."""
        return self.totals[self.signal_id(name)]

    def snapshot(self) -> Dict[str, int]:
        """Oracle totals of all signals, by name."""
        return {name: self.totals[i] for i, name in enumerate(self._names)}

    def reset(self) -> None:
        """Clear oracle totals; registrations and subscriptions persist."""
        self.cycle = 0
        for i in range(len(self.totals)):
            self.totals[i] = 0

    # -- checkpoint ------------------------------------------------------------
    def snapshot_state(self) -> Dict:
        """Published cycle + oracle totals, with names for validation.

        Registrations and subscriptions are structural: a same-spec device
        rebuild recreates them identically, so only the counters (and the
        name list that proves the rebuild matches) are serialised.
        """
        return {"cycle": self.cycle, "names": list(self._names),
                "totals": list(self.totals)}

    def restore_state(self, state: Dict) -> None:
        from ...errors import CheckpointError
        names = state["names"]
        if names != self._names:
            raise CheckpointError(
                "checkpoint hub signals do not match this device: "
                f"{len(names)} recorded vs {len(self._names)} registered")
        self.cycle = state["cycle"]
        self.totals[:] = state["totals"]
