"""Kernel profiler: where do the simulated cycles' wall-clock go?

The scheduler keeps tick/skip counts for free (they fall out of the sleep
accounting), so :meth:`~repro.soc.kernel.simulator.Simulator.kernel_stats`
always works.  What it cannot know for free is *wall time per component* —
that needs a timer pair around every tick, which is exactly the kind of
overhead the paper warns measurement machinery against.  So wall-share
profiling is opt-in: attach a :class:`KernelProfiler` and the scheduler
rebinds every slot's pre-bound tick to a timed wrapper; detach and the
plain bound methods come back.

Usage::

    profiler = KernelProfiler(device.soc.sim)
    with profiler:
        device.run(2_000_000)
    print(format_kernel_stats(device.soc.sim.kernel_stats()))

The ``repro profile-kernel`` CLI subcommand wraps this into a ready-made
naive-vs-quiescent comparison for a scenario workload.
"""

from __future__ import annotations

import time
from typing import Dict, List

from .simulator import Simulator


class KernelProfiler:
    """Opt-in per-component wall-time instrumentation for one simulator."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: id(component) -> [name, timed ticks, wall seconds]
        self._cells: Dict[int, List] = {}

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "KernelProfiler":
        self.sim._profiler = self
        self.sim._force_rebuild()
        return self

    def detach(self) -> None:
        if self.sim._profiler is self:
            self.sim._profiler = None
            self.sim._force_rebuild()

    def __enter__(self) -> "KernelProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- scheduler hook ----------------------------------------------------
    def _wrap(self, comp):
        """Return a timed stand-in for ``comp.tick`` (kernel slot binding)."""
        cell = self._cells.get(id(comp))
        if cell is None:
            cell = [comp.name, 0, 0.0]
            self._cells[id(comp)] = cell
        tick = comp.tick
        perf = time.perf_counter

        def timed_tick(cycle, _tick=tick, _cell=cell, _perf=perf):
            t0 = _perf()
            bid = _tick(cycle)
            _cell[1] += 1
            _cell[2] += _perf() - t0
            return bid               # inline idle bids must pass through

        return timed_tick


def format_top_components(stats: Dict, top: int) -> str:
    """Render the top-``top`` components by tick self-time (wall seconds).

    The table is the profile-guided optimization worklist: it names the
    components whose ``tick`` bodies burn the wall clock, ordered by
    measured self-time.  Sorting is stable and deterministic — wall
    seconds descending, then component name ascending — so two runs of
    the same workload produce comparable tables.  Requires stats gathered
    with a :class:`KernelProfiler` attached (the ``wall_s`` fields).
    """
    rows = [e for e in stats["components"] if "wall_s" in e]
    if not rows:
        return ("(no per-component wall times: attach a KernelProfiler "
                "or pass --wall)")
    rows.sort(key=lambda e: (-e["wall_s"], e["name"]))
    total = sum(e["wall_s"] for e in rows) or 1.0
    lines = [
        f"{'#':>3} {'component':<20}{'ticks':>12}{'wall s':>10}"
        f"{'self%':>8}{'cum%':>8}",
    ]
    cum = 0.0
    for rank, entry in enumerate(rows[:top], 1):
        cum += entry["wall_s"]
        lines.append(
            f"{rank:>3} {entry['name']:<20}{entry['ticks']:>12}"
            f"{entry['wall_s']:>10.4f}"
            f"{100 * entry['wall_s'] / total:>7.1f}%"
            f"{100 * cum / total:>7.1f}%")
    return "\n".join(lines)


def format_kernel_stats(stats: Dict) -> str:
    """Render ``Simulator.kernel_stats()`` as an aligned operator table."""
    lines = [
        f"kernel: {stats['kernel']}  "
        f"cycles: {stats['cycles']}  "
        f"wall: {stats['wall_s']:.3f} s  "
        f"throughput: {stats['cycles_per_sec']:,.0f} cycles/s",
        f"{'component':<20}{'ticks':>12}{'skipped':>12}{'skip%':>8}"
        f"{'sleeps':>8}{'wakes':>8}{'wall s':>10}{'wall%':>8}",
    ]
    for entry in stats["components"]:
        wall = entry.get("wall_s")
        share = entry.get("wall_share")
        wall_col = f"{wall:>10.3f}" if wall is not None else f"{'-':>10}"
        share_col = (f"{100 * share:>7.1f}%" if share is not None
                     else f"{'-':>8}")
        lines.append(
            f"{entry['name']:<20}{entry['ticks']:>12}{entry['skipped']:>12}"
            f"{100 * entry['skip_ratio']:>7.1f}%"
            f"{entry['sleeps']:>8}{entry['wakes']:>8}{wall_col}{share_col}")
    return "\n".join(lines)
