"""Simulation kernel: clocking, event wiring, shared-resource timing."""

from .hub import EventHub
from .resource import TimedResource
from .simulator import (FOREVER, Component, Simulator, kernel_mode,
                        set_default_kernel)
from . import signals

__all__ = ["EventHub", "TimedResource", "Component", "Simulator",
           "FOREVER", "kernel_mode", "set_default_kernel", "signals"]
