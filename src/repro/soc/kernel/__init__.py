"""Simulation kernel: clocking, event wiring, shared-resource timing."""

from .hub import EventHub
from .resource import TimedResource
from .simulator import Component, Simulator
from . import signals

__all__ = ["EventHub", "TimedResource", "Component", "Simulator", "signals"]
