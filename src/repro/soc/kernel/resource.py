"""Busy-until timing model for shared hardware resources.

Flash ports, bus layers, and memory banks serve one transaction at a time
(or one per pipeline slot).  Rather than replaying per-cycle arbitration for
every wire, each shared resource tracks the cycle up to which it is occupied.
A request arriving at cycle ``t`` starts at ``max(t, busy_until)``; the
difference is the *contention wait*, which is exactly the quantity the paper
wants made visible ("bus contentions" as a tapped event source).

Within a single cycle the simulator ticks masters in priority order, so a
higher-priority master registered earlier naturally wins ties — the same
observable outcome as a fixed-priority arbiter.  DESIGN.md lists this
modelling choice for ablation.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .hub import EventHub


class TimedResource:
    """A serially-occupied resource with a fixed service occupancy.

    Parameters
    ----------
    name:
        Used in reports.
    occupancy:
        Cycles the resource is blocked per transaction.
    latency:
        Cycles from (granted) start until the requester has its response.
        ``latency >= occupancy`` models pipelined resources where the
        requester waits longer than the resource is blocked; by default they
        are equal.
    contention_signal:
        Optional hub signal emitted with the number of wait cycles whenever a
        request had to queue.
    """

    def __init__(self, name: str, occupancy: int, latency: Optional[int] = None,
                 hub: Optional[EventHub] = None,
                 contention_signal: Optional[str] = None) -> None:
        self.name = name
        self.occupancy = occupancy
        self.latency = occupancy if latency is None else latency
        self.busy_until = 0
        self._hub = hub
        self._contention_sid = None
        if hub is not None and contention_signal is not None:
            self._contention_sid = hub.register(contention_signal)
        self.total_waits = 0
        self.total_grants = 0

    def access(self, now: int, occupancy: Optional[int] = None,
               latency: Optional[int] = None) -> Tuple[int, int]:
        """Request service at cycle ``now``.

        Returns ``(wait, done)``: cycles spent queued before service began,
        and the absolute cycle at which the response is available.
        """
        occ = self.occupancy if occupancy is None else occupancy
        lat = (self.latency if latency is None else latency)
        start = self.busy_until if self.busy_until > now else now
        wait = start - now
        self.busy_until = start + occ
        self.total_grants += 1
        if wait:
            self.total_waits += wait
            if self._contention_sid is not None:
                self._hub.emit(self._contention_sid, wait)
        return wait, start + lat

    def peek_wait(self, now: int) -> int:
        """Wait a request issued at ``now`` would incur, without issuing it."""
        return self.busy_until - now if self.busy_until > now else 0

    def idle_until(self, cycle: int) -> int:
        """Earliest cycle at which the resource is free again.

        Lets clocked components that block on this resource (flash and
        EEPROM wait states above all) answer the kernel's quiescence query
        with the busy-until horizon instead of polling every cycle.
        """
        return self.busy_until if self.busy_until > cycle else cycle

    def reserve_until(self, cycle: int) -> None:
        """Block the resource until ``cycle`` (e.g. background prefetch)."""
        if cycle > self.busy_until:
            self.busy_until = cycle

    def reset(self) -> None:
        self.busy_until = 0
        self.total_waits = 0
        self.total_grants = 0

    # -- checkpoint ------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"busy_until": self.busy_until,
                "total_waits": self.total_waits,
                "total_grants": self.total_grants}

    def restore_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]
        self.total_waits = state["total_waits"]
        self.total_grants = state["total_grants"]
