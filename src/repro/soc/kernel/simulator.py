"""Cycle-stepped simulation core.

The SoC model is clocked: every component exposes ``tick(cycle)`` and the
simulator calls them in a fixed, registration-defined order each CPU cycle.
The order encodes the intra-cycle causality we care about (peripherals raise
service requests before the interrupt router runs, masters issue bus traffic
before the MCDS samples the cycle, ...).

All time is kept in CPU-clock cycles.  Slower clock domains (the peripheral
bus, the flash array) are expressed as multi-cycle latencies/occupancies via
:class:`~repro.soc.kernel.resource.TimedResource`, which is how the real
parts behave from the CPU's point of view as well.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ...errors import WatchdogExpired
from .hub import EventHub


class Component:
    """Base class for clocked SoC blocks."""

    #: short instance name used in topology dumps and reports
    name: str = "component"

    def tick(self, cycle: int) -> None:
        """Advance one CPU cycle.  Default: combinational block, no state."""

    def reset(self) -> None:
        """Return to power-on state.  Components with state must override."""


class Simulator:
    """Owns the clock, the event hub, and the tick order of all components."""

    def __init__(self, seed: int = 2008) -> None:
        self.cycle = 0
        self.hub = EventHub()
        self.components: List[Component] = []
        self.seed = seed
        self._streams: dict = {}

    # -- construction -----------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; tick order == registration order."""
        self.components.append(component)
        return component

    def rng(self, stream: str) -> random.Random:
        """Deterministic per-purpose random stream.

        Separate named streams keep workload behaviour stable when unrelated
        components add or remove their own randomness — essential for the
        non-intrusiveness experiment (E8), which compares two runs cycle by
        cycle.
        """
        rng = self._streams.get(stream)
        if rng is None:
            rng = random.Random(f"{self.seed}/{stream}")
            self._streams[stream] = rng
        return rng

    # -- execution ----------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Run the clock for ``cycles`` CPU cycles."""
        components = self.components
        hub = self.hub
        for _ in range(cycles):
            c = self.cycle
            hub.cycle = c
            for comp in components:
                comp.tick(c)
            self.cycle = c + 1

    def run_until(self, predicate: Callable[["Simulator"], bool],
                  max_cycles: int = 10_000_000) -> int:
        """Step until ``predicate(sim)`` holds; returns cycles executed."""
        start = self.cycle
        while not predicate(self):
            if self.cycle - start >= max_cycles:
                raise WatchdogExpired(
                    f"run_until exceeded {max_cycles} cycles without "
                    f"predicate becoming true")
            self.step()
        return self.cycle - start

    def reset(self) -> None:
        self.cycle = 0
        # re-seed streams in place: components hold references to these
        # Random objects, so clearing the dict would leave them with
        # advanced state and break run-to-run reproducibility
        for name, rng in self._streams.items():
            rng.seed(f"{self.seed}/{name}")
        self.hub.reset()
        for comp in self.components:
            comp.reset()
