"""Cycle-stepped simulation core with quiescence-aware scheduling.

The SoC model is clocked: every component exposes ``tick(cycle)`` and the
simulator calls them in a fixed, registration-defined order each CPU cycle.
The order encodes the intra-cycle causality we care about (peripherals raise
service requests before the interrupt router runs, masters issue bus traffic
before the MCDS samples the cycle, ...).

All time is kept in CPU-clock cycles.  Slower clock domains (the peripheral
bus, the flash array) are expressed as multi-cycle latencies/occupancies via
:class:`~repro.soc.kernel.resource.TimedResource`, which is how the real
parts behave from the CPU's point of view as well.

Scheduling model
----------------

Most components are *quiescent* most of the time: a timer between events, a
DMA engine with no active channel, a CPU sitting in a wait-for-interrupt
halt.  Ticking them every cycle buys nothing but Python dispatch cost.  The
kernel therefore splits components into a **hot set** (ticked every cycle,
in registration order) and a **sleep heap** keyed by wake cycle:

* after each tick the kernel asks ``idle_until(next_cycle)``; a component
  that can prove it will not change state before cycle ``W`` is moved to
  the heap and not ticked again until ``W`` (or an explicit ``wake()``);
* when the hot set is empty the clock fast-forwards straight to the next
  wake point — no per-cycle Python at all;
* external pokes (an SRN raise, a DMA trigger, a late compare write) call
  ``wake()``, which re-inserts the sleeper *in registration-order position*
  so intra-cycle arbitration is preserved exactly;
* a component whose per-cycle tick accumulates state while quiescent (the
  CPU's ``halt_cycles``) receives the skipped span through
  ``on_kernel_skip(start, stop)`` before it runs again, so external
  observations match the naive loop cycle-for-cycle.

The optimized kernel is an *observationally equivalent scheduler*, not a
new semantics: spurious wakes are always safe (a quiescent tick is a
no-op), and ``Simulator(strict_equivalence=True)`` mechanically audits
every skip claim against the naive all-tick loop (see below).

Three kernel modes exist: ``"quiescent"`` (default), ``"naive"`` (the
original every-component-every-cycle loop, kept as the measured baseline),
and the strict-equivalence audit mode.  :func:`kernel_mode` /
:func:`set_default_kernel` select the mode for subsequently built
simulators without threading a parameter through device constructors.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional

from ...errors import (ConfigurationError, KernelEquivalenceError,
                       WatchdogExpired)
from ...obs import runtime as _obs
from .hub import EventHub

#: sleep-forever sentinel returned by ``idle_until``: the component cannot
#: change state again without an external ``wake()``
FOREVER = 2 ** 63

_KERNELS = ("quiescent", "naive", "strict")

#: kernel mode used by simulators built without an explicit ``kernel=``
DEFAULT_KERNEL = "quiescent"


def set_default_kernel(mode: str) -> str:
    """Set the module-wide default kernel mode; returns the previous one."""
    global DEFAULT_KERNEL
    if mode not in _KERNELS:
        raise ConfigurationError(
            f"unknown kernel mode {mode!r}; choose from {_KERNELS}")
    previous = DEFAULT_KERNEL
    DEFAULT_KERNEL = mode
    return previous


@contextmanager
def kernel_mode(mode: str):
    """Build simulators under a different default kernel mode::

        with kernel_mode("naive"):
            device = scenario.build(config, params, seed=seed)
    """
    previous = set_default_kernel(mode)
    try:
        yield
    finally:
        set_default_kernel(previous)


class Component:
    """Base class for clocked SoC blocks."""

    #: short instance name used in topology dumps and reports
    name: str = "component"

    #: the scheduler this component is registered with (set by the kernel);
    #: ``wake()`` routes through it
    _kernel: Optional["Simulator"] = None

    def tick(self, cycle: int):
        """Advance one CPU cycle.  Default: combinational block, no state.

        A tick may return an *inline idle bid*: the same value
        :meth:`idle_until` would return for ``cycle + 1``.  The quiescent
        kernel then skips the separate ``idle_until`` round-trip for that
        cycle — worthwhile for components ticking hundreds of thousands
        of times per run.  Returning ``None`` (the default) means "ask
        ``idle_until`` as usual"; returning ``cycle + 1`` means "keep me
        hot without asking".  The two sources must agree: strict mode
        audits claims against :meth:`idle_until` only.
        """

    def reset(self) -> None:
        """Return to power-on state.  Components with state must override."""

    # -- quiescence contract -------------------------------------------------
    def idle_until(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which ``tick`` may do something.

        Called by the kernel after each tick with the *next* cycle it would
        run.  Return ``None`` to keep ticking every cycle, or an absolute
        cycle ``W > cycle`` to promise that every tick in ``[cycle, W)``
        would be a no-op — no event emission, no observable state change
        beyond what :meth:`on_kernel_skip` reconstructs.  ``FOREVER`` means
        "only an external :meth:`wake` can make me runnable again".
        Conservative answers are always safe; optimistic ones are caught by
        ``strict_equivalence`` runs.
        """
        return None

    def wake(self) -> None:
        """External poke: make a sleeping component runnable again.

        Safe to call at any time (no-op when the component is hot or not
        registered).  Anything that changes a sleeper's inputs — raising a
        service request, triggering a DMA channel, programming a compare
        cell — must call this on the affected component.
        """
        kernel = self._kernel
        if kernel is not None:
            kernel._wake_component(self)

    def on_kernel_skip(self, start: int, stop: int) -> None:
        """The kernel skipped this component's ticks in ``[start, stop)``.

        Called just before the component runs again (and when the simulator
        settles at a step boundary).  Override to reconstruct per-cycle
        bookkeeping the skipped ticks would have done (e.g. the CPU's
        ``halt_cycles``).
        """

    def observable_state(self) -> int:
        """Cheap scalar fingerprint of externally visible state.

        The strict-equivalence auditor samples this (plus the event-hub
        oracle totals) around every tick it predicted to be quiescent.
        Override in components whose observable output bypasses the hub
        (trace-byte producers).
        """
        return 0

    # -- checkpoint contract -------------------------------------------------
    def snapshot_state(self) -> dict:
        """All mutable state as a codec-serialisable dict.

        The contract is *completeness*: restoring this dict into a
        freshly built twin (same spec, same seed) and running on must be
        byte-identical to never having stopped.  Values must survive
        :mod:`repro.checkpoint.codec` — plain scalars, lists, tuples,
        dicts; object references must be mapped to stable identities
        (an instruction's address, a channel's number) because ``id()``
        does not survive a process boundary.  Stateless/combinational
        components inherit this empty default.
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`, applied to a fresh twin.

        Restore may leave scheduler-facing caches (armed lists, heap
        hints) rebuilt rather than bit-equal: the quiescent kernel
        restarts every component hot after a restore, and spurious ticks
        are no-ops by the kernel's own equivalence contract.
        """


class _Slot:
    """Scheduler bookkeeping for one registered component."""

    __slots__ = ("comp", "index", "tick", "idle", "observe", "has_idle",
                 "asleep", "wake_at", "slept_from", "skipped", "sleeps",
                 "wakes", "created_at")

    def __init__(self, comp: Component, index: int, created_at: int) -> None:
        self.comp = comp
        self.index = index
        self.tick = comp.tick                 # pre-bound hot-path callable
        self.idle = comp.idle_until
        self.observe = comp.observable_state
        # components that never override idle_until are not queried at all
        self.has_idle = type(comp).idle_until is not Component.idle_until
        self.asleep = False
        self.wake_at = 0
        self.slept_from = 0
        self.skipped = 0                      # cycles never ticked (or, in
        self.sleeps = 0                       # strict mode, audited no-ops)
        self.wakes = 0
        self.created_at = created_at


class Simulator:
    """Owns the clock, the event hub, and the tick order of all components."""

    def __init__(self, seed: int = 2008, kernel: Optional[str] = None,
                 strict_equivalence: bool = False) -> None:
        self.cycle = 0
        self.hub = EventHub()
        self.components: List[Component] = []
        self.seed = seed
        self._streams: dict = {}
        if kernel is None:
            kernel = DEFAULT_KERNEL
        if kernel not in _KERNELS:
            raise ConfigurationError(
                f"unknown kernel mode {kernel!r}; choose from {_KERNELS}")
        if kernel == "strict":
            strict_equivalence = True
        self.kernel = "naive" if kernel == "naive" else "quiescent"
        self.strict_equivalence = strict_equivalence
        self._mode = "strict" if strict_equivalence else self.kernel
        # scheduler state (built lazily at the first step)
        self._slots: List[_Slot] = []
        self._slot_by_id: Dict[int, _Slot] = {}
        self._roster: Optional[List[Component]] = None
        self._hot: List[_Slot] = []
        self._heap: list = []
        self._in_cycle = False
        self._tick_pos = 0
        self._now = 0
        self._profiler = None                 # set by kprof.KernelProfiler
        self._wall_s = 0.0
        self._cycles_run = 0
        # non-component state providers included in checkpoints (the
        # memory system, the EMEM, ...), keyed stably by the device
        # builder; insertion order is the restore order
        self._state_extras: Dict[str, object] = {}

    # -- construction -----------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; tick order == registration order."""
        self.components.append(component)
        return component

    def attach_state(self, key: str, provider) -> None:
        """Register a non-component object for checkpoint inclusion.

        ``provider`` implements ``snapshot_state()``/``restore_state()``
        like a :class:`Component`; device builders attach blocks that are
        not clocked (the memory system, the EMEM buffer) so a checkpoint
        covers the whole device, not just the tick roster.
        """
        if key in self._state_extras:
            raise ConfigurationError(
                f"state provider {key!r} already attached")
        self._state_extras[key] = provider

    def rng(self, stream: str) -> random.Random:
        """Deterministic per-purpose random stream.

        Separate named streams keep workload behaviour stable when unrelated
        components add or remove their own randomness — essential for the
        non-intrusiveness experiment (E8), which compares two runs cycle by
        cycle.
        """
        rng = self._streams.get(stream)
        if rng is None:
            rng = random.Random(f"{self.seed}/{stream}")
            self._streams[stream] = rng
        return rng

    # -- scheduler plumbing --------------------------------------------------
    def _sync_roster(self) -> None:
        """(Re)build slots when the component list changed.

        The roster can mutate between steps — ``SimulationWatchdog.guard``
        splices itself directly into ``components`` — so each step entry
        compares against the list the slots were built from.  Sleeping
        carried-over components stay asleep; their heap entries are rebuilt
        because registration indices may have shifted.
        """
        comps = self.components
        if self._roster == comps:
            return
        old = {id(slot.comp): slot for slot in self._slots}
        slots: List[_Slot] = []
        profiler = self._profiler
        for index, comp in enumerate(comps):
            slot = old.get(id(comp))
            if slot is None:
                slot = _Slot(comp, index, self.cycle)
            else:
                slot.index = index
            if profiler is not None:
                slot.tick = profiler._wrap(comp)
            else:
                slot.tick = comp.tick
            comp._kernel = self
            slots.append(slot)
        self._slots = slots
        self._slot_by_id = {id(slot.comp): slot for slot in slots}
        self._roster = list(comps)
        self._hot = [slot for slot in slots if not slot.asleep]
        heap = [(slot.wake_at, slot.index) for slot in slots if slot.asleep]
        heapify(heap)
        self._heap = heap

    def _force_rebuild(self) -> None:
        self._roster = None

    def _insert_hot(self, slot: _Slot) -> int:
        """Insert a slot into the hot list at its registration-order spot."""
        hot = self._hot
        index = slot.index
        lo, hi = 0, len(hot)
        while lo < hi:
            mid = (lo + hi) // 2
            if hot[mid].index < index:
                lo = mid + 1
            else:
                hi = mid
        hot.insert(lo, slot)
        return lo

    def _credit(self, slot: _Slot, stop: int) -> None:
        start = slot.slept_from
        if stop > start:
            slot.skipped += stop - start
            slot.comp.on_kernel_skip(start, stop)
            slot.slept_from = stop

    def _wake_component(self, comp: Component) -> None:
        slot = self._slot_by_id.get(id(comp))
        if slot is None or not slot.asleep:
            return
        slot.asleep = False
        slot.wakes += 1
        if self._mode == "strict":
            return                 # strict ticks everyone; flag-only
        if self._in_cycle:
            cycle = self._now
            pos = self._insert_hot(slot)
            if pos <= self._tick_pos:
                # the waker ticks *after* this component in registration
                # order, so in the naive loop the sleeper's tick this cycle
                # already happened (as a no-op): first real tick is next
                # cycle, and the cursor shifts with the insertion
                self._tick_pos += 1
                stop = cycle + 1
            else:
                # the waker precedes the sleeper: the naive loop would tick
                # the sleeper later this same cycle, so we do too
                stop = cycle
        else:
            stop = self.cycle
            self._insert_hot(slot)
        self._credit(slot, stop)

    def _settle(self, end: int) -> None:
        """Bring sleepers' skip accounting (and ``hub.cycle``) up to ``end``.

        Run at every step boundary so externally read state — the CPU's
        ``halt_cycles``, the hub's published cycle — matches what the naive
        loop would show after the same number of cycles.
        """
        for slot in self._slots:
            if slot.asleep:
                self._credit(slot, end)
        if end > 0:
            self.hub.cycle = end - 1

    # -- execution ----------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Run the clock for ``cycles`` CPU cycles."""
        self._advance(self.cycle + cycles, None, 1)

    def run_until(self, predicate: Callable[["Simulator"], bool],
                  max_cycles: int = 10_000_000, check_every: int = 1) -> int:
        """Step until ``predicate(sim)`` holds; returns cycles executed.

        ``check_every`` strides predicate evaluation across fast-forwarded
        quiescent spans: state is frozen there, so the predicate is a pure
        function of the clock and, on a hit, an exact back-off rescan of
        the last stride window recovers the precise crossing cycle.  Hot
        cycles always evaluate the predicate per cycle (component ticks
        dominate the cost, and state changes make striding unsound), so
        the returned count is bit-identical to the ``check_every=1``
        baseline for any stride.
        """
        if check_every < 1:
            raise ConfigurationError("check_every must be >= 1")
        start = self.cycle
        if predicate(self):
            return 0
        if not self._advance(start + max_cycles, predicate, check_every):
            raise WatchdogExpired(
                f"run_until exceeded {max_cycles} cycles without "
                f"predicate becoming true")
        return self.cycle - start

    def _advance(self, target: int, predicate, check_every: int) -> bool:
        """Run to ``target`` (or a predicate hit); True on predicate hit."""
        if target <= self.cycle:
            return False
        began = self.cycle
        # telemetry is sampled once per advance span (not per cycle): the
        # per-cycle loops below stay untouched, so a disabled slot costs
        # one attribute check per step()/run_until() call
        tel = _obs._active
        obs_t0 = tel.tracer.now_us() if tel is not None else 0.0
        t0 = time.perf_counter()
        try:
            self._sync_roster()
            if self._mode == "quiescent":
                return self._advance_quiescent(target, predicate, check_every)
            return self._advance_lockstep(target, predicate, check_every)
        finally:
            self._wall_s += time.perf_counter() - t0
            self._cycles_run += self.cycle - began
            if tel is not None:
                tel.sim_advance(self._mode, began, self.cycle, obs_t0)

    def _advance_quiescent(self, target: int, predicate,
                           check_every: int) -> bool:
        slots = self._slots
        hot = self._hot
        heap = self._heap
        hub = self.hub
        insert_hot = self._insert_hot
        credit = self._credit
        has_pred = predicate is not None
        c = self.cycle
        while c < target:
            # wake sleepers that are due this cycle (lazy heap entries:
            # slot.wake_at is authoritative, stale pairs are discarded)
            while heap and heap[0][0] <= c:
                wake_at, index = heappop(heap)
                slot = slots[index] if index < len(slots) else None
                if slot is not None and slot.asleep \
                        and slot.wake_at == wake_at:
                    slot.asleep = False
                    insert_hot(slot)
                    credit(slot, c)

            if not hot:
                # quiescent span: fast-forward to the next wake point; no
                # per-cycle hub publication, no ticks, frozen state
                span_end = target
                if heap and heap[0][0] < span_end:
                    span_end = heap[0][0]
                if predicate is None:
                    c = span_end
                    self.cycle = c
                    continue
                while c < span_end:
                    step = check_every
                    if step > span_end - c:
                        step = span_end - c
                    c += step
                    self.cycle = c
                    hub.cycle = c - 1
                    if predicate(self):
                        # exact back-off: state is frozen across the span,
                        # so rewinding the pure clock to rescan the last
                        # stride window is sound
                        for v in range(c - step + 1, c):
                            self.cycle = v
                            hub.cycle = v - 1
                            if predicate(self):
                                c = v
                                break
                        self.cycle = c
                        self._settle(c)
                        return True
                self.cycle = c
                continue

            if not has_pred and len(hot) == 1:
                # fused single-owner span: one slot (typically the CPU)
                # owns the clock, so the per-cycle cost collapses to the
                # tick and its idle bid.  The loop runs until the next
                # heap wake is due, a mid-tick wake grows the hot set, or
                # the owner goes properly to sleep.  A short nap that
                # would end before anyone else is due never touches the
                # heap at all: the clock jumps in place and the skip is
                # credited immediately, exactly as a wake would have.
                slot = hot[0]
                tick = slot.tick
                idle = slot.idle if slot.has_idle else None
                span_end = target
                if heap and heap[0][0] < span_end:
                    span_end = heap[0][0]
                self._tick_pos = 0
                self._in_cycle = True
                try:
                    # self.cycle is written once on exit (see finally):
                    # nothing observes it mid-advance — components get the
                    # cycle as a tick argument, wakes read _now, and event
                    # observers timestamp off hub.cycle
                    while c < span_end:
                        hub.cycle = c
                        self._now = c
                        wake_at = tick(c)
                        if len(hot) != 1:
                            # a mid-tick wake joined this cycle: place
                            # the owner's own sleep bid, finish the
                            # cycle in registration order, and rejoin
                            # the outer loop
                            pos = self._tick_pos
                            if wake_at is None and idle is not None:
                                wake_at = idle(c + 1)
                            if wake_at is not None and wake_at > c + 1:
                                hot.pop(pos)
                                slot.asleep = True
                                slot.wake_at = wake_at
                                slot.slept_from = c + 1
                                slot.sleeps += 1
                                heappush(heap, (wake_at, slot.index))
                            else:
                                pos += 1
                            self._tick_cycle(c, pos)
                            c += 1
                            break
                        if wake_at is None and idle is not None:
                            wake_at = idle(c + 1)
                        if wake_at is not None and wake_at > c + 1:
                            if wake_at <= span_end:
                                # sole-owner nap ending before any
                                # sleeper is due: skip straight to
                                # the wake cycle in place
                                slot.skipped += wake_at - (c + 1)
                                slot.sleeps += 1
                                slot.comp.on_kernel_skip(c + 1, wake_at)
                                c = wake_at
                                continue
                            hot.pop(0)
                            slot.asleep = True
                            slot.wake_at = wake_at
                            slot.slept_from = c + 1
                            slot.sleeps += 1
                            heappush(heap, (wake_at, slot.index))
                            c += 1
                            break
                        c += 1
                finally:
                    self._in_cycle = False
                    self.cycle = c
                continue

            # hot cycle: tick the hot set in registration order, letting
            # each has_idle component bid for sleep right after its tick
            hub.cycle = c
            self._now = c
            self._in_cycle = True
            try:
                self._tick_cycle(c, 0)
            finally:
                self._in_cycle = False
            c += 1
            self.cycle = c
            if has_pred and predicate(self):
                self._settle(c)
                return True
        self._settle(target)
        return False

    def _tick_cycle(self, c: int, pos: int) -> None:
        """Tick ``self._hot[pos:]`` for cycle ``c`` in registration order,
        letting each ``has_idle`` component bid for sleep right after its
        tick.  The caller owns the cycle framing (``hub.cycle``,
        ``_now``, ``_in_cycle``)."""
        hot = self._hot
        heap = self._heap
        while pos < len(hot):
            slot = hot[pos]
            self._tick_pos = pos
            wake_at = slot.tick(c)
            pos = self._tick_pos         # mid-tick wakes may shift it
            if wake_at is None and slot.has_idle:
                wake_at = slot.idle(c + 1)
            if wake_at is not None and wake_at > c + 1:
                hot.pop(pos)
                slot.asleep = True
                slot.wake_at = wake_at
                slot.slept_from = c + 1
                slot.sleeps += 1
                heappush(heap, (wake_at, slot.index))
                continue                 # next slot slid into pos
            pos += 1

    def _advance_lockstep(self, target: int, predicate,
                          check_every: int) -> bool:
        """Naive all-tick loop; in strict mode it additionally audits every
        cycle the quiescent scheduler would have skipped."""
        slots = self._slots
        hub = self.hub
        totals = hub.totals
        strict = self._mode == "strict"
        c = self.cycle
        while c < target:
            hub.cycle = c
            self._now = c
            for slot in slots:
                if strict and slot.asleep:
                    if c < slot.wake_at:
                        # the quiescent kernel would not run this tick;
                        # prove it is a no-op (oracle totals + the
                        # component's own trace-byte fingerprint)
                        before = sum(totals) + slot.observe()
                        slot.tick(c)
                        if sum(totals) + slot.observe() != before:
                            raise KernelEquivalenceError(
                                f"{slot.comp.name!r} claimed quiescence "
                                f"until cycle {slot.wake_at} but its tick "
                                f"at cycle {c} changed observable state")
                        slot.skipped += 1
                        continue
                    slot.asleep = False
                slot.tick(c)
                if strict and slot.has_idle:
                    wake_at = slot.idle(c + 1)
                    if wake_at is not None and wake_at > c + 1:
                        slot.asleep = True
                        slot.wake_at = wake_at
                        slot.slept_from = c + 1
                        slot.sleeps += 1
            c += 1
            self.cycle = c
            if predicate is not None and predicate(self):
                return True
        return False

    # -- introspection -------------------------------------------------------
    def kernel_stats(self) -> Dict:
        """Scheduler efficiency counters (see docs/architecture.md).

        Always available at zero hot-path cost: per-component tick counts
        are derived from the sleep accounting, not counted per tick.
        Wall-time shares appear when a :class:`~repro.soc.kernel.kprof.
        KernelProfiler` is attached.
        """
        cycle = self.cycle
        wall = self._wall_s
        prof = self._profiler
        components = []
        for slot in self._slots:
            alive = cycle - slot.created_at
            pending = cycle - slot.slept_from \
                if slot.asleep and cycle > slot.slept_from else 0
            skipped = slot.skipped + pending
            entry = {
                "name": slot.comp.name,
                "ticks": alive - skipped,
                "skipped": skipped,
                "skip_ratio": skipped / alive if alive else 0.0,
                "sleeps": slot.sleeps,
                "wakes": slot.wakes,
                "asleep": slot.asleep,
            }
            if prof is not None:
                cell = prof._cells.get(id(slot.comp))
                if cell is not None:
                    entry["wall_s"] = cell[2]
            components.append(entry)
        if prof is not None:
            total_comp_wall = sum(e.get("wall_s", 0.0) for e in components)
            if total_comp_wall > 0:
                for entry in components:
                    entry["wall_share"] = \
                        entry.get("wall_s", 0.0) / total_comp_wall
        return {
            "kernel": self._mode,
            "cycles": self._cycles_run,
            "wall_s": wall,
            "cycles_per_sec": self._cycles_run / wall if wall > 0 else 0.0,
            "components": components,
        }

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> Dict:
        """Complete simulation state as one codec-serialisable dict.

        Settles skip accounting first (so sleeper-side bookkeeping like
        the CPU's ``halt_cycles`` is materialised to the current cycle),
        then captures the clock, every RNG stream, the hub oracle, every
        component, and every attached extra.  Scheduler state (hot set,
        sleep heap, skip counters) is deliberately *not* captured: the
        quiescent kernel restarts everyone hot after a restore, and
        spurious ticks of quiescent components are no-ops by contract —
        so the scheduler reconverges without affecting any observable.
        """
        self._sync_roster()
        self._settle(self.cycle)
        return {
            "cycle": self.cycle,
            "seed": self.seed,
            "streams": {name: rng.getstate()
                        for name, rng in sorted(self._streams.items())},
            "hub": self.hub.snapshot_state(),
            "components": [
                {"name": comp.name, "state": comp.snapshot_state()}
                for comp in self.components
            ],
            "extras": {key: provider.snapshot_state()
                       for key, provider in self._state_extras.items()},
        }

    def restore_state(self, state: Dict) -> None:
        """Apply a :meth:`snapshot_state` dict to this (same-spec) sim.

        Validates the component roster and hub wiring against the
        snapshot before touching anything, so a checkpoint from a
        different device spec is rejected whole rather than half-applied.
        """
        from ...errors import CheckpointError
        recorded = [entry["name"] for entry in state["components"]]
        current = [comp.name for comp in self.components]
        if recorded != current:
            raise CheckpointError(
                f"checkpoint component roster {recorded} does not match "
                f"this device ({current}); was it built from the same "
                f"spec and seed?")
        extras = state.get("extras", {})
        missing = set(extras) - set(self._state_extras)
        if missing:
            raise CheckpointError(
                f"checkpoint has state for unattached providers: "
                f"{sorted(missing)}")
        self.hub.restore_state(state["hub"])
        self.cycle = state["cycle"]
        for name, rng_state in state["streams"].items():
            self.rng(name).setstate(rng_state)
        for comp, entry in zip(self.components, state["components"]):
            comp.restore_state(entry["state"])
        for key, extra_state in extras.items():
            self._state_extras[key].restore_state(extra_state)
        # drop scheduler state: everyone restarts hot (mirrors reset());
        # sleepers re-earn their heap slots on the first post-restore tick
        self._slots = []
        self._slot_by_id = {}
        self._roster = None
        self._hot = []
        self._heap = []

    def checkpoint(self, path: str, meta: Optional[Dict] = None) -> str:
        """Write the full simulation state to a checkpoint file.

        The file is CRC-guarded, schema-versioned, and atomically
        replaced (see :mod:`repro.checkpoint.format`); restoring it with
        :meth:`restore` on a freshly built same-spec device and running
        on is byte-identical to an uninterrupted run.
        """
        from ...checkpoint import save_checkpoint
        tel = _obs._active
        body = dict(meta or {})
        body.setdefault("kind", "simulator")
        body["cycle"] = self.cycle
        body["seed"] = self.seed
        if tel is not None:
            with tel.span("checkpoint.save", cat="checkpoint",
                          cycle=self.cycle):
                return save_checkpoint(path, self.snapshot_state(), body)
        return save_checkpoint(path, self.snapshot_state(), body)

    def restore(self, path: str) -> Dict:
        """Load a checkpoint file into this simulator; returns its meta.

        Raises :class:`~repro.errors.CheckpointError` (retryable) for a
        corrupt, truncated, schema-incompatible, or wrong-device file —
        and guarantees no state was modified in that case.
        """
        from ...checkpoint import load_checkpoint
        tel = _obs._active
        body, meta = load_checkpoint(path)
        if tel is not None:
            with tel.span("checkpoint.restore", cat="checkpoint",
                          cycle=body.get("cycle", 0)):
                self.restore_state(body)
        else:
            self.restore_state(body)
        if tel is not None:
            tel.checkpoint_restored("success", path, cycle=self.cycle)
        return meta

    def reset(self) -> None:
        self.cycle = 0
        # re-seed streams in place: components hold references to these
        # Random objects, so clearing the dict would leave them with
        # advanced state and break run-to-run reproducibility
        for name, rng in self._streams.items():
            rng.seed(f"{self.seed}/{name}")
        self.hub.reset()
        for comp in self.components:
            comp.reset()
        # drop scheduler state: every component restarts hot, and the
        # efficiency counters restart with the run they describe
        self._slots = []
        self._slot_by_id = {}
        self._roster = None
        self._hot = []
        self._heap = []
        self._wall_s = 0.0
        self._cycles_run = 0
