"""Product-chip assembly: wires cores, memory fabric, DMA, and peripherals.

This is the "Product Chip Part (SoC)" of the paper's Figure 4.  The
Emulation Device (:mod:`repro.ed`) wraps an instance of this class and adds
the EEC (MCDS + EMEM + tool access) around it without touching it — the
structural property that makes ED-based profiling non-intrusive.

Tick order encodes arbitration priority for same-cycle requests:
peripherals raise requests first, then the DMA move engine, the PCP, and
finally the TriCore; observers (MCDS) tick last so they see the completed
cycle.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import runtime as _obs
from .config import SoCConfig, tc1797_config
from .cpu.isa import Program
from .cpu.tricore import TriCoreCpu
from .dma.controller import DmaController
from .interrupts.icu import InterruptRouter
from .kernel import signals
from .kernel.simulator import Component, Simulator
from .memory.map import AddressMap
from .memory.system import MemorySystem


class Soc:
    """One configured product chip, ready to run application software."""

    def __init__(self, config: Optional[SoCConfig] = None,
                 seed: int = 2008) -> None:
        self.config = config if config is not None else tc1797_config()
        self.sim = Simulator(seed)
        self.hub = self.sim.hub
        self.hub.register_all(signals.STANDARD_SIGNALS)
        self.map = AddressMap.for_config(self.config)
        self.memory = MemorySystem(self.config, self.hub, self.map)
        self.icu = InterruptRouter(self.hub)
        self.dma = DmaController(self.config.dma, self.hub, self.memory,
                                 self.icu)
        self.icu.dma_controller = self.dma
        from .pcp.core import PcpCore  # late import avoids a cycle
        self.pcp = PcpCore(self.config.pcp, self.hub, self.memory, self.icu,
                           self.sim.rng("pcp"))
        self.cpu = TriCoreCpu(self.config.cpu, self.hub, self.memory,
                              self.icu, self.sim.rng("tc"))
        # service-request raises must wake a quiescent provider core
        self.icu.providers["tc"] = self.cpu
        self.icu.providers["pcp"] = self.pcp
        self.peripherals: List[Component] = []
        self.observers: List[Component] = []
        self._ordered = False
        # the memory fabric and interrupt router are not clocked
        # components, so they ride checkpoints as attached state providers
        self.sim.attach_state("memory", self.memory)
        self.sim.attach_state("icu", self.icu)

    # -- construction -----------------------------------------------------
    def add_peripheral(self, peripheral: Component) -> Component:
        if self._ordered:
            raise RuntimeError("cannot add peripherals after the first run")
        self.peripherals.append(peripheral)
        return peripheral

    def add_observer(self, observer: Component) -> Component:
        """Attach a purely-observing component (MCDS, DAP drain)."""
        if self._ordered:
            raise RuntimeError("cannot add observers after the first run")
        self.observers.append(observer)
        return observer

    def load_program(self, program: Program) -> None:
        self.cpu.load_program(program)

    # -- execution -----------------------------------------------------------
    def _ensure_order(self) -> None:
        if self._ordered:
            return
        for comp in self.peripherals:
            self.sim.add(comp)
        self.sim.add(self.dma)
        self.sim.add(self.pcp)
        self.sim.add(self.cpu)
        for comp in self.observers:
            self.sim.add(comp)
        self._ordered = True

    def run(self, cycles: int) -> None:
        self._ensure_order()
        self.sim.step(cycles)

    @property
    def cycle(self) -> int:
        return self.sim.cycle

    # -- checkpoint ----------------------------------------------------------
    def checkpoint(self, path: str, meta: Optional[dict] = None) -> str:
        """Write the whole chip's state to a checkpoint file."""
        self._ensure_order()        # roster must be final before capture
        body = dict(meta or {})
        body.setdefault("kind", "soc")
        return self.sim.checkpoint(path, body)

    def restore(self, path: str) -> dict:
        """Load a checkpoint into this (same-spec, same-seed) chip."""
        self._ensure_order()
        return self.sim.restore(path)

    # -- inspection -------------------------------------------------------------
    def oracle(self) -> dict:
        """Ground-truth event totals (not available on real silicon)."""
        return self.hub.snapshot()

    def ipc(self) -> float:
        """Overall TriCore IPC since reset (oracle view)."""
        cycles = self.sim.cycle
        return self.cpu.retired / cycles if cycles else 0.0

    def block_inventory(self) -> List[str]:
        """Names of the structural blocks, for topology checks (Fig. 2/4)."""
        blocks = ["tricore", "pcp", "dma", "icu", "pflash", "dflash",
                  "dspr", "pspr", "lmu", "lmb", "spb"]
        if self.memory.icache is not None:
            blocks.append("icache")
        if self.memory.dcache is not None:
            blocks.append("dcache")
        blocks.extend(p.name for p in self.peripherals)
        return blocks

    def reset(self) -> None:
        self.sim.reset()
        self.memory.reset()
        self.icu.reset()
        # a reset starts a new logical run: telemetry reseeds span ids and
        # per-run histograms so repeated runs produce identical traces
        tel = _obs._active
        if tel is not None:
            tel.on_device_reset()
