"""Bus layers and arbitration."""

from .layers import Bus

__all__ = ["Bus"]
