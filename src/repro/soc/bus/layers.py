"""Multi-master bus layers (LMB and SPB/FPI).

A bus layer is a serially-granted resource shared by the TriCore, the PCP,
and the DMA move engines.  Grant order within a cycle follows the
simulator's tick order, which the device builder arranges to match the
hardware's fixed-priority arbitration (DMA before CPU for the SPB, CPU
first on the LMB).  Contention wait cycles are published as event sources —
one of the paper's headline profiling parameters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kernel.hub import EventHub
from ..kernel.resource import TimedResource


class Bus:
    """One bus layer with transfer/contention event accounting."""

    def __init__(self, name: str, hub: EventHub, occupancy: int, latency: int,
                 transfer_signal: str, contention_signal: str) -> None:
        self.name = name
        self.hub = hub
        self.latency = latency
        self._resource = TimedResource(
            name, occupancy, latency, hub=hub,
            contention_signal=contention_signal)
        self._sid_xfer = hub.register(transfer_signal)
        #: master -> [grants, waits]; a single mutable cell per master keeps
        #: the per-beat accounting to one dict probe on the transfer path
        self._masters: Dict[str, List[int]] = {}

    def transfer(self, now: int, master: str,
                 latency: Optional[int] = None,
                 target: str = "default") -> Tuple[int, int]:
        """Request one beat; returns ``(wait_cycles, response_cycle)``.

        ``target`` is accepted for API compatibility with
        :class:`CrossbarBus`; a shared bus serialises all targets.
        """
        wait, done = self._resource.access(now, latency=latency)
        self.hub.emit(self._sid_xfer)
        cell = self._masters.get(master)
        if cell is None:
            cell = self._masters[master] = [0, 0]
        cell[0] += 1
        if wait:
            cell[1] += wait
        return wait, done

    @property
    def per_master_grants(self) -> Dict[str, int]:
        return {master: cell[0] for master, cell in self._masters.items()
                if cell[0]}

    @property
    def per_master_waits(self) -> Dict[str, int]:
        return {master: cell[1] for master, cell in self._masters.items()
                if cell[1]}

    @property
    def total_contention(self) -> int:
        return self._resource.total_waits

    @property
    def total_transfers(self) -> int:
        return self._resource.total_grants

    def reset(self) -> None:
        self._resource.reset()
        self._masters.clear()

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"resource": self._resource.snapshot_state(),
                "grants": self.per_master_grants,
                "waits": self.per_master_waits}

    def restore_state(self, state: dict) -> None:
        self._resource.restore_state(state["resource"])
        self._masters.clear()
        for master, count in state["grants"].items():
            self._masters[master] = [count, 0]
        for master, wait in state["waits"].items():
            cell = self._masters.get(master)
            if cell is None:
                cell = self._masters[master] = [0, 0]
            cell[1] = wait


class CrossbarBus:
    """Crossbar interconnect: one independent layer per *target*.

    A shared bus serialises every transfer; a crossbar (the SRI of the
    AUDO successors) only serialises transfers to the *same* target, so a
    CPU access to the LMU and a DMA stream into the EMEM proceed in
    parallel.  Exposes the same ``transfer`` API as :class:`Bus` plus a
    ``target`` parameter; unknown targets are lanes created on first use.

    Evaluated as the ``lmb_xbar`` architecture option: the profiling
    methodology measures shared-bus contention on the current device and
    predicts what a crossbar would remove.
    """

    def __init__(self, name: str, hub: EventHub, occupancy: int,
                 latency: int, transfer_signal: str,
                 contention_signal: str) -> None:
        self.name = name
        self.hub = hub
        self.occupancy = occupancy
        self.latency = latency
        self._transfer_signal = transfer_signal
        self._contention_signal = contention_signal
        self._lanes: Dict[str, Bus] = {}

    def _lane(self, target: str) -> Bus:
        lane = self._lanes.get(target)
        if lane is None:
            lane = Bus(f"{self.name}.{target}", self.hub, self.occupancy,
                       self.latency, self._transfer_signal,
                       self._contention_signal)
            self._lanes[target] = lane
        return lane

    def transfer(self, now: int, master: str,
                 latency: Optional[int] = None,
                 target: str = "default") -> Tuple[int, int]:
        return self._lane(target).transfer(now, master, latency)

    @property
    def total_contention(self) -> int:
        return sum(lane.total_contention for lane in self._lanes.values())

    @property
    def total_transfers(self) -> int:
        return sum(lane.total_transfers for lane in self._lanes.values())

    @property
    def per_master_grants(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for lane in self._lanes.values():
            for master, count in lane.per_master_grants.items():
                merged[master] = merged.get(master, 0) + count
        return merged

    def reset(self) -> None:
        for lane in self._lanes.values():
            lane.reset()

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"lanes": {target: lane.snapshot_state()
                          for target, lane in sorted(self._lanes.items())}}

    def restore_state(self, state: dict) -> None:
        # lanes are created on first use; re-materialise them so a restored
        # crossbar carries the same per-lane busy/accounting state
        self._lanes.clear()
        for target, entry in state["lanes"].items():
            self._lane(target).restore_state(entry)
