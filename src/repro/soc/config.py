"""SoC configuration: every architecture parameter the methodology can vary.

The optimization methodology (paper Section 4/6) evaluates next-generation
architecture options against profiles gathered on the current device.  Each
option is expressed as a delta on this configuration, re-simulated, and the
measured gain compared with the analytic prediction.

Defaults approximate a TC1797: TriCore 1.3.1 @ 180 MHz, 16 KB I-cache (the
TC1797 ICACHE), 4 MB program flash behind read/prefetch buffers, separate
code and data flash ports, DSPR/PSPR scratchpads, no data cache.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass


@dataclass
class CpuConfig:
    """TriCore-like CPU core parameters."""

    frequency_mhz: int = 180
    #: maximum instructions issued per cycle (TriCore: integer + load/store +
    #: loop pipeline can retire up to 3)
    issue_width: int = 3
    #: pipeline refill penalty for a taken branch, in cycles
    branch_penalty: int = 2
    #: cycles for the fast context switch on call/interrupt entry
    context_switch_cycles: int = 2
    #: additional cycles of interrupt entry (vector fetch, arbitration)
    irq_entry_cycles: int = 4


@dataclass
class CacheConfig:
    """Set-associative cache geometry."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    ways: int = 2
    enabled: bool = True

    @property
    def sets(self) -> int:
        return max(1, self.size_bytes // (self.line_bytes * self.ways))


@dataclass
class FlashConfig:
    """Embedded program/data flash timing and buffering.

    The flash array has a fixed access time in nanoseconds; the number of
    CPU-cycle wait states therefore *grows with CPU frequency* — the effect
    that makes the CPU→flash path "the main lever" (paper Section 4).
    """

    size_kb: int = 4096
    access_time_ns: float = 30.0
    #: bytes delivered per array access (a 256-bit line on AUDO)
    line_bytes: int = 32
    #: independent flash banks; code/data accesses to different banks overlap
    banks: int = 2
    #: line entries in the code-port read/prefetch buffer
    code_buffer_lines: int = 2
    #: line entries in the data-port read buffer
    data_buffer_lines: int = 1
    #: fetch the sequentially-next line speculatively after a code miss
    prefetch_enabled: bool = True
    #: data port wins a same-cycle bank conflict when True (calibration data
    #: fetches are latency critical); code port wins otherwise
    data_port_priority: bool = True

    def wait_states(self, frequency_mhz: int) -> int:
        """Array wait states at a given CPU frequency (cycles beyond the first)."""
        cycles = math.ceil(self.access_time_ns * frequency_mhz / 1000.0)
        return max(0, cycles - 1)


@dataclass
class MemoryConfig:
    """Scratchpads and on-chip SRAM."""

    dspr_kb: int = 128       # data scratchpad (1-cycle)
    pspr_kb: int = 40        # program scratchpad (1-cycle fetch)
    lmu_kb: int = 128        # on-chip SRAM behind the LMB
    lmu_latency: int = 3     # LMB SRAM access latency in CPU cycles
    dflash_kb: int = 64      # EEPROM-emulation data flash
    dflash_latency: int = 6


@dataclass
class BusConfig:
    """Bus layer occupancies (CPU cycles per beat)."""

    lmb_occupancy: int = 1
    spb_occupancy: int = 2     # FPI/SPB runs at half the CPU clock
    spb_latency: int = 4       # peripheral register access round trip
    mli_latency: int = 8       # MLI bridge hop into the EEC
    #: replace the shared LMB with a per-target crossbar (SRI-style) —
    #: a next-generation architecture option
    lmb_crossbar: bool = False


@dataclass
class PcpConfig:
    """Peripheral Control Processor."""

    enabled: bool = True
    #: PCP executes at most one instruction per cycle from its PRAM
    pram_kb: int = 32
    irq_entry_cycles: int = 6   # channel-program context load


@dataclass
class DmaConfig:
    channels: int = 8
    move_cycles: int = 2        # per-beat engine occupancy on top of bus time


@dataclass
class SoCConfig:
    """Complete product-chip configuration."""

    name: str = "tc1797"
    cpu: CpuConfig = dataclasses.field(default_factory=CpuConfig)
    icache: CacheConfig = dataclasses.field(default_factory=CacheConfig)
    dcache: CacheConfig = dataclasses.field(
        default_factory=lambda: CacheConfig(size_bytes=4 * 1024, enabled=False))
    flash: FlashConfig = dataclasses.field(default_factory=FlashConfig)
    memory: MemoryConfig = dataclasses.field(default_factory=MemoryConfig)
    bus: BusConfig = dataclasses.field(default_factory=BusConfig)
    pcp: PcpConfig = dataclasses.field(default_factory=PcpConfig)
    dma: DmaConfig = dataclasses.field(default_factory=DmaConfig)

    def copy(self) -> "SoCConfig":
        """Deep copy, so architecture options can mutate freely."""
        return dataclasses.replace(
            self,
            cpu=dataclasses.replace(self.cpu),
            icache=dataclasses.replace(self.icache),
            dcache=dataclasses.replace(self.dcache),
            flash=dataclasses.replace(self.flash),
            memory=dataclasses.replace(self.memory),
            bus=dataclasses.replace(self.bus),
            pcp=dataclasses.replace(self.pcp),
            dma=dataclasses.replace(self.dma),
        )


def tc1797_config() -> SoCConfig:
    """TC1797: 180 MHz, 4 MB flash, 16 KB I-cache, PCP + DMA."""
    return SoCConfig()


def tc1767_config() -> SoCConfig:
    """TC1767: the smaller AUDO FUTURE family member (133 MHz, 2 MB flash)."""
    cfg = SoCConfig(name="tc1767")
    cfg.cpu.frequency_mhz = 133
    cfg.flash.size_kb = 2048
    cfg.icache.size_bytes = 8 * 1024
    cfg.memory.dspr_kb = 68
    cfg.memory.pspr_kb = 24
    return cfg
