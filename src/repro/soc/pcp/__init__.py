"""Peripheral Control Processor."""

from .core import PcpCore

__all__ = ["PcpCore"]
