"""Peripheral Control Processor (PCP) model.

The PCP is the second programmable core of the AUDO family: a scalar
channel-program processor that services interrupts without involving the
TriCore.  Customers partition software between TriCore and PCP ("software
partitioning between TriCore and PCP cores", paper Section 1) — one of the
degrees of freedom the customer-profile generator varies.

Channel programs execute from PRAM (single-cycle fetch); data accesses go
through the shared memory fabric as master ``"pcp"`` and therefore contend
with the TriCore and DMA, which is how PCP load shows up in the TriCore's
bus-contention profile.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import PcpConfig
from ..cpu import isa
from ..kernel import signals
from ..kernel.hub import EventHub
from ..kernel.simulator import FOREVER, Component
from ..memory.system import MemorySystem


class PcpCore(Component):
    name = "pcp"

    def __init__(self, cfg: PcpConfig, hub: EventHub, memory: MemorySystem,
                 icu, rng) -> None:
        self.cfg = cfg
        self.hub = hub
        self.memory = memory
        self.icu = icu
        self.rng = rng
        self.channel_programs: Dict[int, isa.Program] = {}  # srn id -> program

        self.pc = 0
        self.active_program: Optional[isa.Program] = None
        self.stall_until = 0
        self._states: Dict[int, object] = {}
        self._call_stack = []
        self.retired = 0
        self.services = 0
        self.trace = None   # optional MCDS program-trace sink (fanout)

        self._sid_instr = hub.register(signals.PCP_INSTR)
        self._sid_stall = hub.register(signals.PCP_STALL)
        self._sid_entry = hub.register(signals.PCP_IRQ_ENTRY)

    def bind_channel(self, srn_id: int, program: isa.Program) -> None:
        self.channel_programs[srn_id] = program
        self.wake()

    def idle_until(self, cycle: int):
        if not self.cfg.enabled:
            return FOREVER
        if cycle < self.stall_until:
            return self.stall_until
        if self.active_program is None:
            # dispatch poll: nothing can happen until an SRN targeting the
            # PCP is raised (ICU wakes us) or a channel program is bound
            srn = self.icu.highest("pcp")
            if srn is None or srn.id not in self.channel_programs:
                return FOREVER
        return None

    def _state_of(self, instr: isa.Instr, behaviour) -> object:
        key = id(instr)
        state = self._states.get(key)
        if key not in self._states:
            state = behaviour.make_state()
            self._states[key] = state
        return state

    def tick(self, cycle: int) -> None:
        if not self.cfg.enabled or cycle < self.stall_until:
            return
        if self.active_program is None:
            srn = self.icu.highest("pcp")
            if srn is None:
                return
            program = self.channel_programs.get(srn.id)
            if program is None:
                return
            self.icu.take(srn)
            self.active_program = program
            self.pc = program.entry
            self.stall_until = cycle + self.cfg.irq_entry_cycles
            self.services += 1
            self.hub.emit(self._sid_entry)
            if self.trace is not None:
                self.trace.on_discontinuity(cycle, 0, program.entry, "irq")
            return

        instr = self.active_program.at(self.pc)
        op = instr.op
        self.retired += 1
        self.hub.emit(self._sid_instr)
        if self.trace is not None:
            self.trace.on_cycle(cycle, self.pc, 1)

        if op == isa.IP:
            self.pc += isa.INSTR_BYTES
            return
        if op in isa.LS_OPS:
            gen = instr.addr_gen
            addr = gen.next(self._state_of(instr, gen), self.rng)
            if op == isa.LD:
                done = self.memory.read(cycle, addr, "pcp")
            else:
                done = self.memory.write(cycle, addr, "pcp")
            self.pc += isa.INSTR_BYTES
            if done > cycle + 1:
                self.stall_until = done
                self.hub.emit(self._sid_stall, done - cycle - 1)
            return
        if op in (isa.BR, isa.LOOP):
            pattern = instr.pattern
            if pattern.taken(self._state_of(instr, pattern), self.rng):
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, self.pc,
                                                instr.target, "br")
                self.pc = instr.target
            else:
                self.pc += isa.INSTR_BYTES
            return
        if op == isa.JUMP:
            if self.trace is not None:
                self.trace.on_discontinuity(cycle, self.pc, instr.target,
                                            "br")
            self.pc = instr.target
            return
        if op == isa.CALL:
            self._call_stack.append(self.pc + isa.INSTR_BYTES)
            if self.trace is not None:
                self.trace.on_discontinuity(cycle, self.pc, instr.target,
                                            "call")
            self.pc = instr.target
            return
        if op == isa.RET:
            if self._call_stack:
                target = self._call_stack.pop()
                if self.trace is not None:
                    self.trace.on_discontinuity(cycle, self.pc, target,
                                                "ret")
                self.pc = target
                return
            self.active_program = None   # channel program done
            return
        if op == isa.RFE or op == "halt":
            self.active_program = None
            self._call_stack.clear()
            return
        raise ValueError(f"unknown PCP opcode {op!r} at 0x{self.pc:08x}")

    def reset(self) -> None:
        self.pc = 0
        self.active_program = None
        self.stall_until = 0
        self._states.clear()
        self._call_stack.clear()
        self.retired = 0
        self.services = 0

    # -- checkpoint ----------------------------------------------------------
    def _instr_keys(self):
        """Stable ``(srn_id, addr)`` identity for every channel instruction.

        A program object may be bound to several SRNs; each instruction is
        claimed by the lowest SRN id that owns it, so shared programs
        serialise each behaviour state exactly once.
        """
        seen = set()
        for srn_id in sorted(self.channel_programs):
            program = self.channel_programs[srn_id]
            for addr, instr in program.instructions.items():
                if id(instr) in seen:
                    continue
                seen.add(id(instr))
                yield srn_id, addr, instr

    def snapshot_state(self) -> dict:
        active = None
        if self.active_program is not None:
            for srn_id in sorted(self.channel_programs):
                if self.channel_programs[srn_id] is self.active_program:
                    active = srn_id
                    break
        states = {}
        for srn_id, addr, instr in self._instr_keys():
            state = self._states.get(id(instr))
            if state is not None:
                states[(srn_id, addr)] = list(state)
        return {
            "pc": self.pc,
            "active_srn": active,
            "stall_until": self.stall_until,
            "call_stack": list(self._call_stack),
            "states": states,
            "retired": self.retired,
            "services": self.services,
        }

    def restore_state(self, state: dict) -> None:
        self.pc = state["pc"]
        active = state["active_srn"]
        self.active_program = None if active is None \
            else self.channel_programs[active]
        self.stall_until = state["stall_until"]
        self._call_stack = list(state["call_stack"])
        self._states.clear()
        stored = state["states"]
        for srn_id, addr, instr in self._instr_keys():
            behaviour_state = stored.get((srn_id, addr))
            if behaviour_state is not None:
                self._states[id(instr)] = list(behaviour_state)
        self.retired = state["retired"]
        self.services = state["services"]
