"""The paper's contribution: Enhanced System Profiling + optimization."""
