"""Function-level system profiling from the program trace.

"System Profiling is the analysis of the application software on function
level to find out where in the system the performance is consumed and
how/why it is consumed" (paper Section 5).  The profiler consumes the same
CPU trace hook as the MCDS program-trace unit (fanout), attributing
executed instructions and elapsed cycles to the function containing the
program counter — what the tool reconstructs offline from flow-trace
messages plus the ELF symbol table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...soc.cpu.isa import Program


@dataclass
class FunctionStats:
    name: str
    instructions: int = 0
    active_cycles: int = 0     # cycles in which this function retired instructions
    entries: int = 0           # times entered via call/interrupt


class FunctionProfiler:
    """Trace-sink building a flat per-function profile."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.stats: Dict[str, FunctionStats] = {}
        self._current: Optional[str] = None
        # sorted function entry points (dot-prefixed local labels excluded)
        self._func_entries = sorted(
            (addr, name) for name, addr in program.symbols.items()
            if "." not in name)
        self._cache: Dict[int, str] = {}

    def _function_of(self, pc: int) -> str:
        line = pc >> 5
        cached = self._cache.get(line)
        if cached is not None:
            return cached
        name = "?"
        for addr, fname in self._func_entries:
            if addr > pc:
                break
            name = fname
        self._cache[line] = name
        return name

    def _get(self, name: str) -> FunctionStats:
        stats = self.stats.get(name)
        if stats is None:
            stats = FunctionStats(name)
            self.stats[name] = stats
        return stats

    # -- trace hook ------------------------------------------------------------
    def on_cycle(self, cycle: int, start_pc: int, issued: int) -> None:
        name = self._function_of(start_pc)
        stats = self._get(name)
        stats.instructions += issued
        stats.active_cycles += 1
        self._current = name

    def on_discontinuity(self, cycle: int, src: int, dst: int, kind: str) -> None:
        if kind in ("call", "irq"):
            self._get(self._function_of(dst)).entries += 1

    # -- reporting ----------------------------------------------------------------
    def hotspots(self, top: int = 10) -> List[FunctionStats]:
        """Functions ranked by instruction share (the optimization targets)."""
        ranked = sorted(self.stats.values(), key=lambda s: -s.instructions)
        return ranked[:top]

    def flat_profile(self) -> str:
        total = sum(s.instructions for s in self.stats.values()) or 1
        lines = [f"{'function':<24}{'instr':>12}{'share':>9}"
                 f"{'activecyc':>12}{'entries':>9}"]
        for stats in sorted(self.stats.values(), key=lambda s: -s.instructions):
            share = 100.0 * stats.instructions / total
            lines.append(f"{stats.name:<24}{stats.instructions:>12}"
                         f"{share:>8.2f}%{stats.active_cycles:>12}"
                         f"{stats.entries:>9}")
        return "\n".join(lines)
