"""Multi-resolution coupled measurement.

Paper Section 5: "It is also possible to connect multiple counter
structures with different resolutions: the IPC rate measurement with the
high resolution, but also high trace bandwidth is only activated when the
IPC rate with the low resolution is below a configurable threshold."

The coupling is built from stock MCDS pieces: a low-resolution structure
that always runs, a :class:`~repro.mcds.trigger.RateThreshold` comparator
on its samples, and a trigger whose enter/leave actions arm and disarm the
high-resolution structure.  Experiment E3 quantifies the bandwidth saved
versus running the high-resolution structure continuously.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...ed.device import EmulationDevice
from ...errors import ConfigurationError
from ...mcds.counters import CYCLES, RateCounterStructure
from ...mcds.trigger import BELOW, RateThreshold, Trigger
from .spec import ParameterSpec


class MultiResolutionRate:
    """A low-res always-on measurement gating a high-res detailed one."""

    def __init__(self, device: EmulationDevice, name: str, events,
                 low_resolution: int, high_resolution: int,
                 threshold_rate: float, direction: str = BELOW,
                 basis: str = CYCLES) -> None:
        """``threshold_rate`` is in events per basis unit (e.g. IPC 1.2)."""
        if high_resolution >= low_resolution:
            raise ConfigurationError(
                "high-resolution window must be finer (smaller) than low")
        self.device = device
        self.name = name
        mcds = device.mcds
        self.low = mcds.add_rate_counter(
            f"{name}.low", events, low_resolution, basis, enabled=True)
        self.high = mcds.add_rate_counter(
            f"{name}.high", events, high_resolution, basis, enabled=False)
        threshold_counts = int(threshold_rate * low_resolution)
        self.condition = RateThreshold(self.low, threshold_counts, direction)
        self.trigger = Trigger(
            f"{name}.gate", self.condition,
            on_enter=lambda cycle: self.high.enable(),
            on_leave=lambda cycle: self.high.disable(),
        )
        mcds.add_trigger(self.trigger)

    @property
    def activations(self) -> int:
        """How many times the detailed measurement was armed."""
        return self.trigger.fire_count

    def decode(self) -> Tuple[list, list]:
        """(low samples, high samples) as (cycle, value) pairs from trace."""
        low, high = [], []
        stream = (list(self.device.dap.received)
                  + self.device.emem.contents())
        for msg in stream:
            if msg.kind != "rate_sample":
                continue
            if msg.source == self.low.name:
                low.append((msg.cycle, msg.value))
            elif msg.source == self.high.name:
                high.append((msg.cycle, msg.value))
        return low, high
