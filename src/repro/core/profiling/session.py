"""Profiling sessions: configure MCDS, run, decode rate-sample series.

A session maps parameter specs onto MCDS counter structures, runs the
device, and decodes the resulting rate-sample messages back into per-
parameter time series — the workflow a tool vendor's profiling front-end
performs over the DAP on real EDs.

Everything the session learns comes out of trace messages, never out of
simulator internals; the oracle totals are only used by tests to check the
decoded values.

Degradation semantics: a sample covers the window ``(previous sample's
cycle, its own cycle]``.  If that window overlaps any recorded trace
:class:`~repro.mcds.messages.Gap` — messages wrapped away, rejected,
corrupted, or dropped on the wire — or the message itself is tainted by a
counter overflow, the sample is decoded but **marked degraded** instead of
silently reported as a trustworthy rate.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...ed.device import EmulationDevice
from ...errors import ConfigurationError
from ...mcds import messages as msgs
from ...obs import runtime as _obs
from .spec import ParameterSpec


class SeriesData:
    """One decoded rate series: sample cycles and counted-event values."""

    def __init__(self, spec: ParameterSpec) -> None:
        self.spec = spec
        self._cycles: List[int] = []
        self._values: List[int] = []
        self._degraded: List[bool] = []

    def append(self, cycle: int, value: int, degraded: bool = False) -> None:
        self._cycles.append(cycle)
        self._values.append(value)
        self._degraded.append(degraded)

    # -- list views (numpy-free, the scalar path's native form) --------------
    def cycle_list(self) -> List[int]:
        return self._cycles

    def value_list(self) -> List[int]:
        return self._values

    def degraded_indices(self) -> List[int]:
        return [i for i, flag in enumerate(self._degraded) if flag]

    # -- array views (require the optional numpy extra) ----------------------
    @property
    def cycles(self):
        import numpy as np
        return np.asarray(self._cycles, dtype=np.int64)

    @property
    def values(self):
        import numpy as np
        return np.asarray(self._values, dtype=np.int64)

    @property
    def degraded(self):
        """Per-sample flag: the window overlapped a trace gap / taint."""
        import numpy as np
        return np.asarray(self._degraded, dtype=bool)

    @property
    def degraded_count(self) -> int:
        return sum(self._degraded)

    @property
    def rates(self):
        """Values normalised by the resolution (events per basis unit)."""
        return self.values / float(self.spec.resolution)

    def mean_rate(self) -> float:
        # integer sum is exact, so this equals the former float(np.mean(...))
        # for any realistic series (values are counter readings < 2**32 and
        # float64 pairwise summation of such integers is exact below 2**53)
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values) / self.spec.resolution

    def mean_percent(self) -> float:
        return self.mean_rate() * 100.0

    def __len__(self) -> int:
        return len(self._values)


def _window_overlaps(spans: Sequence[Tuple[int, int]], lo: int,
                     hi: int) -> bool:
    """Does the half-open window ``(lo, hi]`` touch any merged gap span?"""
    idx = bisect.bisect_right(spans, (hi, float("inf")))
    return idx > 0 and spans[idx - 1][1] > lo


def decode_rate_stream(stream, series: Dict[str, "SeriesData"],
                       gaps: Sequence[msgs.Gap] = ()) -> None:
    """Decode rate-sample messages into ``series``, marking degradation.

    Shared by the post-mortem and streaming sessions so both apply the
    same gap/taint semantics.
    """
    spans = msgs.merge_gap_spans(list(gaps)) if gaps else []
    prev: Dict[str, int] = {}
    for msg in stream:
        if msg.kind != msgs.RATE_SAMPLE:
            continue
        data = series.get(msg.source)
        if data is None:
            continue
        degraded = bool(msg.extra and msg.extra.get("tainted"))
        if spans and not degraded:
            degraded = _window_overlaps(spans, prev.get(msg.source, -1),
                                        msg.cycle)
        prev[msg.source] = msg.cycle
        data.append(msg.cycle, msg.value, degraded)


class ProfileResult:
    """Decoded output of one profiling run."""

    def __init__(self, series: Dict[str, SeriesData], cycles_run: int,
                 trace_bits: int, frequency_mhz: int,
                 lost_messages: int,
                 gaps: Optional[Sequence[msgs.Gap]] = None) -> None:
        self.series = series
        self.cycles_run = cycles_run
        self.trace_bits = trace_bits
        self.frequency_mhz = frequency_mhz
        self.lost_messages = lost_messages
        self.gaps: List[msgs.Gap] = list(gaps) if gaps else []

    def __getitem__(self, name: str) -> SeriesData:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series

    @property
    def names(self):
        return tuple(self.series)

    @property
    def degraded_samples(self) -> int:
        """Samples across all series whose windows overlap a trace gap."""
        return sum(data.degraded_count for data in self.series.values())

    @property
    def healthy(self) -> bool:
        return not self.lost_messages and not self.degraded_samples

    def mean_rate(self, name: str) -> float:
        return self.series[name].mean_rate()

    def bandwidth_mbps(self) -> float:
        """Sustained tool-interface rate this measurement needs."""
        if self.cycles_run == 0:
            return 0.0
        seconds = self.cycles_run / (self.frequency_mhz * 1e6)
        return self.trace_bits / seconds / 1e6

    def summary(self) -> Dict[str, float]:
        return {name: data.mean_rate() for name, data in self.series.items()}

    def summary_table(self) -> str:
        lines = [f"{'parameter':<28}{'samples':>8}{'mean rate':>12}"]
        for name, data in sorted(self.series.items()):
            lines.append(f"{name:<28}{len(data):>8}{data.mean_rate():>12.4f}")
        lines.append(f"trace: {self.trace_bits} bits over {self.cycles_run} "
                     f"cycles = {self.bandwidth_mbps():.3f} Mbit/s")
        if self.lost_messages or self.degraded_samples:
            lines.append(f"DEGRADED: {self.lost_messages} messages lost in "
                         f"{len(self.gaps)} gaps; {self.degraded_samples} "
                         f"samples affected")
        return "\n".join(lines)


class ProfilingSession:
    """Allocates counter structures for a spec set and decodes the capture."""

    def __init__(self, device: EmulationDevice,
                 specs: Iterable[ParameterSpec]) -> None:
        self.device = device
        self.specs = list(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ConfigurationError("parameter names must be unique")
        self.structures = {}
        for spec in self.specs:
            self.structures[spec.name] = device.mcds.add_rate_counter(
                spec.name, spec.events, spec.resolution, spec.basis)
        self._start_cycle = device.cycle
        self._start_bits = device.mcds.total_bits

    def run(self, cycles: int) -> "ProfileResult":
        self.device.run(cycles)
        return self.result()

    def result(self) -> ProfileResult:
        """Decode all rate-sample messages captured so far."""
        tel = _obs._active
        if tel is not None:
            with tel.span("pipeline.decode", cat="pipeline") as args:
                result = self._result()
                args["messages"] = (len(self.device.dap.received)
                                    + self.device.emem.message_count)
                args["gaps"] = len(result.gaps)
            return result
        return self._result()

    def _result(self) -> ProfileResult:
        device = self.device
        series = {spec.name: SeriesData(spec) for spec in self.specs}
        stream = list(device.dap.received) + device.emem.contents()
        gaps = device.trace_gaps()
        decode_rate_stream(stream, series, gaps)
        lost = (device.emem.dropped_messages + device.dap.dropped_messages)
        return ProfileResult(
            series,
            cycles_run=device.cycle - self._start_cycle,
            trace_bits=device.mcds.total_bits - self._start_bits,
            frequency_mhz=device.config.soc.cpu.frequency_mhz,
            lost_messages=lost,
            gaps=gaps,
        )

    def detach(self) -> None:
        """Free the counter structures (end of session)."""
        for structure in self.structures.values():
            structure.detach()
            self.device.mcds.rate_counters.remove(structure)
            if structure in self.device.mcds._cycle_basis:
                self.device.mcds._cycle_basis.remove(structure)
        self.structures.clear()
