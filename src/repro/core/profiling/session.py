"""Profiling sessions: configure MCDS, run, decode rate-sample series.

A session maps parameter specs onto MCDS counter structures, runs the
device, and decodes the resulting rate-sample messages back into per-
parameter time series — the workflow a tool vendor's profiling front-end
performs over the DAP on real EDs.

Everything the session learns comes out of trace messages, never out of
simulator internals; the oracle totals are only used by tests to check the
decoded values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ...ed.device import EmulationDevice
from ...mcds import messages as msgs
from .spec import ParameterSpec


class SeriesData:
    """One decoded rate series: sample cycles and counted-event values."""

    def __init__(self, spec: ParameterSpec) -> None:
        self.spec = spec
        self._cycles: List[int] = []
        self._values: List[int] = []

    def append(self, cycle: int, value: int) -> None:
        self._cycles.append(cycle)
        self._values.append(value)

    @property
    def cycles(self) -> np.ndarray:
        return np.asarray(self._cycles, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.int64)

    @property
    def rates(self) -> np.ndarray:
        """Values normalised by the resolution (events per basis unit)."""
        return self.values / float(self.spec.resolution)

    def mean_rate(self) -> float:
        if not self._values:
            return 0.0
        return float(np.mean(self.values)) / self.spec.resolution

    def mean_percent(self) -> float:
        return self.mean_rate() * 100.0

    def __len__(self) -> int:
        return len(self._values)


class ProfileResult:
    """Decoded output of one profiling run."""

    def __init__(self, series: Dict[str, SeriesData], cycles_run: int,
                 trace_bits: int, frequency_mhz: int,
                 lost_messages: int) -> None:
        self.series = series
        self.cycles_run = cycles_run
        self.trace_bits = trace_bits
        self.frequency_mhz = frequency_mhz
        self.lost_messages = lost_messages

    def __getitem__(self, name: str) -> SeriesData:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series

    @property
    def names(self):
        return tuple(self.series)

    def mean_rate(self, name: str) -> float:
        return self.series[name].mean_rate()

    def bandwidth_mbps(self) -> float:
        """Sustained tool-interface rate this measurement needs."""
        if self.cycles_run == 0:
            return 0.0
        seconds = self.cycles_run / (self.frequency_mhz * 1e6)
        return self.trace_bits / seconds / 1e6

    def summary(self) -> Dict[str, float]:
        return {name: data.mean_rate() for name, data in self.series.items()}

    def summary_table(self) -> str:
        lines = [f"{'parameter':<28}{'samples':>8}{'mean rate':>12}"]
        for name, data in sorted(self.series.items()):
            lines.append(f"{name:<28}{len(data):>8}{data.mean_rate():>12.4f}")
        lines.append(f"trace: {self.trace_bits} bits over {self.cycles_run} "
                     f"cycles = {self.bandwidth_mbps():.3f} Mbit/s")
        return "\n".join(lines)


class ProfilingSession:
    """Allocates counter structures for a spec set and decodes the capture."""

    def __init__(self, device: EmulationDevice,
                 specs: Iterable[ParameterSpec]) -> None:
        self.device = device
        self.specs = list(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.structures = {}
        for spec in self.specs:
            self.structures[spec.name] = device.mcds.add_rate_counter(
                spec.name, spec.events, spec.resolution, spec.basis)
        self._start_cycle = device.cycle
        self._start_bits = device.mcds.total_bits

    def run(self, cycles: int) -> "ProfileResult":
        self.device.run(cycles)
        return self.result()

    def result(self) -> ProfileResult:
        """Decode all rate-sample messages captured so far."""
        device = self.device
        series = {spec.name: SeriesData(spec) for spec in self.specs}
        stream = list(device.dap.received) + device.emem.contents()
        for msg in stream:
            if msg.kind != msgs.RATE_SAMPLE:
                continue
            data = series.get(msg.source)
            if data is not None:
                data.append(msg.cycle, msg.value)
        lost = device.emem.lost_oldest + device.emem.lost_new
        return ProfileResult(
            series,
            cycles_run=device.cycle - self._start_cycle,
            trace_bits=device.mcds.total_bits - self._start_bits,
            frequency_mhz=device.config.soc.cpu.frequency_mhz,
            lost_messages=lost,
        )

    def detach(self) -> None:
        """Free the counter structures (end of session)."""
        for structure in self.structures.values():
            structure.detach()
            self.device.mcds.rate_counters.remove(structure)
            if structure in self.device.mcds._cycle_basis:
                self.device.mcds._cycle_basis.remove(structure)
        self.structures.clear()
