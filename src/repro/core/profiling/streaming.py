"""Streaming profiling: long-duration measurement through the live DAP.

Post-mortem capture (fill the EMEM, upload afterwards) covers milliseconds;
observing a whole drive cycle needs the DAP to drain rate messages *while*
the system runs, with the EMEM acting as an elastic buffer (paper Section
5: "The sampled rate values are saved in the trace memory of the ED which
acts as a buffer, and then downloaded ... via the JTAG or DAP interface").

Because "the bandwidth of the tool interface does not scale with the CPU
frequency", the right resolution depends on the device and the parameter
set.  :class:`AdaptiveResolutionController` automates the paper's manual
procedure — start coarse, refine while the wire keeps up, back off when
the buffer fills — by scaling all windows by powers of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ...ed.device import EmulationDevice
from ...errors import (BandwidthExceededError, ConfigurationError,
                       TraceOverrunError)
from .session import ProfileResult, SeriesData, decode_rate_stream
from .spec import ParameterSpec


@dataclass
class StreamingStats:
    """Wire-side health of a streaming session."""

    cycles: int
    messages_received: int
    bits_transferred: int
    emem_peak_fill: float
    messages_lost: int
    gaps: int = 0

    @property
    def healthy(self) -> bool:
        return self.messages_lost == 0


class StreamingSession:
    """Continuous measurement with live DAP drain and overflow accounting.

    ``strict=True`` turns any message loss into a
    :class:`~repro.errors.TraceOverrunError` at the end of :meth:`run` —
    for callers that would rather abort than interpret a degraded capture.
    """

    def __init__(self, device: EmulationDevice,
                 specs: Iterable[ParameterSpec],
                 strict: bool = False) -> None:
        if not device.dap.streaming:
            raise ConfigurationError(
                "device DAP is in post-mortem mode; build the ED with "
                "dap_streaming=True for a streaming session")
        self.device = device
        self.specs = list(specs)
        self.strict = strict
        self.structures = {
            spec.name: device.mcds.add_rate_counter(
                spec.name, spec.events, spec.resolution, spec.basis)
            for spec in self.specs
        }
        self._peak_fill = 0.0
        self._start_cycle = device.cycle

    def run(self, cycles: int, chunk: int = 2048) -> StreamingStats:
        """Run in chunks, tracking the EMEM's peak fill level."""
        device = self.device
        remaining = cycles
        while remaining > 0:
            step = chunk if chunk < remaining else remaining
            device.run(step)
            fill = device.emem.fill_ratio
            if fill > self._peak_fill:
                self._peak_fill = fill
            remaining -= step
        stats = self.stats()
        if self.strict and stats.messages_lost:
            raise TraceOverrunError(
                f"streaming session lost {stats.messages_lost} messages "
                f"across {stats.gaps} gaps (strict mode)")
        return stats

    def stats(self) -> StreamingStats:
        device = self.device
        return StreamingStats(
            cycles=device.cycle - self._start_cycle,
            messages_received=len(device.dap.received),
            bits_transferred=device.dap.bits_transferred,
            emem_peak_fill=self._peak_fill,
            messages_lost=(device.emem.dropped_messages
                           + device.dap.dropped_messages),
            gaps=len(device.emem.gaps) + len(device.dap.gaps),
        )

    def result(self) -> ProfileResult:
        """Decode everything received so far plus the in-flight buffer."""
        series = {spec.name: SeriesData(spec) for spec in self.specs}
        stream = list(self.device.dap.received) + self.device.emem.contents()
        gaps = self.device.trace_gaps()
        decode_rate_stream(stream, series, gaps)
        stats = self.stats()
        return ProfileResult(
            series, stats.cycles,
            self.device.mcds.total_bits,
            self.device.config.soc.cpu.frequency_mhz,
            stats.messages_lost,
            gaps=gaps)


class AdaptiveResolutionController:
    """Finds the finest sustainable resolution for a parameter set.

    Doubles every window while the trial overflows (drops messages or
    pushes the EMEM past ``fill_limit``), halves it again while there is
    ample headroom, within ``[min_scale, max_scale]`` powers of two of the
    requested resolutions.  Mirrors the coarse-first-then-refine procedure
    of paper Section 5.
    """

    def __init__(self, build_device, specs: Iterable[ParameterSpec],
                 trial_cycles: int = 50_000, fill_limit: float = 0.5,
                 max_doublings: int = 10) -> None:
        """``build_device()`` must return a fresh streaming-mode ED."""
        self.build_device = build_device
        self.base_specs = list(specs)
        self.trial_cycles = trial_cycles
        self.fill_limit = fill_limit
        self.max_doublings = max_doublings
        self.trials: List[Dict] = []

    def _scaled(self, scale: int) -> List[ParameterSpec]:
        return [ParameterSpec(s.name, s.events, s.resolution * scale,
                              s.basis)
                for s in self.base_specs]

    def _trial(self, scale: int) -> Dict:
        device = self.build_device()
        session = StreamingSession(device, self._scaled(scale))
        stats = session.run(self.trial_cycles)
        outcome = {
            "scale": scale,
            "lost": stats.messages_lost,
            "peak_fill": stats.emem_peak_fill,
            "sustainable": (stats.messages_lost == 0
                            and stats.emem_peak_fill <= self.fill_limit),
        }
        self.trials.append(outcome)
        return outcome

    def calibrate(self) -> int:
        """Returns the chosen resolution scale (a power of two, >= 1)."""
        scale = 1
        outcome = self._trial(scale)
        doublings = 0
        while not outcome["sustainable"] and doublings < self.max_doublings:
            scale *= 2
            doublings += 1
            outcome = self._trial(scale)
        if not outcome["sustainable"]:
            raise BandwidthExceededError(
                f"no sustainable resolution within {self.max_doublings} "
                f"doublings; the parameter set is too wide for this DAP")
        return scale

    def specs_for(self, scale: int) -> List[ParameterSpec]:
        return self._scaled(scale)
