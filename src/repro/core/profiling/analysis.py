"""Profile analysis: finding and explaining performance anomalies.

Implements the paper's analysis loop (Section 5): scan the parallel rate
series for "the interesting spaces of time where the system performance is
not optimal" (poor-IPC windows), then explain each window by asking which
other measured rate deviates most strongly inside it ("high cache miss
rate?  Which cache?  ...  High interrupt load?  And so on").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:                                    # analysis is array math through and
    import numpy as np                  # through — it genuinely needs the
except ImportError:                     # optional ``repro[batch]`` extra,
    np = None                           # unlike the measurement path

from .session import ProfileResult, SeriesData


def _require_numpy() -> None:
    if np is None:
        raise ImportError(
            "profile analysis requires numpy; install the optional extra "
            "with 'pip install repro[batch]' (or 'pip install numpy')")


@dataclass
class Window:
    """A span of cycles in which a condition held."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class Diagnosis:
    """Root-cause ranking for one poor-performance window."""

    window: Window
    ipc_inside: float
    ipc_overall: float
    causes: List[Tuple[str, float]]   # (parameter, deviation score), sorted

    @property
    def primary_cause(self) -> Optional[str]:
        return self.causes[0][0] if self.causes else None


def find_low_windows(series: SeriesData, threshold_rate: float,
                     min_samples: int = 1) -> List[Window]:
    """Spans where the measured rate stayed below ``threshold_rate``."""
    _require_numpy()
    cycles = series.cycles
    rates = series.rates
    windows: List[Window] = []
    start_idx: Optional[int] = None
    for i, value in enumerate(rates):
        if value < threshold_rate:
            if start_idx is None:
                start_idx = i
        elif start_idx is not None:
            if i - start_idx >= min_samples:
                windows.append(Window(int(cycles[start_idx]), int(cycles[i - 1])))
            start_idx = None
    if start_idx is not None and len(rates) - start_idx >= min_samples:
        windows.append(Window(int(cycles[start_idx]), int(cycles[-1])))
    return windows


def _mean_in_window(series: SeriesData, window: Window) -> float:
    cycles = series.cycles
    mask = (cycles >= window.start) & (cycles <= window.end)
    if not mask.any():
        return float("nan")
    return float(series.rates[mask].mean())


def diagnose(result: ProfileResult, ipc_name: str = "tc.ipc",
             ipc_threshold: float = 1.0,
             cause_names: Optional[List[str]] = None,
             min_samples: int = 1) -> List[Diagnosis]:
    """Find poor-IPC windows and rank the likely causes for each.

    The deviation score of a candidate parameter is how many overall
    standard deviations its in-window mean lies away from its overall mean
    (higher rate inside the bad window == stronger suspicion).
    """
    _require_numpy()
    ipc_series = result[ipc_name]
    if cause_names is None:
        cause_names = [n for n in result.names if n != ipc_name]
    overall_ipc = ipc_series.mean_rate()
    diagnoses: List[Diagnosis] = []
    for window in find_low_windows(ipc_series, ipc_threshold, min_samples):
        scored: List[Tuple[str, float]] = []
        for name in cause_names:
            series = result[name]
            if len(series) == 0:
                continue
            rates = series.rates
            mean = float(rates.mean())
            std = float(rates.std())
            inside = _mean_in_window(series, window)
            if np.isnan(inside):
                continue
            score = (inside - mean) / std if std > 1e-12 else 0.0
            scored.append((name, score))
        scored.sort(key=lambda item: -item[1])
        diagnoses.append(Diagnosis(
            window=window,
            ipc_inside=_mean_in_window(ipc_series, window),
            ipc_overall=overall_ipc,
            causes=scored,
        ))
    return diagnoses


def compare_profiles(before: ProfileResult, after: ProfileResult,
                     label_before: str = "before",
                     label_after: str = "after") -> str:
    """Quantify an optimization by diffing two measurement runs.

    Paper Section 5: "Additionally system profiling allows measuring the
    result of the improvement quantitatively."  Parameters present in both
    profiles are compared by mean rate; the delta column is the engineer's
    receipt for the change.
    """
    _require_numpy()
    names = sorted(set(before.names) & set(after.names))
    lines = [f"{'parameter':<28}{label_before:>12}{label_after:>12}"
             f"{'delta':>10}"]
    for name in names:
        rate_before = before.mean_rate(name)
        rate_after = after.mean_rate(name)
        delta = rate_after - rate_before
        lines.append(f"{name:<28}{rate_before:>12.4f}{rate_after:>12.4f}"
                     f"{delta:>+10.4f}")
    only = sorted(set(before.names) ^ set(after.names))
    if only:
        lines.append(f"(not compared: {', '.join(only)})")
    return "\n".join(lines)


def estimate_periodicity(series: SeriesData,
                         min_lag_samples: int = 2) -> Optional[int]:
    """Estimate the dominant recurrence period of a rate series, in cycles.

    Hard real-time anomalies are usually periodic (a task at a fixed
    raster, a wrapped counter, a beat between two rates); knowing the
    period tells the engineer *which* activity to trace next.  Uses the
    autocorrelation of the mean-removed series; returns None when no lag
    beats the significance floor.
    """
    _require_numpy()
    values = series.rates
    n = len(values)
    if n < 8:
        return None
    centred = values - values.mean()
    denominator = float(np.dot(centred, centred))
    if denominator < 1e-12:
        return None
    correlation = np.correlate(centred, centred, mode="full")[n - 1:]
    correlation = correlation / denominator
    lags = correlation[min_lag_samples:n // 2]
    if lags.size == 0:
        return None
    best = int(np.argmax(lags)) + min_lag_samples
    if correlation[best] < 0.25:        # not convincingly periodic
        return None
    cycles = series.cycles
    if len(cycles) < 2:
        return None
    sample_spacing = float(np.median(np.diff(cycles)))
    return int(round(best * sample_spacing))


def rate_timeline_table(result: ProfileResult, names: List[str],
                        buckets: int = 10) -> str:
    """Coarse text timeline of selected rates (tooling-style display)."""
    _require_numpy()
    if not names:
        return ""
    end = max(int(result[n].cycles[-1]) for n in names if len(result[n]))
    edges = np.linspace(0, end, buckets + 1)
    header = "cycle".ljust(12) + "".join(n[-18:].rjust(20) for n in names)
    lines = [header]
    for b in range(buckets):
        lo, hi = edges[b], edges[b + 1]
        row = [f"{int(lo):<12}"]
        for name in names:
            series = result[name]
            mask = (series.cycles >= lo) & (series.cycles < hi)
            if mask.any():
                row.append(f"{float(series.rates[mask].mean()):>20.4f}")
            else:
                row.append(" " * 19 + "-")
        lines.append("".join(row))
    return "\n".join(lines)
