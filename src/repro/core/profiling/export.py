"""Profile export: CSV and JSON serialisation of measurement results.

Calibration/measurement tool chains ingest rate series for display and
archival (the MCD/ASAM world the real ED tooling lives in); these
exporters produce the equivalent interchange artifacts.

The JSON form is a lossless round trip: :func:`result_from_json` rebuilds
a live :class:`ProfileResult` (specs included), and re-exporting the
loaded result reproduces the original text byte-for-byte.  That stability
is what lets the fleet campaign cache key payloads by content hash.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from ...errors import FormatError
from ...mcds.messages import Gap
from .session import ProfileResult, SeriesData
from .spec import ParameterSpec


def result_to_json(result: ProfileResult, include_series: bool = True,
                   compact: bool = False) -> str:
    """Serialise a profile to JSON (summary plus optional full series).

    The output is canonical — keys sorted, values derived deterministically
    from the series — so equal results serialise to identical bytes.
    ``compact`` drops whitespace (the form the fleet cache hashes and
    stores); the default stays human-readable.
    """
    payload: Dict = {
        "cycles_run": result.cycles_run,
        "frequency_mhz": result.frequency_mhz,
        "trace_bits": result.trace_bits,
        "bandwidth_mbps": result.bandwidth_mbps(),
        "lost_messages": result.lost_messages,
        "parameters": {},
    }
    if result.gaps:
        # emitted only for degraded captures, so clean exports stay
        # byte-identical to the pre-gap-accounting format
        payload["gaps"] = [gap.to_list() for gap in result.gaps]
    for name, data in result.series.items():
        entry: Dict = {
            "events": list(data.spec.events),
            "basis": data.spec.basis,
            "resolution": data.spec.resolution,
            "samples": len(data),
            "mean_rate": data.mean_rate(),
        }
        if include_series:
            entry["cycles"] = list(data.cycle_list())
            entry["values"] = list(data.value_list())
            if data.degraded_count:
                entry["degraded"] = data.degraded_indices()
        payload["parameters"][name] = entry
    if compact:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return json.dumps(payload, indent=2, sort_keys=True)


def _series_from_entry(name: str, entry: Dict) -> SeriesData:
    spec = ParameterSpec(name, tuple(entry["events"]),
                         entry["resolution"], entry["basis"])
    data = SeriesData(spec)
    flagged = set(entry.get("degraded", ()))
    for index, (cycle, value) in enumerate(zip(entry["cycles"],
                                               entry["values"])):
        data.append(int(cycle), int(value), index in flagged)
    return data


def result_from_json(text: str) -> ProfileResult:
    """Rebuild a :class:`ProfileResult` from an exported profile.

    Requires a full-series export (``include_series=True``); a summary-only
    export has thrown away the samples and cannot be round-tripped.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise FormatError("not a profile export: expected an object")
    required = ("cycles_run", "frequency_mhz", "parameters")
    for key in required:
        if key not in payload:
            raise FormatError(f"not a profile export: missing {key!r}")
    series: Dict[str, SeriesData] = {}
    for name, entry in payload["parameters"].items():
        if "cycles" not in entry or "values" not in entry:
            raise FormatError(
                f"summary-only export: parameter {name!r} has no series "
                "(re-export with include_series=True to round-trip)")
        series[name] = _series_from_entry(name, entry)
    return ProfileResult(
        series,
        cycles_run=payload["cycles_run"],
        trace_bits=payload.get("trace_bits", 0),
        frequency_mhz=payload["frequency_mhz"],
        lost_messages=payload.get("lost_messages", 0),
        gaps=[Gap.from_list(item) for item in payload.get("gaps", ())],
    )


def series_to_csv(result: ProfileResult,
                  names: Optional[List[str]] = None) -> str:
    """Long-format CSV: parameter, sample cycle, counted value, rate."""
    if names is None:
        names = sorted(result.series)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["parameter", "cycle", "value", "rate"])
    for name in names:
        data = result[name]
        resolution = data.spec.resolution
        for cycle, value in zip(data.cycle_list(), data.value_list()):
            writer.writerow([name, int(cycle), int(value),
                             value / resolution])
    return buffer.getvalue()


def result_from_csv(text: str,
                    specs: Optional[Dict[str, ParameterSpec]] = None,
                    cycles_run: Optional[int] = None,
                    frequency_mhz: int = 180,
                    trace_bits: int = 0,
                    lost_messages: int = 0) -> ProfileResult:
    """Rebuild a :class:`ProfileResult` from :func:`series_to_csv` output.

    The long-format CSV carries the samples but not the spec metadata, so
    reconstruction is best-effort unless ``specs`` supplies the original
    :class:`ParameterSpec` per parameter name: without it the resolution is
    inferred from ``value / rate`` and the basis/events default to the
    parameter's own name.  Device metadata absent from the CSV
    (``frequency_mhz``, ``trace_bits``, ``lost_messages``) can be passed
    explicitly; ``cycles_run`` defaults to the last sample cycle seen.
    """
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or rows[0] != ["parameter", "cycle", "value", "rate"]:
        raise FormatError("not a series CSV export: bad or missing header")
    series: Dict[str, SeriesData] = {}
    resolutions: Dict[str, int] = {}
    parsed: Dict[str, List] = {}
    for row in rows[1:]:
        if not row:
            continue
        name, cycle, value, rate = row[0], int(row[1]), int(row[2]), \
            float(row[3])
        parsed.setdefault(name, []).append((cycle, value))
        if name not in resolutions and value and rate:
            resolutions[name] = max(1, round(value / rate))
    max_cycle = 0
    for name, samples in parsed.items():
        if specs and name in specs:
            spec = specs[name]
        else:
            spec = ParameterSpec(name, (name,),
                                 resolutions.get(name, 1), name)
        data = SeriesData(spec)
        for cycle, value in samples:
            data.append(cycle, value)
            max_cycle = max(max_cycle, cycle)
        series[name] = data
    return ProfileResult(
        series,
        cycles_run=max_cycle if cycles_run is None else cycles_run,
        trace_bits=trace_bits,
        frequency_mhz=frequency_mhz,
        lost_messages=lost_messages,
    )


def summary_to_csv(result: ProfileResult) -> str:
    """Wide one-row-per-parameter summary CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["parameter", "samples", "resolution", "basis",
                     "mean_rate", "mean_percent"])
    for name in sorted(result.series):
        data = result[name]
        writer.writerow([name, len(data), data.spec.resolution,
                         data.spec.basis, data.mean_rate(),
                         data.mean_percent()])
    return buffer.getvalue()
