"""Profile export: CSV and JSON serialisation of measurement results.

Calibration/measurement tool chains ingest rate series for display and
archival (the MCD/ASAM world the real ED tooling lives in); these
exporters produce the equivalent interchange artifacts.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from .session import ProfileResult


def result_to_json(result: ProfileResult, include_series: bool = True) -> str:
    """Serialise a profile to JSON (summary plus optional full series)."""
    payload: Dict = {
        "cycles_run": result.cycles_run,
        "frequency_mhz": result.frequency_mhz,
        "trace_bits": result.trace_bits,
        "bandwidth_mbps": result.bandwidth_mbps(),
        "lost_messages": result.lost_messages,
        "parameters": {},
    }
    for name, data in result.series.items():
        entry: Dict = {
            "events": list(data.spec.events),
            "basis": data.spec.basis,
            "resolution": data.spec.resolution,
            "samples": len(data),
            "mean_rate": data.mean_rate(),
        }
        if include_series:
            entry["cycles"] = data.cycles.tolist()
            entry["values"] = data.values.tolist()
        payload["parameters"][name] = entry
    return json.dumps(payload, indent=2, sort_keys=True)


def result_from_json(text: str) -> Dict:
    """Parse an exported profile back into plain dictionaries.

    Round-trip helper for archival tests and offline analysis scripts; the
    live :class:`ProfileResult` object is not reconstructed (its specs are
    code, not data).
    """
    payload = json.loads(text)
    required = ("cycles_run", "frequency_mhz", "parameters")
    for key in required:
        if key not in payload:
            raise ValueError(f"not a profile export: missing {key!r}")
    return payload


def series_to_csv(result: ProfileResult,
                  names: Optional[List[str]] = None) -> str:
    """Long-format CSV: parameter, sample cycle, counted value, rate."""
    if names is None:
        names = sorted(result.series)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["parameter", "cycle", "value", "rate"])
    for name in names:
        data = result[name]
        resolution = data.spec.resolution
        for cycle, value in zip(data.cycles, data.values):
            writer.writerow([name, int(cycle), int(value),
                             value / resolution])
    return buffer.getvalue()


def summary_to_csv(result: ProfileResult) -> str:
    """Wide one-row-per-parameter summary CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["parameter", "samples", "resolution", "basis",
                     "mean_rate", "mean_percent"])
    for name in sorted(result.series):
        data = result[name]
        writer.writerow([name, len(data), data.spec.resolution,
                         data.spec.basis, data.mean_rate(),
                         data.mean_percent()])
    return buffer.getvalue()
