"""Enhanced System Profiling: parallel, non-intrusive rate measurement."""

from . import analysis, export, spec
from .functions import FunctionProfiler
from .multires import MultiResolutionRate
from .session import ProfileResult, ProfilingSession, SeriesData
from .streaming import (AdaptiveResolutionController, StreamingSession,
                        StreamingStats)

__all__ = ["analysis", "export", "spec", "FunctionProfiler", "MultiResolutionRate",
           "ProfileResult", "ProfilingSession", "SeriesData",
           "AdaptiveResolutionController", "StreamingSession",
           "StreamingStats"]
