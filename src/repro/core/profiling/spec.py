"""Profiling parameter specifications.

A :class:`ParameterSpec` names one dynamically-measured system parameter —
the paper's "essential parameters for CPU system performance of an engine
control system": data/instruction cache hit/miss rates, CPU access rates to
flash/SRAM/scratchpads, flash buffer hit rates, IPC, interrupt rate, and
the PCP/DMA equivalents (Section 5).

Two measurement bases exist, and the choice is the paper's key insight:

* **IPC** is measured per ``resolution`` *clock cycles*;
* **every other rate** is measured per ``resolution`` *executed
  instructions*, because "an instruction cache miss in clock cycle x is not
  a meaningful information" — 4 misses per 100 executed instructions is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ...soc.kernel import signals
from ...mcds.counters import CYCLES


@dataclass(frozen=True)
class ParameterSpec:
    """One measurable system parameter."""

    name: str
    events: Tuple[str, ...]
    resolution: int
    basis: str = signals.TC_INSTR

    def __post_init__(self):
        if self.resolution < 1:
            raise ValueError("resolution must be >= 1")
        if not self.events:
            raise ValueError("at least one event signal required")


def ipc(resolution: int = 256, core: str = "tc") -> ParameterSpec:
    """Instructions-per-cycle of a core, sampled every ``resolution`` cycles."""
    event = signals.TC_INSTR if core == "tc" else signals.PCP_INSTR
    return ParameterSpec(f"{core}.ipc", (event,), resolution, CYCLES)


def rate(name: str, event, per: int = 100,
         basis: str = signals.TC_INSTR) -> ParameterSpec:
    """Event rate per ``per`` executed instructions (the paper's default)."""
    events = (event,) if isinstance(event, str) else tuple(event)
    return ParameterSpec(name, events, per, basis)


# -- the paper's engine-control parameter set ---------------------------------
def icache_miss_rate(per: int = 100) -> ParameterSpec:
    return rate("icache.miss_rate", signals.ICACHE_MISS, per)


def dcache_miss_rate(per: int = 100) -> ParameterSpec:
    return rate("dcache.miss_rate", signals.DCACHE_MISS, per)


def flash_data_access_rate(per: int = 100) -> ParameterSpec:
    """CPU data reads from program flash per 100 instructions (paper: 6%)."""
    return rate("flash.data_access_rate", signals.PFLASH_DATA_ACCESS, per)


def flash_buffer_hit_rate(per: int = 100) -> ParameterSpec:
    return rate("flash.data_buffer_hit_rate", signals.PFLASH_BUF_HIT_DATA, per)


def dspr_access_rate(per: int = 100) -> ParameterSpec:
    return rate("dspr.access_rate", signals.DSPR_ACCESS, per)


def sram_access_rate(per: int = 100) -> ParameterSpec:
    return rate("lmu.access_rate", signals.LMU_ACCESS, per)


def interrupt_rate(per: int = 1000) -> ParameterSpec:
    return rate("irq.rate", signals.IRQ_TAKEN, per)


def bus_contention_rate(per: int = 100) -> ParameterSpec:
    return rate("bus.contention_rate",
                (signals.LMB_CONTENTION, signals.SPB_CONTENTION), per)


def flash_stall_rate(per: int = 100) -> ParameterSpec:
    return rate("tc.load_stall_rate", signals.TC_STALL_LOAD, per)


def engine_parameter_set(ipc_resolution: int = 256,
                         rate_per: int = 100) -> list:
    """The full parallel measurement set of paper Section 5.

    "With the new System Profiling method ... all these parameters can be
    dynamically and in parallel measured, non-intrusively."
    """
    return [
        ipc(ipc_resolution),
        ipc(ipc_resolution, core="pcp"),
        icache_miss_rate(rate_per),
        flash_data_access_rate(rate_per),
        flash_buffer_hit_rate(rate_per),
        dspr_access_rate(rate_per),
        sram_access_rate(rate_per),
        bus_contention_rate(rate_per),
        flash_stall_rate(rate_per),
        interrupt_rate(10 * rate_per),
    ]
