"""Trace-driven analytic models: replaying captured access traces through
candidate memory geometries.

This is the "detailed analysis as a second analysis task" of paper Section
1 put to work for the SoC architect: once the statistical profile has
flagged the flash path, a short MCDS trace capture of fetch lines and data
addresses is replayed — offline, on the tool side — through alternative
cache/buffer configurations to *quantify* each option before any silicon
exists.  The replay models are deliberately the same structures as the
hardware models (:class:`~repro.soc.memory.cache.Cache`,
FIFO line buffers), so prediction error comes only from trace length and
timing second-order effects, which experiment E6 measures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ...soc.config import CacheConfig
from ...soc.memory.cache import Cache

LINE_BYTES = 32
LINE_SHIFT = 5


def replay_cache(addresses: Sequence[int], size_bytes: int, ways: int = 2,
                 line_bytes: int = LINE_BYTES) -> Tuple[int, int]:
    """Replay an address trace through a cache; returns (hits, misses)."""
    cache = Cache(CacheConfig(size_bytes=size_bytes, line_bytes=line_bytes,
                              ways=ways))
    for addr in addresses:
        if not cache.lookup(addr):
            cache.fill(addr)
    return cache.hits, cache.misses


def replay_line_buffer(addresses: Sequence[int], lines: int,
                       prefetch: bool = False,
                       line_bytes: int = LINE_BYTES) -> Tuple[int, int]:
    """Replay through a FIFO line buffer (the flash port read buffers)."""
    shift = line_bytes.bit_length() - 1
    capacity = max(1, lines)
    present: dict = {}
    order: List[int] = []
    hits = misses = 0

    def insert(line: int) -> None:
        if line in present:
            return
        if len(order) >= capacity:
            del present[order.pop(0)]
        order.append(line)
        present[line] = True

    for addr in addresses:
        line = addr >> shift
        if line in present:
            hits += 1
        else:
            misses += 1
            insert(line)
            if prefetch:
                insert(line + 1)
    return hits, misses


def miss_stream(addresses: Sequence[int], size_bytes: int, ways: int = 2,
                line_bytes: int = LINE_BYTES) -> List[int]:
    """Addresses that miss a cache of the given geometry (its flash traffic)."""
    cache = Cache(CacheConfig(size_bytes=size_bytes, line_bytes=line_bytes,
                              ways=ways))
    misses: List[int] = []
    for addr in addresses:
        if not cache.lookup(addr):
            cache.fill(addr)
            misses.append(addr)
    return misses


def share_in_ranges(addresses: Sequence[int],
                    ranges: Iterable[Tuple[int, int]]) -> float:
    """Fraction of trace addresses falling into any of the given ranges."""
    ranges = tuple(ranges)
    if not addresses or not ranges:
        return 0.0
    inside = 0
    for addr in addresses:
        for lo, hi in ranges:
            if lo <= addr < hi:
                inside += 1
                break
    return inside / len(addresses)


class TraceCaptures:
    """Bounded capture of fetch-line and data-read addresses.

    Installed during the baseline profiling run; corresponds to a short
    qualified MCDS trace download.  Bounded so that the capture matches
    what a real EMEM-sized buffer could hold.
    """

    def __init__(self, flash_range: Tuple[int, int],
                 max_fetch: int = 200_000, max_data: int = 200_000) -> None:
        self.flash_lo, self.flash_hi = flash_range
        self.max_fetch = max_fetch
        self.max_data = max_data
        self.fetch_addresses: List[int] = []
        self.data_addresses: List[int] = []

    # memory-system hook signatures
    def on_fetch(self, cycle: int, addr: int, master: str) -> None:
        if master == "tc" and len(self.fetch_addresses) < self.max_fetch:
            if self.flash_lo <= addr < self.flash_hi:
                self.fetch_addresses.append(addr)

    def on_data(self, cycle: int, addr: int, is_write: bool,
                master: str) -> None:
        if (not is_write and master == "tc"
                and len(self.data_addresses) < self.max_data
                and self.flash_lo <= addr < self.flash_hi):
            self.data_addresses.append(addr)

    def install(self, memory) -> None:
        memory.fetch_watchers.append(self.on_fetch)
        memory.watchers.append(self.on_data)
