"""Text reports for the optimization methodology outputs."""

from __future__ import annotations

from typing import Iterable, List

from .evaluate import OptionResult


def ranking_table(results: Iterable[OptionResult]) -> str:
    """The paper's deliverable: options ranked by performance/cost ratio."""
    lines = [f"{'option':<14}{'kind':<10}{'pred gain':>10}{'meas gain':>10}"
             f"{'cost':>7}{'gain/cost':>11}"]
    for result in results:
        lines.append(
            f"{result.option.key:<14}{result.option.kind:<10}"
            f"{result.predicted_gain_percent:>9.2f}%"
            f"{result.measured_gain_percent:>9.2f}%"
            f"{result.option.area_cost:>7.0f}"
            f"{result.gain_cost_ratio:>11.4f}")
    return "\n".join(lines)


def validation_table(results: Iterable[OptionResult]) -> str:
    """Analytic-prediction accuracy per option (experiment E6)."""
    results = list(results)
    lines = [f"{'option':<14}{'predicted':>10}{'measured':>10}{'abs err':>9}"]
    for result in sorted(results, key=lambda r: -r.measured_gain_percent):
        lines.append(
            f"{result.option.key:<14}{result.predicted_gain_percent:>9.2f}%"
            f"{result.measured_gain_percent:>9.2f}%"
            f"{result.prediction_error:>8.2f}%")
    if results:
        mae = sum(r.prediction_error for r in results) / len(results)
        lines.append(f"mean absolute error: {mae:.2f} gain points")
    return "\n".join(lines)
