"""Analytic architecture-option evaluation and ranking."""

from .cpi import CpiStack
from .evaluate import OptionEvaluator, OptionResult
from .options import (ArchOption, ProfileContext, full_catalog,
                      hardware_options, software_options)
from .portfolio import (PortfolioEntry, PortfolioEvaluator, pareto_frontier,
                        portfolio_table)
from .scaling import (ScalingPoint, predict_scaling, scaling_table,
                      simulate_scaling)
from . import model, report

__all__ = ["CpiStack", "OptionEvaluator", "OptionResult", "ArchOption",
           "ProfileContext", "full_catalog", "hardware_options",
           "software_options", "PortfolioEntry", "PortfolioEvaluator",
           "pareto_frontier", "portfolio_table", "model", "report",
           "ScalingPoint", "predict_scaling", "scaling_table",
           "simulate_scaling"]
