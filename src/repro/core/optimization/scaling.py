"""Frequency-scaling study: why the flash path is the main lever.

The flash array's access time is fixed in nanoseconds, so raising the CPU
clock adds wait states — every next generation re-pays the flash penalty
(paper Section 4: "a flash access can take several CPU cycles, depending on
the CPU frequency").  This module quantifies that:

* :func:`simulate_scaling` re-runs a workload across CPU frequencies and
  reports delivered performance (work per second);
* :func:`predict_scaling` produces the same curve analytically from one
  measured profile, scaling only the flash-attributable CPI with the
  wait-state ratio — the architect's forward model for a device that does
  not exist yet;
* both expose the "scaling gap": the fraction of the ideal (linear)
  speedup that the flash path eats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ...soc.config import SoCConfig
from ...soc.kernel import signals
from .cpi import CpiStack
from .options import ProfileContext


@dataclass
class ScalingPoint:
    frequency_mhz: int
    wait_states: int
    cpi: float
    #: delivered work per wall-clock second, normalised to the first point
    relative_performance: float

    @property
    def scaling_efficiency(self) -> float:
        """Delivered vs ideal (linear-in-frequency) speedup."""
        return self.relative_performance  # filled in relative to ideal below


def simulate_scaling(scenario, base_config: SoCConfig,
                     frequencies: Iterable[int],
                     work_instructions: int = 100_000,
                     seed: int = 2008,
                     configure=None) -> List[ScalingPoint]:
    """Measure performance across CPU frequencies by re-simulation.

    ``configure(config)`` optionally applies an architecture option to
    every point (e.g. a bigger I-cache) so scaling curves of design
    variants can be compared.
    """
    frequencies = list(frequencies)
    points: List[ScalingPoint] = []
    base_perf: Optional[float] = None
    for freq in frequencies:
        config = base_config.copy()
        config.cpu.frequency_mhz = freq
        if configure is not None:
            configure(config)
        device = scenario.build(config, {}, seed)
        device.soc._ensure_order()
        device.soc.sim.run_until(
            lambda sim: device.cpu.retired >= work_instructions,
            max_cycles=50_000_000)
        seconds = device.cycle / (freq * 1e6)
        perf = work_instructions / seconds
        if base_perf is None:
            base_perf = perf
        stack = CpiStack.from_counts(device.oracle(), device.cycle, config)
        points.append(ScalingPoint(freq, config.flash.wait_states(freq),
                                   stack.cpi, perf / base_perf))
    return points


def predict_scaling(context: ProfileContext, frequencies: Iterable[int]
                    ) -> List[ScalingPoint]:
    """Analytic scaling curve from one measured profile.

    The flash-attributable CPI (fetch stalls + flash-data load stalls)
    scales with the wait-state ratio; everything else is frequency
    invariant in cycles.
    """
    base_config = context.config
    base_freq = base_config.cpu.frequency_mhz
    ws_base = base_config.flash.wait_states(base_freq)
    stack = context.stack
    flash_cpi = (stack.components.get("fetch_stall", 0.0)
                 + context.flash_load_stall_cpi())
    other_cpi = stack.cpi - flash_cpi

    points: List[ScalingPoint] = []
    base_perf: Optional[float] = None
    for freq in frequencies:
        ws = base_config.flash.wait_states(freq)
        cpi = other_cpi + flash_cpi * (ws + 1) / (ws_base + 1)
        perf = freq / cpi
        if base_perf is None:
            base_perf = perf
        points.append(ScalingPoint(freq, ws, cpi, perf / base_perf))
    return points


def scaling_table(simulated: List[ScalingPoint],
                  predicted: Optional[List[ScalingPoint]] = None) -> str:
    lines = [f"{'MHz':>5}{'WS':>4}{'CPI':>8}{'rel perf':>10}{'ideal':>8}"
             + ("" if predicted is None else f"{'predicted':>11}")]
    base_freq = simulated[0].frequency_mhz
    for index, point in enumerate(simulated):
        ideal = point.frequency_mhz / base_freq
        row = (f"{point.frequency_mhz:>5}{point.wait_states:>4}"
               f"{point.cpi:>8.3f}{point.relative_performance:>10.3f}"
               f"{ideal:>8.2f}")
        if predicted is not None:
            row += f"{predicted[index].relative_performance:>11.3f}"
        lines.append(row)
    last = simulated[-1]
    ideal_last = last.frequency_mhz / base_freq
    gap = 1.0 - last.relative_performance / ideal_last
    lines.append(f"scaling gap at {last.frequency_mhz} MHz: {gap:.0%} of the "
                 f"ideal speedup lost to the flash path")
    return "\n".join(lines)
