"""CPI-stack decomposition from measured event rates.

Turns the profiling output into an additive cycles-per-instruction stack:

    CPI = CPI_base + fetch stalls + load stalls + store stalls
        + control-flow overhead + interrupt-entry overhead

Each stall class is a directly tapped event source (stall cycles per
cause), so the stack is exact for the simulated core — the analytic
optimization model then predicts how an architecture option shrinks
individual components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...soc.config import SoCConfig
from ...soc.kernel import signals


@dataclass
class CpiStack:
    """Additive CPI decomposition over one measured run."""

    cycles: int
    instructions: int
    components: Dict[str, float]    # name -> CPI contribution

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @classmethod
    def from_counts(cls, counts: Dict[str, int], cycles: int,
                    config: SoCConfig) -> "CpiStack":
        """Build the stack from event totals (oracle or summed rate samples)."""
        instructions = counts.get(signals.TC_INSTR, 0)
        if instructions == 0:
            return cls(cycles, 0, {})
        fetch = counts.get(signals.TC_STALL_FETCH, 0)
        load = counts.get(signals.TC_STALL_LOAD, 0)
        store = counts.get(signals.TC_STALL_STORE, 0)
        taken = counts.get(signals.TC_BRANCH_TAKEN, 0)
        csa = counts.get(signals.TC_CSA, 0)
        irq = counts.get(signals.TC_IRQ_ENTRY, 0)
        control = taken * config.cpu.branch_penalty
        context = csa * config.cpu.context_switch_cycles
        irq_entry = irq * config.cpu.irq_entry_cycles
        accounted = fetch + load + store + control + context + irq_entry
        base = max(0, cycles - accounted)
        divide = float(instructions)
        components = {
            "base": base / divide,
            "fetch_stall": fetch / divide,
            "load_stall": load / divide,
            "store_stall": store / divide,
            "control_flow": control / divide,
            "context_switch": context / divide,
            "irq_entry": irq_entry / divide,
        }
        return cls(cycles, instructions, components)

    def as_table(self) -> str:
        lines = [f"{'component':<18}{'CPI':>9}{'share':>9}"]
        total = sum(self.components.values()) or 1.0
        for name, value in sorted(self.components.items(),
                                  key=lambda item: -item[1]):
            lines.append(f"{name:<18}{value:>9.4f}{100 * value / total:>8.1f}%")
        lines.append(f"{'total':<18}{self.cpi:>9.4f}")
        return "\n".join(lines)
