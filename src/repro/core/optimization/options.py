"""Architecture-option catalog with area costs and analytic predictions.

The methodology's deliverable (paper Sections 4 and 6): candidate
improvements for the next microcontroller generation, each with

* an ``apply`` action — a delta on the :class:`SoCConfig` (hardware
  options) or on the workload mapping parameters (software options such as
  "map data structures to scratch pad memory");
* a relative **area cost** in kGE-equivalent units (SRAM ≈ 6 units/KB plus
  control logic; the absolute scale is irrelevant because the output is a
  performance-gain/cost *ratio* ranking);
* an **analytic speedup prediction** computed purely from the statistical
  profile of the *current* device — the quantity the paper derives from ED
  measurements before any next-generation silicon exists.

Prediction models are deliberately first-order (√2 miss-rate rule,
wait-state proportionality, measured-conflict removal): experiment E6
quantifies their error against re-simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ...soc.config import SoCConfig
from ...soc.kernel import signals
from . import model
from .cpi import CpiStack

#: relative area cost of one KB of on-chip SRAM
SRAM_COST_PER_KB = 6.0


@dataclass
class ProfileContext:
    """Everything an analytic prediction may consume about the baseline.

    ``captures`` holds the short qualified trace download (fetch lines and
    flash data addresses) used by the trace-replay predictions; when absent
    the predictions fall back to first-order closed-form models.
    ``hot_ranges`` are the address ranges of the application's hot
    calibration structures (known to the customer from the link map).
    """

    config: SoCConfig
    cycles: int
    counts: Dict[str, int]
    stack: CpiStack
    captures: Optional[model.TraceCaptures] = None
    hot_ranges: tuple = ()

    def per_instr(self, signal: str) -> float:
        instr = self.counts.get(signals.TC_INSTR, 0)
        if instr == 0:
            return 0.0
        return self.counts.get(signal, 0) / instr

    @property
    def flash_wait_states(self) -> int:
        return self.config.flash.wait_states(self.config.cpu.frequency_mhz)

    def flash_load_stall_cpi(self) -> float:
        """CPI share of load stalls attributable to flash data misses."""
        misses = (self.counts.get(signals.PFLASH_DATA_ACCESS, 0)
                  - self.counts.get(signals.PFLASH_BUF_HIT_DATA, 0))
        instr = self.counts.get(signals.TC_INSTR, 0)
        if instr == 0:
            return 0.0
        per_miss = self.flash_wait_states  # stall beyond the 1-cycle hit
        estimate = misses * per_miss / instr
        return min(estimate, self.stack.components.get("load_stall", 0.0))

    def speedup_from_cpi_delta(self, delta: float) -> float:
        """Speedup factor if ``delta`` CPI were removed (floor at no-change)."""
        cpi = self.stack.cpi
        if cpi <= 0 or delta <= 0:
            return 1.0
        return cpi / max(cpi - delta, 1e-9)


@dataclass
class ArchOption:
    """One candidate improvement, hardware or software."""

    key: str
    title: str
    kind: str                      # "hardware" or "software"
    area_cost: float               # relative units, >= 1
    predict: Callable[[ProfileContext], float]
    apply_config: Optional[Callable[[SoCConfig], None]] = None
    apply_params: Optional[Callable[[dict], None]] = None
    description: str = ""

    def apply(self, config: SoCConfig, params: dict) -> None:
        if self.apply_config is not None:
            self.apply_config(config)
        if self.apply_params is not None:
            self.apply_params(params)


# --- analytic models -----------------------------------------------------------
def _predict_icache_double(ctx: ProfileContext) -> float:
    """Replay the captured fetch-line trace through a doubled cache.

    Falls back to the √2 miss-rate rule when no trace was captured.
    """
    fetch = ctx.stack.components.get("fetch_stall", 0.0)
    captures = ctx.captures
    if captures is not None and len(captures.fetch_addresses) > 1000:
        size = ctx.config.icache.size_bytes
        ways = ctx.config.icache.ways
        _, miss_cur = model.replay_cache(captures.fetch_addresses, size, ways)
        _, miss_new = model.replay_cache(captures.fetch_addresses, 2 * size,
                                         ways)
        if miss_cur == 0:
            return 1.0
        removed = fetch * (1.0 - miss_new / miss_cur)
    else:
        removed = fetch * (1.0 - 1.0 / math.sqrt(2.0))
    return ctx.speedup_from_cpi_delta(removed)


def _predict_flash_faster(ctx: ProfileContext, new_ns: float) -> float:
    """Fewer wait states shrink every flash-induced stall proportionally."""
    ws_old = ctx.flash_wait_states
    cfg = ctx.config.copy()
    cfg.flash.access_time_ns = new_ns
    ws_new = cfg.flash.wait_states(cfg.cpu.frequency_mhz)
    if ws_old <= 0:
        return 1.0
    factor = (ws_new + 1) / (ws_old + 1)
    fetch = ctx.stack.components.get("fetch_stall", 0.0)
    flash_load = ctx.flash_load_stall_cpi()
    removed = (fetch + flash_load) * (1.0 - factor)
    return ctx.speedup_from_cpi_delta(removed)


def _predict_prefetch_deeper(ctx: ProfileContext) -> float:
    """Replay the I-cache miss stream through deeper code-port buffers.

    The flash code traffic of the next generation is the miss stream of the
    current I-cache over the captured fetch trace; the buffer replay then
    gives the array-access reduction from extra lines.
    """
    fetch = ctx.stack.components.get("fetch_stall", 0.0)
    captures = ctx.captures
    if captures is None or len(captures.fetch_addresses) <= 1000:
        return ctx.speedup_from_cpi_delta(fetch * 0.25)
    cfg = ctx.config
    misses = model.miss_stream(captures.fetch_addresses,
                               cfg.icache.size_bytes, cfg.icache.ways)
    if not misses:
        return 1.0
    _, arr_cur = model.replay_line_buffer(misses, cfg.flash.code_buffer_lines,
                                          prefetch=cfg.flash.prefetch_enabled)
    _, arr_new = model.replay_line_buffer(misses,
                                          2 * cfg.flash.code_buffer_lines,
                                          prefetch=cfg.flash.prefetch_enabled)
    if arr_cur == 0:
        return 1.0
    removed = fetch * (1.0 - arr_new / arr_cur)
    return ctx.speedup_from_cpi_delta(removed)


def _predict_data_buffer(ctx: ProfileContext) -> float:
    """Replay the flash data-read trace through a wider read buffer."""
    captures = ctx.captures
    flash_load = ctx.flash_load_stall_cpi()
    if captures is None or len(captures.data_addresses) <= 200:
        return ctx.speedup_from_cpi_delta(flash_load * 0.2)
    cfg = ctx.config
    _, miss_cur = model.replay_line_buffer(captures.data_addresses,
                                           cfg.flash.data_buffer_lines)
    _, miss_new = model.replay_line_buffer(captures.data_addresses,
                                           4 * cfg.flash.data_buffer_lines)
    if miss_cur == 0:
        return 1.0
    removed = flash_load * (1.0 - miss_new / miss_cur)
    return ctx.speedup_from_cpi_delta(removed)


def _predict_dcache(ctx: ProfileContext) -> float:
    """Replay the flash data-read trace through the candidate data cache."""
    flash_load = ctx.flash_load_stall_cpi()
    captures = ctx.captures
    if captures is None or len(captures.data_addresses) <= 200:
        return ctx.speedup_from_cpi_delta(flash_load * 0.85)
    cfg = ctx.config
    hits, misses = model.replay_cache(captures.data_addresses,
                                      cfg.dcache.size_bytes, cfg.dcache.ways)
    total = hits + misses
    if total == 0:
        return 1.0
    removed = flash_load * (hits / total)
    return ctx.speedup_from_cpi_delta(removed)


def _predict_more_banks(ctx: ProfileContext) -> float:
    """Doubling the banks removes most code/data port conflicts."""
    conflict_cpi = ctx.per_instr(signals.PFLASH_PORT_CONFLICT)
    return ctx.speedup_from_cpi_delta(conflict_cpi * 0.6)


def _predict_tables_to_dspr(ctx: ProfileContext) -> float:
    """Mapping the hot tables to DSPR removes *their* flash load stalls.

    The share of flash data traffic hitting the hot calibration structures
    comes from the captured data trace and the link map (``hot_ranges``).
    """
    flash_load = ctx.flash_load_stall_cpi()
    captures = ctx.captures
    if captures is None:
        return ctx.speedup_from_cpi_delta(flash_load)
    if not ctx.hot_ranges:
        return 1.0        # link map says nothing is left to move
    share = model.share_in_ranges(captures.data_addresses, ctx.hot_ranges)
    return ctx.speedup_from_cpi_delta(flash_load * share)


def _predict_isr_to_pspr(ctx: ProfileContext) -> float:
    """ISR code in PSPR removes the fetch stalls of interrupt bursts.

    The interrupt-cycle share of execution approximates the fetch stalls
    attributable to ISR code.
    """
    if ctx.cycles == 0:
        return 1.0
    irq_share = ctx.counts.get(signals.TC_IRQ_CYCLES, 0) / ctx.cycles
    fetch = ctx.stack.components.get("fetch_stall", 0.0)
    return ctx.speedup_from_cpi_delta(fetch * min(1.0, irq_share))


def _predict_fast_spb(ctx: ProfileContext) -> float:
    """A full-speed peripheral bus halves SPB latency and contention."""
    spb_cpi = ctx.per_instr(signals.SPB_CONTENTION)
    store = ctx.stack.components.get("store_stall", 0.0)
    return ctx.speedup_from_cpi_delta(0.5 * (spb_cpi + store))


def _predict_crossbar(ctx: ProfileContext) -> float:
    """An SRI-style crossbar removes cross-target LMB arbitration waits.

    First-order: all measured LMB contention disappears (same-target
    conflicts remain but are a small residue in these workloads).
    """
    return ctx.speedup_from_cpi_delta(ctx.per_instr(signals.LMB_CONTENTION))


# --- the catalog ------------------------------------------------------------------
def _set_icache_double(cfg: SoCConfig) -> None:
    cfg.icache.size_bytes *= 2


def _set_flash_25ns(cfg: SoCConfig) -> None:
    cfg.flash.access_time_ns = 25.0


def _set_prefetch4(cfg: SoCConfig) -> None:
    cfg.flash.code_buffer_lines = 4


def _set_data_buffer4(cfg: SoCConfig) -> None:
    cfg.flash.data_buffer_lines = 4


def _set_dcache_on(cfg: SoCConfig) -> None:
    cfg.dcache.enabled = True


def _set_banks4(cfg: SoCConfig) -> None:
    cfg.flash.banks = 4


def _set_spb_fast(cfg: SoCConfig) -> None:
    cfg.bus.spb_occupancy = 1
    cfg.bus.spb_latency = 2


def _set_crossbar(cfg: SoCConfig) -> None:
    cfg.bus.lmb_crossbar = True


def hardware_options() -> List[ArchOption]:
    """The SoC architect's next-generation candidates."""
    return [
        ArchOption("icache_x2", "double I-cache", "hardware",
                   area_cost=16 * SRAM_COST_PER_KB + 10,
                   predict=_predict_icache_double,
                   apply_config=_set_icache_double,
                   description="16 KB -> 32 KB instruction cache"),
        ArchOption("flash_25ns", "faster flash array", "hardware",
                   area_cost=80.0,
                   predict=lambda ctx: _predict_flash_faster(ctx, 25.0),
                   apply_config=_set_flash_25ns,
                   description="30 ns -> 25 ns flash access time"),
        ArchOption("prefetch_x4", "deeper code prefetch buffer", "hardware",
                   area_cost=2 * 8.0,
                   predict=_predict_prefetch_deeper,
                   apply_config=_set_prefetch4,
                   description="2 -> 4 code-port line buffers"),
        ArchOption("dbuf_x4", "wider data read buffer", "hardware",
                   area_cost=3 * 8.0,
                   predict=_predict_data_buffer,
                   apply_config=_set_data_buffer4,
                   description="1 -> 4 data-port line buffers"),
        ArchOption("dcache_4k", "add 4 KB data cache", "hardware",
                   area_cost=4 * SRAM_COST_PER_KB + 15,
                   predict=_predict_dcache,
                   apply_config=_set_dcache_on,
                   description="enable a 4 KB write-through data cache"),
        ArchOption("banks_x4", "four flash banks", "hardware",
                   area_cost=60.0,
                   predict=_predict_more_banks,
                   apply_config=_set_banks4,
                   description="2 -> 4 banks, fewer port conflicts"),
        ArchOption("spb_fast", "full-speed peripheral bus", "hardware",
                   area_cost=40.0,
                   predict=_predict_fast_spb,
                   apply_config=_set_spb_fast,
                   description="SPB at CPU clock"),
        ArchOption("lmb_xbar", "LMB crossbar (SRI)", "hardware",
                   area_cost=55.0,
                   predict=_predict_crossbar,
                   apply_config=_set_crossbar,
                   description="per-target interconnect lanes"),
    ]


def _param_tables_dspr(params: dict) -> None:
    params["tables_in_dspr"] = True


def _param_isr_pspr(params: dict) -> None:
    params["isr_in_pspr"] = True


def software_options() -> List[ArchOption]:
    """The customer's software-mapping levers (paper Section 5)."""
    return [
        ArchOption("tables_dspr", "map hot tables to DSPR", "software",
                   area_cost=1.0,
                   predict=_predict_tables_to_dspr,
                   apply_params=_param_tables_dspr,
                   description="calibration maps copied into scratchpad"),
        ArchOption("isr_pspr", "map ISR code to PSPR", "software",
                   area_cost=1.0,
                   predict=_predict_isr_to_pspr,
                   apply_params=_param_isr_pspr,
                   description="crank/ADC handlers in program scratchpad"),
    ]


def full_catalog() -> List[ArchOption]:
    return hardware_options() + software_options()
