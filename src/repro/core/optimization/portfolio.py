"""Portfolio evaluation: ranking options across a customer population.

The SoC architect does not optimise for one customer: "Analysis of the
application profiles of the different customer applications ... with the
target of further optimization of the hardware for the future automotive
applications" (paper Section 5), under the constraint of "no negative side
effects for other possible use cases" (Section 4).

A portfolio evaluation runs the option catalog against every customer,
aggregates gains with volume weights, flags options that *regress* any
customer (the forbidden negative side effects), and computes the Pareto
frontier in (area cost, weighted gain) space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ...soc.config import SoCConfig
from .evaluate import OptionEvaluator, OptionResult
from .options import ArchOption


@dataclass
class PortfolioEntry:
    """One option's aggregated result across the population."""

    option: ArchOption
    per_customer_gain: Dict[str, float]     # customer name -> gain percent
    weighted_gain: float
    worst_gain: float

    @property
    def has_regression(self) -> bool:
        """True if any customer loses more than measurement noise."""
        return self.worst_gain < -0.5

    @property
    def gain_cost_ratio(self) -> float:
        return self.weighted_gain / max(self.option.area_cost, 1e-9)


class PortfolioEvaluator:
    """Runs option evaluation per customer and aggregates."""

    def __init__(self, customers: Sequence, base_config: SoCConfig,
                 options: Iterable[ArchOption],
                 weights: Optional[Dict[str, float]] = None,
                 work_instructions: int = 80_000, seed: int = 2008) -> None:
        self.customers = list(customers)
        self.base_config = base_config
        self.options = list(options)
        self.weights = weights or {}
        self.work_instructions = work_instructions
        self.seed = seed

    def _weight(self, customer) -> float:
        return self.weights.get(customer.name, 1.0)

    def evaluate(self) -> List[PortfolioEntry]:
        per_option: Dict[str, Dict[str, float]] = {
            option.key: {} for option in self.options}
        for customer in self.customers:
            scenario = customer.scenario
            # pin this customer's parameters onto the scenario
            scenario = type(scenario)()
            scenario.default_params = dict(scenario.default_params)
            scenario.default_params.update(customer.params)
            evaluator = OptionEvaluator(
                scenario, self.base_config, self.options,
                work_instructions=self.work_instructions, seed=self.seed)
            for result in evaluator.evaluate():
                per_option[result.option.key][customer.name] = (
                    result.measured_gain_percent)

        total_weight = sum(self._weight(c) for c in self.customers) or 1.0
        entries: List[PortfolioEntry] = []
        for option in self.options:
            gains = per_option[option.key]
            weighted = sum(gains[c.name] * self._weight(c)
                           for c in self.customers) / total_weight
            worst = min(gains.values()) if gains else 0.0
            entries.append(PortfolioEntry(option, gains, weighted, worst))
        entries.sort(key=lambda e: -e.gain_cost_ratio)
        return entries


def pareto_frontier(entries: Iterable[PortfolioEntry]
                    ) -> List[PortfolioEntry]:
    """Options not dominated in (lower cost, higher weighted gain)."""
    pool = [e for e in entries if e.weighted_gain > 0]
    frontier: List[PortfolioEntry] = []
    for entry in pool:
        dominated = any(
            other.option.area_cost <= entry.option.area_cost
            and other.weighted_gain >= entry.weighted_gain
            and (other.option.area_cost < entry.option.area_cost
                 or other.weighted_gain > entry.weighted_gain)
            for other in pool)
        if not dominated:
            frontier.append(entry)
    frontier.sort(key=lambda e: e.option.area_cost)
    return frontier


def portfolio_table(entries: Iterable[PortfolioEntry]) -> str:
    entries = list(entries)
    frontier_keys = {e.option.key for e in pareto_frontier(entries)}
    lines = [f"{'option':<14}{'weighted gain':>14}{'worst':>8}{'cost':>7}"
             f"{'gain/cost':>11}{'pareto':>8}{'regress':>9}"]
    for entry in entries:
        lines.append(
            f"{entry.option.key:<14}{entry.weighted_gain:>13.2f}%"
            f"{entry.worst_gain:>7.2f}%{entry.option.area_cost:>7.0f}"
            f"{entry.gain_cost_ratio:>11.4f}"
            f"{'*' if entry.option.key in frontier_keys else '':>8}"
            f"{'YES' if entry.has_regression else '-':>9}")
    return "\n".join(lines)
