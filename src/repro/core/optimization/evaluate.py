"""Option evaluation: analytic prediction vs re-simulated measurement.

Implements the paper's quantitative loop: profile the current device under
a representative workload, predict each architecture option's gain
analytically from the statistical data, then (here, where the paper's
authors built silicon) validate by re-simulating the modified
configuration, and finally rank everything by performance-gain/cost ratio
("comparing their performance cost ratios", Section 1).

Performance is time-to-complete a fixed amount of application work (a
fixed retired-instruction budget), which matches how an ECU experiences a
faster microcontroller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol

from ...ed.device import EmulationDevice
from ...soc.config import SoCConfig
from ...soc.kernel import signals
from .cpi import CpiStack
from .model import TraceCaptures
from .options import ArchOption, ProfileContext


class Scenario(Protocol):
    """A reproducible workload: device construction + work definition."""

    name: str
    default_params: Dict

    def build(self, config: SoCConfig, params: Dict,
              seed: int) -> EmulationDevice:
        """Return a device with program loaded and peripherals attached."""
        ...


@dataclass
class OptionResult:
    option: ArchOption
    predicted_speedup: float
    measured_speedup: float
    baseline_cycles: int
    option_cycles: int

    @property
    def measured_gain_percent(self) -> float:
        return (self.measured_speedup - 1.0) * 100.0

    @property
    def predicted_gain_percent(self) -> float:
        return (self.predicted_speedup - 1.0) * 100.0

    @property
    def gain_cost_ratio(self) -> float:
        """Measured gain percent per area-cost unit — the ranking metric."""
        return self.measured_gain_percent / max(self.option.area_cost, 1e-9)

    @property
    def prediction_error(self) -> float:
        """Absolute error of the analytic prediction, in gain points."""
        return abs(self.predicted_gain_percent - self.measured_gain_percent)


class OptionEvaluator:
    """Runs baseline + one re-simulation per option and ranks the results."""

    def __init__(self, scenario: Scenario, base_config: SoCConfig,
                 options: Iterable[ArchOption],
                 work_instructions: int = 150_000,
                 seed: int = 2008, max_cycles: int = 20_000_000) -> None:
        self.scenario = scenario
        self.base_config = base_config
        self.options = list(options)
        self.work_instructions = work_instructions
        self.seed = seed
        self.max_cycles = max_cycles
        self.context: Optional[ProfileContext] = None
        self.baseline_cycles: Optional[int] = None

    # -- execution -----------------------------------------------------------
    def _run(self, config: SoCConfig, params: Dict) -> EmulationDevice:
        device = self.scenario.build(config, params, self.seed)
        target = self.work_instructions
        device.soc._ensure_order()
        device.soc.sim.run_until(
            lambda sim: device.cpu.retired >= target,
            max_cycles=self.max_cycles)
        return device

    def run_baseline(self) -> ProfileContext:
        """Profile the current device and capture the replay traces.

        The capture corresponds to a qualified MCDS trace session on the
        flash address space, downloaded for tool-side replay analysis.
        """
        params = dict(self.scenario.default_params)
        config = self.base_config.copy()
        device = self.scenario.build(config, params, self.seed)
        flash_region = device.soc.map.region("pflash")
        captures = TraceCaptures((flash_region.base, flash_region.end))
        captures.install(device.soc.memory)
        target = self.work_instructions
        device.soc._ensure_order()
        device.soc.sim.run_until(
            lambda sim: device.cpu.retired >= target,
            max_cycles=self.max_cycles)
        counts = device.oracle()
        stack = CpiStack.from_counts(counts, device.cycle, self.base_config)
        hot_ranges = ()
        hot_fn = getattr(self.scenario, "hot_table_ranges", None)
        if hot_fn is not None:
            hot_ranges = tuple(hot_fn(params))
        self.context = ProfileContext(self.base_config, device.cycle,
                                      counts, stack, captures, hot_ranges)
        self.baseline_cycles = device.cycle
        return self.context

    def evaluate(self) -> List[OptionResult]:
        if self.context is None:
            self.run_baseline()
        results: List[OptionResult] = []
        for option in self.options:
            config = self.base_config.copy()
            params = dict(self.scenario.default_params)
            option.apply(config, params)
            device = self._run(config, params)
            measured = self.baseline_cycles / device.cycle
            predicted = option.predict(self.context)
            results.append(OptionResult(
                option=option,
                predicted_speedup=predicted,
                measured_speedup=measured,
                baseline_cycles=self.baseline_cycles,
                option_cycles=device.cycle,
            ))
        results.sort(key=lambda r: -r.gain_cost_ratio)
        return results
