"""Structured JSONL event log with run-id correlation.

Replaces ad-hoc progress prints with machine-readable records: one JSON
object per line, every line carrying the same ``run_id`` so the events
of one campaign can be joined against its trace file and metrics dump.
Records are buffered in memory and optionally streamed live to a text
handle (the fleet's structured progress output).

Record shape::

    {"run_id": "…", "seq": 12, "t": 0.0831,
     "event": "job.done", "job_id": "engine-tc1797-…", "status": "ok"}

``seq`` is a per-log monotonic sequence number; ``t`` is seconds since
the log's epoch on its (pluggable, test-fakeable) clock.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, TextIO


class EventLog:
    """Append-only structured event record buffer."""

    def __init__(self, run_id: str,
                 clock: Optional[Callable[[], float]] = None,
                 stream: Optional[TextIO] = None,
                 max_records: int = 100_000) -> None:
        self.run_id = run_id
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self._stream = stream
        self.max_records = max_records
        self.records: List[Dict] = []
        self.dropped_records = 0
        self._seq = 0

    def emit(self, event: str, **fields) -> Dict:
        """Record one event; returns the record (also streamed if live)."""
        record = {"run_id": self.run_id, "seq": self._seq,
                  "t": round(self._clock() - self._epoch, 6),
                  "event": event}
        record.update(fields)
        self._seq += 1
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped_records += 1
        if self._stream is not None:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def to_jsonl(self) -> str:
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.records)

    def write(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return path

    def by_event(self, event: str) -> List[Dict]:
        """All records of one event type (tests/diagnostics)."""
        return [r for r in self.records if r["event"] == event]

    def __len__(self) -> int:
        return len(self.records)
