"""Telemetry runtime: the process-wide slot every hook site guards on.

Mirrors the :mod:`repro.faults.injector` design exactly: a module-level
``_active`` slot that is ``None`` when telemetry is off, so every
instrumentation site in a hot path costs one attribute load and one
``is not None`` test.  Install a :class:`Telemetry` (usually via the
:func:`telemetry` context manager) and the same sites record spans,
instants, metrics, and structured events.

One :class:`Telemetry` bundles the three sinks:

* :class:`~repro.obs.registry.MetricsRegistry` — counters / gauges /
  histograms, exported as JSON or Prometheus text;
* :class:`~repro.obs.tracer.SpanTracer` — Chrome trace-event timeline;
* :class:`~repro.obs.events.EventLog` — run-id-correlated JSONL records.

Determinism contract: telemetry *reads* model state, never writes it,
never draws from any :class:`random.Random`, and never feeds timing
back.  Campaign payloads are byte-identical with telemetry on or off
(asserted in ``tests/test_obs.py``).
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from typing import Callable, Dict, Optional, TextIO

from .events import EventLog
from .registry import MetricsRegistry
from .tracer import MAIN_PID, MAIN_TID, SpanTracer

#: histogram bounds for simulated-cycle span lengths
_CYCLE_BUCKETS = (1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


def _register_core_families(reg: MetricsRegistry) -> None:
    """Pre-register the cross-subsystem metric schema.

    Registered eagerly (not on first touch) so a metrics export always
    covers the kernel, pipeline, fault, and fleet families even when a
    run never exercised one of them — absent metrics and zero metrics
    are different observability statements.
    """
    # kernel / simulation
    reg.counter("repro_sim_cycles_total",
                "simulated cycles, by kernel mode", ("kernel",))
    reg.counter("repro_sim_advances_total",
                "simulator advance spans executed", ("kernel",))
    reg.histogram("repro_sim_span_cycles",
                  "cycles simulated per advance span",
                  buckets=_CYCLE_BUCKETS, per_run=True)
    reg.counter("repro_kernel_component_ticks_total",
                "component ticks executed", ("component",))
    reg.counter("repro_kernel_component_skipped_total",
                "component ticks skipped by quiescence scheduling",
                ("component",))
    reg.gauge("repro_kernel_cycles_per_sec",
              "simulation throughput of the last recorded run", ("kernel",))
    reg.gauge("repro_kernel_wall_seconds",
              "simulation wall clock of the last recorded run", ("kernel",))
    # trace pipeline
    reg.counter("repro_pipeline_messages_total",
                "trace messages generated, by message kind", ("kind",))
    reg.counter("repro_pipeline_bits_total",
                "trace bits generated, by message kind", ("kind",))
    reg.counter("repro_pipeline_lost_messages_total",
                "messages lost in the pipeline", ("source", "reason"))
    reg.counter("repro_trace_gaps_total",
                "lost-span gap records opened", ("source",))
    reg.counter("repro_dap_bits_transferred_total",
                "bits moved over the DAP wire")
    reg.gauge("repro_emem_fill_ratio",
              "EMEM trace-buffer fill ratio at last snapshot")
    reg.counter("repro_trigger_fires_total",
                "MCDS trigger rising edges", ("trigger",))
    # obs self-observation + trace store
    reg.counter("repro_obs_spans_dropped_total",
                "trace events rejected by the bounded in-memory buffer")
    reg.counter("repro_trace_store_events_total",
                "events streamed into columnar trace-store segments")
    reg.counter("repro_trace_store_blocks_total",
                "column blocks flushed to trace-store segments")
    reg.counter("repro_trace_store_bytes_total",
                "bytes appended to trace-store segments")
    # batch-lane backend
    reg.counter("repro_batch_groups_total",
                "lane groups executed by the batch backend, by outcome "
                "(ok/fallback)", ("status",))
    reg.counter("repro_batch_lanes_total",
                "portfolio lanes executed on the batch backend")
    reg.counter("repro_batch_strides_total",
                "lockstep sweep strides executed across all lane groups")
    reg.counter("repro_batch_sweep_cycles_total",
                "cycles simulated inside batch lane sweeps")
    reg.counter("repro_batch_fallbacks_total",
                "lane groups re-routed to the scalar path, by reason",
                ("reason",))
    # faults
    reg.counter("repro_faults_injected_total",
                "faults injected, by site", ("site",))
    reg.counter("repro_watchdog_trips_total",
                "simulation watchdog expirations", ("kind",))
    # fleet
    reg.counter("repro_fleet_jobs_total",
                "campaign job completions", ("status", "source"))
    reg.counter("repro_fleet_retries_total", "job retry attempts")
    reg.counter("repro_fleet_cache_lookups_total",
                "result-cache lookups", ("result",))
    reg.counter("repro_fleet_lost_messages_total",
                "trace messages lost across campaign payloads")
    reg.counter("repro_fleet_trace_gaps_total",
                "trace gaps across campaign payloads")
    reg.counter("repro_fleet_degraded_samples_total",
                "degraded samples across campaign payloads")
    reg.histogram("repro_fleet_job_wall_seconds",
                  "in-worker wall clock per executed job")
    reg.gauge("repro_fleet_worker_utilization",
              "busy / (wall x workers) of the last campaign")
    reg.gauge("repro_fleet_wall_seconds",
              "wall clock of the last campaign")
    # checkpoint / restore
    reg.counter("repro_checkpoint_writes_total",
                "checkpoint files written", ("kind",))
    reg.counter("repro_checkpoint_bytes_total",
                "bytes of checkpoint data written")
    reg.counter("repro_checkpoint_restores_total",
                "checkpoint restore attempts, by outcome", ("result",))
    # serve (the always-on campaign service)
    reg.gauge("repro_serve_queue_depth",
              "campaigns waiting in the admission queue", ("tenant",))
    reg.gauge("repro_serve_running_campaigns",
              "campaigns currently executing in a slot")
    reg.counter("repro_serve_campaigns_total",
                "campaign admission and terminal outcomes "
                "(admitted/rejected/completed/failed/evicted)",
                ("tenant", "outcome"))
    reg.counter("repro_serve_evictions_total",
                "campaigns preempted at a safe boundary to make room "
                "for higher-priority work")
    reg.gauge("repro_serve_sse_clients",
              "currently connected SSE event-stream clients")
    reg.gauge("repro_serve_tenant_tokens",
              "token-bucket fill level per tenant at last admission "
              "decision", ("tenant",))
    reg.counter("repro_serve_requests_total",
                "HTTP requests served, by route template and status",
                ("method", "route", "status"))
    reg.counter("repro_serve_results_streamed_total",
                "per-job result records pushed to event streams")
    # cluster (multi-node campaign execution over a shared directory)
    reg.gauge("repro_cluster_nodes_alive",
              "cluster nodes with a heartbeat younger than the liveness "
              "horizon at last status scan")
    reg.counter("repro_cluster_leases_total",
                "lease lifecycle events, by event "
                "(claimed/renewed/expired/fenced/released)", ("event",))
    reg.counter("repro_cluster_batches_migrated_total",
                "job batches reclaimed from another holder's expired lease")
    reg.gauge("repro_cluster_heartbeat_age_seconds",
              "seconds since each node's last heartbeat at last status "
              "scan", ("node",))
    reg.counter("repro_cluster_jobs_total",
                "jobs this node committed to the shared store, by status",
                ("status",))
    # resilience (admission journal, crash recovery, circuit breaker)
    reg.counter("repro_resilience_journal_records_total",
                "write-ahead admission journal appends, by record op",
                ("op",))
    reg.counter("repro_resilience_recovered_total",
                "campaigns rebuilt from the journal at service start, "
                "by disposition (requeued/terminal/unrecoverable)",
                ("disposition",))
    reg.gauge("repro_resilience_breaker_state",
              "admission circuit breaker state "
              "(0 closed, 1 half-open, 2 open)")
    reg.gauge("repro_resilience_breaker_failure_rate",
              "campaign failure rate over the breaker's sliding window")
    reg.counter("repro_resilience_breaker_transitions_total",
                "circuit breaker state transitions, by new state", ("to",))
    reg.counter("repro_resilience_shed_total",
                "admissions shed with 503 while the breaker was not closed")
    reg.counter("repro_resilience_idempotent_replays_total",
                "duplicate submissions answered with the original campaign")
    reg.counter("repro_resilience_deadline_exceeded_total",
                "campaigns expired at their wall-clock deadline, by the "
                "phase they were in (queued/running)", ("phase",))


class Telemetry:
    """One run's registry + tracer + event log, ready to install."""

    def __init__(self, run_id: Optional[str] = None,
                 clock: Optional[Callable[[], float]] = None,
                 stream: Optional[TextIO] = None) -> None:
        if run_id is None:
            run_id = uuid.uuid4().hex[:12]
        self.run_id = run_id
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(clock)
        self.events = EventLog(run_id, clock, stream)
        _register_core_families(self.registry)
        self.tracer.on_drop = self._note_dropped
        self._previous: Optional["Telemetry"] = None

    def _note_dropped(self, count: int) -> None:
        self.registry.get("repro_obs_spans_dropped_total").inc(count)

    # -- sugar over the three sinks ------------------------------------------
    def span(self, name: str, cat: str = "repro", pid: int = MAIN_PID,
             tid: int = MAIN_TID, **args):
        return self.tracer.span(name, cat, pid, tid, args or None)

    def instant(self, name: str, cat: str = "repro", pid: int = MAIN_PID,
                tid: int = MAIN_TID, **args) -> None:
        self.tracer.instant(name, cat, pid, tid, args or None)

    def emit(self, event: str, **fields) -> None:
        self.events.emit(event, **fields)

    # -- hook-site helpers (called only when the slot is non-None) -----------
    def sim_advance(self, kernel: str, begin_cycle: int, end_cycle: int,
                    ts_us: float) -> None:
        cycles = end_cycle - begin_cycle
        self.tracer.complete(
            "sim.advance", ts_us, self.tracer.now_us() - ts_us, "sim",
            args={"begin_cycle": begin_cycle, "end_cycle": end_cycle,
                  "cycles": cycles, "kernel": kernel,
                  "span_id": self.tracer.next_span_id()})
        reg = self.registry
        reg.get("repro_sim_cycles_total").labels(kernel).inc(cycles)
        reg.get("repro_sim_advances_total").labels(kernel).inc()
        reg.get("repro_sim_span_cycles").observe(cycles)

    def gap_recorded(self, source: str, kind: str, cycle: int,
                     lost: int) -> None:
        self.instant("gap.recorded", cat="pipeline", source=source,
                     kind=kind, cycle=cycle, lost=lost)
        self.registry.get("repro_trace_gaps_total").labels(source).inc()
        self.registry.get("repro_pipeline_lost_messages_total") \
            .labels(source, kind).inc(lost)

    def fault_injected(self, site: str, hit: int, scope: str) -> None:
        self.instant("fault.injected", cat="faults", site=site, hit=hit,
                     scope=scope)
        self.registry.get("repro_faults_injected_total").labels(site).inc()
        self.events.emit("fault.injected", site=site, hit=hit, scope=scope)

    def watchdog_trip(self, kind: str, cycle: int) -> None:
        self.instant("watchdog.trip", cat="faults", kind=kind, cycle=cycle)
        self.registry.get("repro_watchdog_trips_total").labels(kind).inc()
        self.events.emit("watchdog.trip", kind=kind, cycle=cycle)

    def cache_lookup(self, result: str, digest: str) -> None:
        self.instant(f"cache.{result}", cat="fleet", digest=digest)
        self.registry.get("repro_fleet_cache_lookups_total") \
            .labels(result).inc()

    def trigger_fired(self, trigger: str, cycle: int) -> None:
        self.instant("trigger.fire", cat="mcds", trigger=trigger,
                     cycle=cycle)
        self.registry.get("repro_trigger_fires_total").labels(trigger).inc()

    def checkpoint_written(self, path: str, size: int, cycle: int,
                           kind: str = "sim",
                           damaged: Optional[str] = None) -> None:
        self.instant("checkpoint.written", cat="checkpoint", path=path,
                     size=size, cycle=cycle, kind=kind,
                     damaged=damaged or "")
        reg = self.registry
        reg.get("repro_checkpoint_writes_total").labels(kind).inc()
        reg.get("repro_checkpoint_bytes_total").inc(size)
        self.events.emit("checkpoint.written", path=path, size=size,
                         cycle=cycle, kind=kind, damaged=damaged)

    def checkpoint_restored(self, result: str, path: str,
                            cycle: Optional[int] = None,
                            error: Optional[str] = None) -> None:
        self.instant("checkpoint.restored", cat="checkpoint", result=result,
                     path=path, cycle=cycle, error=error or "")
        self.registry.get("repro_checkpoint_restores_total") \
            .labels(result).inc()
        self.events.emit("checkpoint.restored", result=result, path=path,
                         cycle=cycle, error=error)

    def on_device_reset(self) -> None:
        """``Soc.reset`` hook: a reset begins a new logical run.

        Span ids restart from 1, per-run histograms zero their buckets,
        and the trace timeline rebases to the current clock reading —
        so running the same workload again after a reset produces an
        identical trace (given a deterministic clock), instead of one
        offset by the first run's ids and timestamps.
        """
        self.tracer.reset_ids()
        self.tracer.rebase()
        self.registry.reset_per_run()
        self.events.emit("device.reset")

    # -- output --------------------------------------------------------------
    def write_outputs(self, trace_out: Optional[str] = None,
                      metrics_out: Optional[str] = None,
                      events_out: Optional[str] = None) -> Dict[str, str]:
        """Write any of the three export artifacts; returns written paths."""
        written: Dict[str, str] = {}
        if trace_out:
            with open(trace_out, "w") as handle:
                handle.write(self.tracer.to_chrome(indent=None))
                handle.write("\n")
            written["trace"] = trace_out
        if metrics_out:
            with open(metrics_out, "w") as handle:
                handle.write(self.registry.to_prometheus())
            written["metrics"] = metrics_out
        if events_out:
            self.events.write(events_out)
            written["events"] = events_out
        return written

    # -- installation (same pattern as FaultInjector) ------------------------
    def install(self) -> "Telemetry":
        global _active
        self._previous = _active
        _active = self
        return self

    def uninstall(self) -> None:
        global _active
        _active = self._previous
        self._previous = None

    def __enter__(self) -> "Telemetry":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


#: the process-wide telemetry slot; ``None`` means every hook site is a
#: single-attribute-check no-op
_active: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently-installed telemetry, if any."""
    return _active


@contextmanager
def telemetry(run_id: Optional[str] = None,
              clock: Optional[Callable[[], float]] = None,
              stream: Optional[TextIO] = None):
    """Install a fresh :class:`Telemetry` for the enclosed block::

        with telemetry(run_id="demo") as tel:
            report = run_campaign(jobs, workers=0)
        tel.write_outputs("trace.json", "metrics.prom", "events.jsonl")
    """
    tel = Telemetry(run_id, clock, stream)
    tel.install()
    try:
        yield tel
    finally:
        tel.uninstall()
