"""Adapters folding the existing ad-hoc stats into the metrics registry.

Each subsystem keeps its original introspection surface —
``Simulator.kernel_stats()``, ``EmulationMemory.stats()``,
``DapInterface.stats()``, ``CampaignMetrics`` — unchanged, so nothing
downstream breaks.  These functions read those shapes and re-express
them in the unified registry schema, which is what makes
``repro profile-kernel --metrics-out`` and ``repro telemetry`` emit the
same metric families from the same underlying numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from .registry import MetricsRegistry


def record_kernel_stats(reg: MetricsRegistry, stats: Dict,
                        kernel: Optional[str] = None) -> None:
    """Fold one ``Simulator.kernel_stats()`` dict into the registry."""
    label = kernel if kernel is not None else stats.get("kernel", "unknown")
    reg.gauge("repro_kernel_cycles_per_sec",
              "simulation throughput of the last recorded run",
              ("kernel",)).labels(label).set(stats.get("cycles_per_sec", 0.0))
    reg.gauge("repro_kernel_wall_seconds",
              "simulation wall clock of the last recorded run",
              ("kernel",)).labels(label).set(stats.get("wall_s", 0.0))
    ticks = reg.counter("repro_kernel_component_ticks_total",
                        "component ticks executed", ("component",))
    skipped = reg.counter("repro_kernel_component_skipped_total",
                          "component ticks skipped by quiescence scheduling",
                          ("component",))
    wall = reg.gauge("repro_kernel_component_wall_seconds",
                     "per-component tick wall clock (KernelProfiler "
                     "attached runs only)", ("component",))
    for entry in stats.get("components", ()):
        name = entry["name"]
        ticks.labels(name).inc(entry.get("ticks", 0))
        skipped.labels(name).inc(entry.get("skipped", 0))
        if "wall_s" in entry:
            wall.labels(name).set(entry["wall_s"])


def record_emem_stats(reg: MetricsRegistry, stats: Dict) -> None:
    """Fold one ``EmulationMemory.stats()`` dict into the registry."""
    reg.gauge("repro_emem_fill_ratio",
              "EMEM trace-buffer fill ratio at last snapshot") \
        .set(stats.get("fill_ratio", 0.0))
    reg.counter("repro_emem_messages_stored_total",
                "messages that reached the EMEM store path") \
        .inc(stats.get("total_stored", 0))
    dropped = reg.counter("repro_emem_dropped_total",
                          "messages lost at the EMEM, by reason",
                          ("reason",))
    for reason, key in (("wrap", "lost_oldest"), ("reject", "lost_new"),
                        ("corrupt", "corrupt_dropped"),
                        ("injected", "injected_drops")):
        dropped.labels(reason).inc(stats.get(key, 0))


def record_dap_stats(reg: MetricsRegistry, stats: Dict) -> None:
    """Fold one ``DapInterface.stats()`` dict into the registry."""
    reg.counter("repro_dap_bits_transferred_total",
                "bits moved over the DAP wire") \
        .inc(stats.get("bits_transferred", 0))
    reg.counter("repro_dap_saturated_cycles_total",
                "cycles the DAP wire spent saturated") \
        .inc(stats.get("saturated_cycles", 0))
    reg.counter("repro_dap_dropped_total",
                "messages lost on the DAP wire") \
        .inc(stats.get("dropped_messages", 0))


def record_mcds_stats(reg: MetricsRegistry, mcds) -> None:
    """Fold the MCDS per-kind message/bit totals into the registry."""
    messages = reg.counter("repro_pipeline_messages_total",
                           "trace messages generated, by message kind",
                           ("kind",))
    bits = reg.counter("repro_pipeline_bits_total",
                       "trace bits generated, by message kind", ("kind",))
    for kind, count in sorted(mcds.messages_by_kind.items()):
        messages.labels(kind).inc(count)
    for kind, count in sorted(mcds.bits_by_kind.items()):
        bits.labels(kind).inc(count)


def record_device_stats(reg: MetricsRegistry, device) -> None:
    """Snapshot one EmulationDevice's kernel + pipeline state."""
    record_kernel_stats(reg, device.soc.sim.kernel_stats())
    record_emem_stats(reg, device.emem.stats())
    record_dap_stats(reg, device.dap.stats())
    record_mcds_stats(reg, device.mcds)


def record_breaker_state(reg: MetricsRegistry, breaker) -> None:
    """Fold a :class:`~repro.resilience.CircuitBreaker` snapshot.

    Gauges only — the breaker's monotonic totals (transitions, sheds)
    are counted at the moment they happen by the service, so folding
    them here repeatedly would double-count.
    """
    from ..resilience import STATE_VALUES
    snap = breaker.snapshot()
    reg.gauge("repro_resilience_breaker_state",
              "admission circuit breaker state "
              "(0 closed, 1 half-open, 2 open)") \
        .set(STATE_VALUES[snap["state"]])
    reg.gauge("repro_resilience_breaker_failure_rate",
              "campaign failure rate over the breaker's sliding window") \
        .set(snap["failure_rate"])


def record_campaign_metrics(reg: MetricsRegistry, metrics) -> None:
    """Fold a :class:`~repro.fleet.metrics.CampaignMetrics` snapshot."""
    jobs = reg.counter("repro_fleet_jobs_total",
                       "campaign job completions", ("status", "source"))
    jobs.labels("ok", "executed").inc(metrics.executed)
    jobs.labels("ok", "cache").inc(metrics.cache_hits)
    jobs.labels("ok", "resumed").inc(metrics.resumed)
    jobs.labels("quarantined", "executed").inc(metrics.quarantined)
    reg.counter("repro_fleet_retries_total", "job retry attempts") \
        .inc(metrics.retries)
    reg.counter("repro_fleet_lost_messages_total",
                "trace messages lost across campaign payloads") \
        .inc(metrics.lost_messages)
    reg.counter("repro_fleet_trace_gaps_total",
                "trace gaps across campaign payloads") \
        .inc(metrics.trace_gaps)
    reg.counter("repro_fleet_degraded_samples_total",
                "degraded samples across campaign payloads") \
        .inc(metrics.degraded_samples)
    reg.gauge("repro_fleet_worker_utilization",
              "busy / (wall x workers) of the last campaign") \
        .set(metrics.worker_utilization)
    reg.gauge("repro_fleet_wall_seconds",
              "wall clock of the last campaign").set(metrics.wall_s)
    reg.counter("repro_sim_cycles_total",
                "simulated cycles, by kernel mode", ("kernel",)) \
        .labels("fleet").inc(metrics.sim_cycles)
    walls = reg.histogram("repro_fleet_job_wall_seconds",
                          "in-worker wall clock per executed job")
    for wall_s in metrics.job_walls:
        walls.observe(wall_s)
