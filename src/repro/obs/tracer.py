"""Span tracer with Chrome trace-event (``chrome://tracing``) export.

Records *complete* spans (phase ``X``: a name, a start timestamp, a
duration) and *instant* events (phase ``i``: a point on the timeline —
a fault injected, a gap recorded, a watchdog trip), grouped into
process/thread lanes the viewer renders as rows.  The export is the
Chrome Trace Event JSON-array format, which both ``chrome://tracing``
and Perfetto load directly.

Timestamps come from a pluggable ``clock`` (default
``time.perf_counter``) and are reported in microseconds relative to the
tracer's epoch.  Tests inject a deterministic fake clock, which is what
makes the "repeated runs in one process produce identical traces"
guarantee checkable bit-for-bit.

The tracer never samples the clock, allocates, or appends unless a
recording call is made — the zero-cost-when-disabled property lives one
level up, in :mod:`repro.obs.runtime`'s module-slot guard.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

#: default logical lanes: pid 0 is the driving process (orchestrator or
#: CLI); fleet workers appear under their real OS pid
MAIN_PID = 0
MAIN_TID = 0


class SpanTracer:
    """Bounded in-memory trace-event buffer with Chrome JSON export."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_events: int = 200_000) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self.max_events = max_events
        self.events: List[Dict] = []
        self.dropped_events = 0
        #: called with the drop count whenever the bounded buffer rejects
        #: an event (the runtime wires it to repro_obs_spans_dropped_total)
        self.on_drop: Optional[Callable[[int], None]] = None
        self._overflow_marked = False
        self._sink = None
        self._next_span_id = 1
        self._process_names: Dict[int, str] = {MAIN_PID: "repro"}
        self._thread_names: Dict[Tuple[int, int], str] = {
            (MAIN_PID, MAIN_TID): "main"}

    # -- clock ---------------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since the tracer epoch (monotonic given the clock)."""
        return (self._clock() - self._epoch) * 1e6

    def rebase(self) -> None:
        """Restart the timeline at the current clock reading."""
        self._epoch = self._clock()

    # -- identity ------------------------------------------------------------
    def next_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def reset_ids(self) -> None:
        """Restart the span-id sequence (a device reset begins a new run)."""
        self._next_span_id = 1

    def set_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name
        if self._sink is not None:
            self._sink.set_process(pid, name)

    def set_thread(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name
        if self._sink is not None:
            self._sink.set_thread(pid, tid, name)

    # -- streaming sink ------------------------------------------------------
    def attach_sink(self, sink):
        """Forward every recorded event to ``sink`` (a TraceWriter-shaped
        object with ``append``/``set_process``/``set_thread``).

        The sink sees the full stream — including events the bounded
        in-memory buffer drops — which is how a trace store captures a
        campaign of any length while ``events`` stays bounded.  Lane
        names registered before attachment are replayed so the sink's
        metadata matches the buffer's.
        """
        if self._sink is not None:
            raise RuntimeError("a trace sink is already attached")
        for pid, name in self._process_names.items():
            sink.set_process(pid, name)
        for (pid, tid), name in self._thread_names.items():
            sink.set_thread(pid, tid, name)
        self._sink = sink
        return sink

    def detach_sink(self):
        sink, self._sink = self._sink, None
        return sink

    # -- recording -----------------------------------------------------------
    def _append(self, event: Dict) -> None:
        if self._sink is not None:
            self._sink.append(event)
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            if self.on_drop is not None:
                self.on_drop(1)
            if not self._overflow_marked:
                # one-shot overflow marker in the *buffer* itself, so an
                # exported bounded trace says it was truncated instead of
                # silently ending; placed at the first dropped event's
                # timestamp (deterministic under a fake clock)
                self._overflow_marked = True
                self.events.append({
                    "name": "trace.buffer_full", "cat": "obs", "ph": "i",
                    "s": "t", "ts": event["ts"], "pid": MAIN_PID,
                    "tid": MAIN_TID,
                    "args": {"max_events": self.max_events}})
            return
        self.events.append(event)

    def complete(self, name: str, ts_us: float, dur_us: float,
                 cat: str = "repro", pid: int = MAIN_PID,
                 tid: int = MAIN_TID, args: Optional[Dict] = None) -> None:
        """Record a finished span with explicit timing (phase ``X``).

        Used both by the live :meth:`span` context manager and to
        retro-emit spans whose timing was measured elsewhere — e.g. a
        fleet job's in-worker wall clock reported back to the
        orchestrator.
        """
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": round(ts_us, 3), "dur": round(max(0.0, dur_us), 3),
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._append(event)

    @contextmanager
    def span(self, name: str, cat: str = "repro", pid: int = MAIN_PID,
             tid: int = MAIN_TID, args: Optional[Dict] = None):
        """Record the enclosed block as a complete span."""
        span_args = dict(args) if args else {}
        span_args.setdefault("span_id", self.next_span_id())
        t0 = self.now_us()
        try:
            yield span_args
        finally:
            self.complete(name, t0, self.now_us() - t0, cat, pid, tid,
                          span_args)

    def instant(self, name: str, cat: str = "repro", pid: int = MAIN_PID,
                tid: int = MAIN_TID, args: Optional[Dict] = None,
                ts_us: Optional[float] = None) -> None:
        """Record a point event (phase ``i``, thread scope)."""
        event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                 "ts": round(self.now_us() if ts_us is None else ts_us, 3),
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._append(event)

    # -- export --------------------------------------------------------------
    def _metadata_events(self) -> List[Dict]:
        used = {(e["pid"], e["tid"]) for e in self.events}
        meta: List[Dict] = []
        for pid in sorted({pid for pid, _ in used}):
            name = self._process_names.get(pid, f"process {pid}")
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
        for pid, tid in sorted(used):
            name = self._thread_names.get((pid, tid), f"thread {tid}")
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})
        return meta

    def trace_events(self) -> List[Dict]:
        """Metadata first, then all recorded events sorted by timestamp."""
        return self._metadata_events() + sorted(
            self.events, key=lambda e: (e["ts"], e["pid"], e["tid"]))

    def to_chrome(self, indent: Optional[int] = None) -> str:
        """The Chrome/Perfetto JSON-object form."""
        body = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }
        return json.dumps(body, indent=indent, sort_keys=True)

    def drain(self) -> List[Dict]:
        """Return the recorded events and clear the buffer."""
        events, self.events = self.events, []
        return events

    def __len__(self) -> int:
        return len(self.events)
