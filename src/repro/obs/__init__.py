"""repro.obs — unified telemetry: metrics, span traces, event log.

The observability layer the paper's own methodology implies: always-on
counters and non-intrusive timeline capture for the reproduction itself.
Opt-in (install a :class:`Telemetry`, usually via :func:`telemetry`) and
near-zero-cost when disabled — every hook site guards on the module slot
:data:`repro.obs.runtime._active`, the same pattern as
:func:`repro.faults.injector.fault_point`.

    with telemetry(run_id="demo") as tel:
        report = run_campaign(jobs, workers=0)
    tel.write_outputs("trace.json", "metrics.prom", "events.jsonl")

``trace.json`` loads in ``chrome://tracing`` / Perfetto; ``metrics.prom``
is Prometheus text exposition format; ``events.jsonl`` is one structured
record per line, all correlated by ``run_id``.  See docs/observability.md.
"""

from .events import EventLog
from .registry import (DEFAULT_BUCKETS, MetricFamily, MetricsRegistry,
                       escape_label_value)
from .runtime import Telemetry, active, telemetry
from .tracer import SpanTracer
from . import bridge

__all__ = [
    "EventLog",
    "MetricFamily",
    "MetricsRegistry",
    "SpanTracer",
    "Telemetry",
    "active",
    "bridge",
    "telemetry",
    "escape_label_value",
    "DEFAULT_BUCKETS",
]
