"""Metrics registry: labelled counters, gauges, and histograms.

The paper's methodology is built on *rate counters* — cheap, always-on
hardware counters sampled instead of invasive software probes.  The
reproduction applies the same discipline to itself: every subsystem's
ad-hoc stats dict (``Simulator.kernel_stats()``, ``EmulationMemory.
stats()``, ``CampaignMetrics``) can be folded into one registry with a
common naming scheme and two machine-readable exports:

* **JSON** — a stable dict form for archival next to campaign artifacts;
* **Prometheus text exposition format** — ``# HELP``/``# TYPE`` comments,
  ``name{label="value"} 1234`` samples, standard label escaping — so the
  file drops straight into promtool / a Pushgateway / Grafana.

The registry is plain bookkeeping: no clocks, no randomness, no global
state.  Determinism of the simulation is untouched by reading from or
writing to it.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram bucket bounds (seconds-flavoured, like Prometheus')
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (value.replace("\\", "\\\\")
                 .replace("\"", "\\\"")
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_suffix(labelnames: Sequence[str],
                  labelvalues: Sequence[str],
                  extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [(name, str(value))
             for name, value in zip(labelnames, labelvalues)]
    pairs.extend((name, str(value)) for name, value in extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Child:
    """One labelled time series of a family."""

    __slots__ = ("labelvalues",)

    def __init__(self, labelvalues: Tuple[str, ...]) -> None:
        self.labelvalues = labelvalues


class CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labelvalues: Tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labelvalues: Tuple[str, ...]) -> None:
        super().__init__(labelvalues)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, labelvalues: Tuple[str, ...],
                 buckets: Tuple[float, ...]) -> None:
        super().__init__(labelvalues)
        self.buckets = buckets
        self.counts = [0] * len(buckets)   # non-cumulative per bound
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break

    def cumulative(self) -> List[int]:
        """Counts per bucket as Prometheus wants them: cumulative."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def reset(self) -> None:
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0


class MetricFamily:
    """One named metric with a fixed label schema and many children."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 buckets: Tuple[float, ...] = (),
                 per_run: bool = False) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        #: per-run families are cleared by ``MetricsRegistry.reset_per_run``
        #: (wired to ``Soc.reset`` so repeated runs start from zero)
        self.per_run = per_run
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, *values, **kv) -> _Child:
        if kv:
            if values:
                raise ConfigurationError(
                    "pass label values positionally or by name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ConfigurationError(
                    f"{self.name}: missing label {exc}")
            if len(kv) != len(self.labelnames):
                raise ConfigurationError(
                    f"{self.name}: expected labels {self.labelnames}, "
                    f"got {sorted(kv)}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values, got {len(values)}")
        child = self._children.get(values)
        if child is None:
            if self.kind == COUNTER:
                child = CounterChild(values)
            elif self.kind == GAUGE:
                child = GaugeChild(values)
            else:
                child = HistogramChild(values, self.buckets)
            self._children[values] = child
        return child

    # convenience passthroughs for label-less families
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def children(self) -> List[_Child]:
        return [self._children[key] for key in sorted(self._children)]

    def value(self, *values, **kv) -> float:
        """Current value of one child (tests/diagnostics)."""
        child = self.labels(*values, **kv)
        if isinstance(child, HistogramChild):
            return child.sum
        return child.value

    def clear(self) -> None:
        for child in self._children.values():
            if isinstance(child, HistogramChild):
                child.reset()
            else:
                child.value = 0.0


class MetricsRegistry:
    """Ordered collection of metric families with dual export."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- registration --------------------------------------------------------
    def _register(self, name: str, kind: str, help_text: str,
                  labelnames: Iterable[str],
                  buckets: Tuple[float, ...] = (),
                  per_run: bool = False) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or \
                    existing.labelnames != tuple(labelnames):
                raise ConfigurationError(
                    f"metric {name!r} re-registered with a different "
                    f"type or label schema")
            return existing
        family = MetricFamily(name, kind, help_text, tuple(labelnames),
                              buckets, per_run)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._register(name, COUNTER, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> MetricFamily:
        return self._register(name, GAUGE, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  per_run: bool = False) -> MetricFamily:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        return self._register(name, HISTOGRAM, help_text, labelnames,
                              bounds + (math.inf,), per_run)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __iter__(self):
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        """Zero every family (registrations survive)."""
        for family in self._families.values():
            family.clear()

    def reset_per_run(self) -> None:
        """Zero only families registered with ``per_run=True``."""
        for family in self._families.values():
            if family.per_run:
                family.clear()

    # -- export --------------------------------------------------------------
    def to_json(self) -> Dict:
        """Stable dict form (family name -> type/help/series)."""
        body: Dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for child in family.children:
                labels = dict(zip(family.labelnames, child.labelvalues))
                if isinstance(child, HistogramChild):
                    series.append({
                        "labels": labels,
                        "buckets": [
                            ["+Inf" if b == math.inf else b, c]
                            for b, c in zip(child.buckets,
                                            child.cumulative())],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            body[name] = {"type": family.kind, "help": family.help,
                          "series": series}
        return body

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for child in family.children:
                suffix = _label_suffix(family.labelnames, child.labelvalues)
                if isinstance(child, HistogramChild):
                    for bound, count in zip(child.buckets,
                                            child.cumulative()):
                        le = _label_suffix(
                            family.labelnames, child.labelvalues,
                            extra=(("le", _format_value(bound)),))
                        lines.append(f"{name}_bucket{le} {count}")
                    lines.append(
                        f"{name}_sum{suffix} {_format_value(child.sum)}")
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    lines.append(
                        f"{name}{suffix} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"
