"""Unified exception taxonomy for the reproduction.

Every error the model raises deliberately descends from :class:`ReproError`
so callers (the fleet worker above all) can distinguish *model* errors from
arbitrary crashes.  Each class additionally inherits the ad-hoc built-in it
historically replaced (``ValueError`` for configuration mistakes,
``RuntimeError`` for runtime limits), so existing ``except ValueError`` /
``pytest.raises(RuntimeError)`` call sites keep working unchanged.

The ``retryable`` attribute is the contract with the fleet's retry logic:
a deterministic model error (bad configuration, a hard cycle deadline, an
exhausted hardware resource) can never succeed on a retry and is
quarantined immediately, while transient conditions (injected faults,
wall-clock watchdog expiry under host load) keep following the normal
retry/backoff path.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all deliberate model errors.

    ``retryable`` is a class default; instances may override it (see
    :class:`WatchdogExpired`).  Deterministic by default: re-running the
    same spec reproduces the same error.
    """

    retryable = False


class ConfigurationError(ReproError, ValueError):
    """A spec, parameter, or wiring mistake — deterministic, never retried."""


class FormatError(ReproError, ValueError):
    """An artifact (JSON/CSV export, plan file) failed to parse."""


class ResourceExhaustedError(ReproError, RuntimeError):
    """A finite hardware resource (counter structures, ...) is all in use."""


class TraceOverrunError(ReproError, RuntimeError):
    """The trace path lost messages and the caller asked for strictness."""


class BandwidthExceededError(ReproError, RuntimeError):
    """The tool interface cannot sustain the requested measurement."""


class CounterSaturationError(ReproError, RuntimeError):
    """A counter exceeded its width in ``raise`` overflow mode."""


class KernelEquivalenceError(ReproError, RuntimeError):
    """A strict-equivalence run caught an unsound quiescence claim.

    Raised when a component that promised ``idle_until`` quiescence changed
    observable state (oracle totals or trace bytes) in an audited tick —
    a kernel-scheduler bug, deterministic by construction.
    """


class WatchdogExpired(ReproError, RuntimeError):
    """A bounded run exceeded its cycle or wall-clock deadline.

    A cycle deadline is deterministic (``retryable=False``); a wall-clock
    deadline may just mean a loaded host, so those instances are built
    with ``retryable=True``.
    """

    def __init__(self, message: str, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


class FaultInjected(ReproError, RuntimeError):
    """An injected (drill) fault — transient by construction."""

    retryable = True


class CampaignPreempted(ReproError, RuntimeError):
    """A cooperative yield request stopped a campaign at a safe boundary.

    Raised from inside a job when the orchestrator's ``should_yield``
    callback fires at a checkpoint boundary (or between jobs).  Not a
    failure: everything completed so far is already durable in the
    campaign store, the in-flight job's checkpoint stays on disk, and a
    later ``resume=True`` run continues byte-identically.  ``retryable``
    because re-running the same spec (once the preemption pressure is
    gone) always succeeds.
    """

    retryable = True


class QuotaExceeded(ReproError, RuntimeError):
    """A tenant exceeded an admission quota (rate, queue depth, tokens).

    Carries ``retry_after_s`` so a service front-end can translate it
    into a ``Retry-After`` header; transient by construction.  Strictly
    a *tenant* condition (HTTP 429) — when the *service* cannot accept
    work, raise :class:`ServiceUnavailable` instead.
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceUnavailable(ReproError, RuntimeError):
    """The service as a whole cannot accept work right now (HTTP 503).

    Raised for conditions that are nobody's quota: a draining service, a
    tripped circuit breaker shedding admissions during a failure storm.
    Transient by construction — the client should retry after
    ``retry_after_s``, unchanged.
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(ReproError, RuntimeError):
    """A campaign outlived its client-supplied wall-clock deadline.

    Deterministically terminal for the *submission* (``retryable=False``):
    re-running the same stale request cannot un-expire it — the client
    must submit afresh with a new deadline.  Queued work past its
    deadline is expired instead of silently run; running work stops at
    the next job or checkpoint boundary.
    """


class TraceStoreError(ReproError, RuntimeError):
    """A trace-store segment or summary sidecar was rejected.

    Raised for a missing/garbled footer, a column block whose CRC does
    not match, or a sidecar that fails validation.  Deterministic
    (``retryable=False``): the artifact on disk is what it is — the
    caller re-ingests from the source trace rather than re-reading a
    damaged segment and hoping.
    """


class ClusterError(ReproError, RuntimeError):
    """A multi-node coordination artifact was rejected or unusable.

    Raised for a damaged cluster manifest, a batch claim file that fails
    its CRC, or a plan that no longer builds.  Deterministic
    (``retryable=False``): the shared directory holds what it holds — an
    operator has to repair or resubmit, retrying cannot.
    """


class StaleLeaseError(ClusterError):
    """A node tried to act on a lease it no longer holds.

    The fencing backbone of ``repro.cluster``: a node that was paused,
    partitioned, or just slow past its lease TTL may revive and try to
    commit work for a batch that has since migrated to another node.
    The commit path re-reads the lease *inside* the result store's
    inter-process lock and raises this instead of appending — a stale
    holder can never double-commit.  ``retryable=False`` for the *lease*:
    the node must abandon the batch (the new holder owns it now), not
    retry the commit.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file was rejected (corrupt, truncated, mismatched).

    Always ``retryable``: the simulation itself is fine — the caller falls
    back to an earlier checkpoint (or cycle 0) and re-runs, losing cycles
    rather than the job.  Restore never proceeds on a bad file: a silent
    partially-restored device would break the byte-identity guarantee the
    whole checkpoint subsystem exists to provide.
    """

    retryable = True
