"""Failure-rate circuit breaker with adaptive shedding.

The always-on service must survive *storms* — a chaos plan gone feral, a
bad deploy whose every campaign crashes its workers, a host so loaded
that wall-clock watchdogs fire everywhere.  Retrying each failure
individually (the orchestrator's job) makes a storm worse at the
admission layer: new submissions pile onto a fleet that cannot finish
anything.  The breaker watches the recent outcome rate and, when
failures dominate, sheds new admissions at the front door with
``503 + Retry-After`` until probe traffic proves the fleet healthy.

Classic three-state machine on a sliding window, every clock read
injectable (the quota-bucket discipline):

* **closed** — normal operation; outcomes are recorded into the window;
  when at least ``min_samples`` outcomes exist and the failure fraction
  reaches ``failure_threshold``, the breaker trips open.
* **open** — :meth:`allow` refuses everything until ``cooldown_s`` has
  elapsed.  The cooldown is *adaptive*: each consecutive re-trip doubles
  it (full recovery resets it), capped at ``max_cooldown_s`` — a
  persistent storm backs the service off exponentially instead of
  letting it flap.
* **half-open** — up to ``half_open_probes`` admissions are let through
  as probes.  ``half_open_probes`` successes close the breaker and clear
  the window; any failure re-trips it immediately.

The breaker never raises — it answers :meth:`allow`; translating a
refusal into :class:`~repro.errors.ServiceUnavailable` is the service's
job, keeping policy (here) and error surface (there) separate.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: numeric encoding for the state gauge (monitoring dashboards)
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Sliding-window failure-rate breaker on an injectable clock."""

    def __init__(self, window_s: float = 30.0,
                 min_samples: int = 5,
                 failure_threshold: float = 0.5,
                 cooldown_s: float = 5.0,
                 max_cooldown_s: float = 300.0,
                 half_open_probes: int = 2,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[str, str], None]] = None) -> None:
        if window_s <= 0:
            raise ConfigurationError("breaker window_s must be > 0")
        if min_samples < 1:
            raise ConfigurationError("breaker min_samples must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError(
                "breaker failure_threshold must be in (0, 1]")
        if cooldown_s <= 0 or max_cooldown_s < cooldown_s:
            raise ConfigurationError(
                "breaker needs 0 < cooldown_s <= max_cooldown_s")
        if half_open_probes < 1:
            raise ConfigurationError(
                "breaker half_open_probes must be >= 1")
        self.window_s = float(window_s)
        self.min_samples = int(min_samples)
        self.failure_threshold = float(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.max_cooldown_s = float(max_cooldown_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._on_transition = on_transition
        self._state = CLOSED
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._opened_at = 0.0
        self._current_cooldown = self.cooldown_s
        self._consecutive_trips = 0
        self._probes_allowed = 0
        self._probe_successes = 0
        self.shed_total = 0
        self.transitions = 0

    # -- state machine -------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state:
            self.transitions += 1
            if self._on_transition is not None:
                self._on_transition(old, new_state)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def _trip(self, now: float) -> None:
        self._current_cooldown = min(
            self.max_cooldown_s,
            self.cooldown_s * (2 ** self._consecutive_trips))
        self._consecutive_trips += 1
        self._opened_at = now
        self._probes_allowed = 0
        self._probe_successes = 0
        self._transition(OPEN)

    def _maybe_half_open(self, now: float) -> None:
        if self._state == OPEN and \
                now - self._opened_at >= self._current_cooldown:
            self._probes_allowed = 0
            self._probe_successes = 0
            self._transition(HALF_OPEN)

    # -- recording outcomes --------------------------------------------------
    def record_success(self) -> None:
        now = self._clock()
        self._maybe_half_open(now)
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                # proven healthy: full reset, adaptive cooldown cleared
                self._outcomes.clear()
                self._consecutive_trips = 0
                self._current_cooldown = self.cooldown_s
                self._transition(CLOSED)
            return
        self._outcomes.append((now, True))
        self._prune(now)

    def record_failure(self) -> None:
        now = self._clock()
        self._maybe_half_open(now)
        if self._state == HALF_OPEN:
            # a failed probe is proof the storm is still on
            self._trip(now)
            return
        self._outcomes.append((now, False))
        self._prune(now)
        if self._state == CLOSED:
            total = len(self._outcomes)
            failures = sum(1 for _, ok in self._outcomes if not ok)
            if total >= self.min_samples and \
                    failures / total >= self.failure_threshold:
                self._trip(now)

    # -- admission decisions -------------------------------------------------
    def allow(self) -> bool:
        """May one admission proceed right now?

        In ``half_open`` only ``half_open_probes`` calls return True per
        probe round; the rest are shed like ``open``.  A refusal counts
        into ``shed_total``.
        """
        now = self._clock()
        self._maybe_half_open(now)
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and \
                self._probes_allowed < self.half_open_probes:
            self._probes_allowed += 1
            return True
        self.shed_total += 1
        return False

    def retry_after_s(self) -> float:
        """Suggested client back-off (the 503 ``Retry-After`` value)."""
        now = self._clock()
        if self._state == OPEN:
            return max(1.0, self._opened_at + self._current_cooldown - now)
        return 1.0

    # -- introspection -------------------------------------------------------
    @property
    def state(self) -> str:
        self._maybe_half_open(self._clock())
        return self._state

    def failure_rate(self) -> float:
        self._prune(self._clock())
        if not self._outcomes:
            return 0.0
        return sum(1 for _, ok in self._outcomes if not ok) \
            / len(self._outcomes)

    def snapshot(self) -> Dict:
        """Status-endpoint view of the breaker."""
        return {
            "state": self.state,
            "failure_rate": round(self.failure_rate(), 4),
            "window_samples": len(self._outcomes),
            "consecutive_trips": self._consecutive_trips,
            "cooldown_s": self._current_cooldown,
            "shed_total": self.shed_total,
            "transitions": self.transitions,
        }
