"""repro.resilience — the service's survival layer.

PR5 made simulation state durable (checkpoints); PR6 made the fleet a
service (``repro.serve``).  This package closes the loop between them:
the *service's own* state — what was admitted, what was running, which
client retry is a duplicate — becomes durable too, and the service
learns to protect itself under failure storms.

::

    journal.py   write-ahead admission journal    (CRC-guarded JSONL)
    breaker.py   failure-rate circuit breaker     (closed/open/half-open)

Recovery itself lives in :meth:`repro.serve.service.CampaignService.
start`, which replays the journal, rebuilds the queue and id sequence,
and re-enqueues interrupted campaigns to resume from their checkpoints
byte-identically.  Deadline propagation rides the ordinary campaign
path: ``CampaignSpec.deadline_s`` → orchestrator → worker boundary
checks.  See ``docs/resilience.md``.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, STATE_VALUES, CircuitBreaker
from .journal import (AdmissionJournal, JournalState, JournaledCampaign,
                      compaction_records, fold_journal)

__all__ = [
    "AdmissionJournal",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "JournalState",
    "JournaledCampaign",
    "OPEN",
    "STATE_VALUES",
    "compaction_records",
    "fold_journal",
]
