"""Write-ahead admission journal: the service's durable memory.

Every admission decision and campaign state transition is appended here
*before* it takes effect in memory, so a crashed or redeployed
:class:`~repro.serve.service.CampaignService` can rebuild its queue,
its tenant accounting, and its id sequence by replaying the file —
closing the loop with the per-job checkpoints (docs/checkpoint.md) that
were already surviving crashes but sitting on disk unclaimed.

The format is the :mod:`repro.fleet.store` line format exactly: one
JSON object per line, each carrying a ``_crc32`` over the canonical
serialisation of the rest (:func:`~repro.fleet.store.seal_record`), so
a torn tail from a SIGKILL mid-append and a bit-flipped line from a bad
disk are both detected on replay.  Appends are flushed and fsynced
before returning — the write-ahead property is only real if the line is
durable before the in-memory state machine moves.

Record kinds::

    {"op": "admit", "campaign_id": "cmp-000001", "tenant": "t1",
     "priority": 0, "spec": {...}, "idempotency_key": "...", ...}
    {"op": "state", "campaign_id": "cmp-000001", "state": "running",
     "attempts": 1}

:func:`fold_journal` reduces a replayed record list to the surviving
per-campaign truth (latest state wins), the idempotency-key map, and
the id-sequence high-water mark.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fleet.store import seal_record, unseal_record

JOURNAL_NAME = "journal.jsonl"

#: campaign id shape the sequence watermark is recovered from
_CAMPAIGN_ID = re.compile(r"^cmp-(\d+)$")


class AdmissionJournal:
    """Append-only, CRC-guarded JSONL journal with atomic compaction.

    ``name`` selects the file inside ``directory`` — the default is the
    service admission journal; ``repro.cluster`` reuses the exact same
    machinery (seal/unseal lines, torn-tail-tolerant replay, atomic
    compaction) for its lease/claim event log under ``cluster.jsonl``.
    """

    def __init__(self, directory: str, name: str = JOURNAL_NAME) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, name)

    def append(self, op: str, **fields) -> Dict:
        """Durably append one journal record; returns the record."""
        record = {"op": op}
        record.update(fields)
        with open(self.path, "a") as handle:
            handle.write(seal_record(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def admit(self, campaign_id: str, tenant: str, priority: int,
              spec: Dict, idempotency_key: Optional[str] = None,
              deadline_at: Optional[float] = None) -> Dict:
        return self.append("admit", campaign_id=campaign_id, tenant=tenant,
                           priority=priority, spec=spec,
                           idempotency_key=idempotency_key,
                           deadline_at=deadline_at)

    def state(self, campaign_id: str, state: str, attempts: int = 0,
              **fields) -> Dict:
        return self.append("state", campaign_id=campaign_id, state=state,
                           attempts=attempts, **fields)

    def replay(self) -> List[Dict]:
        """Read back every intact record, in append order.

        A damaged *complete* line (CRC or parse failure) is skipped with
        a warning — the records after it are still recovered.  An
        unterminated final fragment is the torn tail of the append the
        crash interrupted; its state transition never took effect, so
        skipping it is the correct replay semantics, not data loss.
        """
        records: List[Dict] = []
        try:
            with open(self.path, "r") as handle:
                content = handle.read()
        except FileNotFoundError:
            return records
        complete, sep, partial = content.rpartition("\n")
        if partial.strip():
            warnings.warn(
                f"admission journal {self.path}: ignoring a torn tail "
                f"line ({len(partial)} bytes) from an interrupted append",
                RuntimeWarning, stacklevel=2)
        if not sep:
            return records
        for line in complete.split("\n"):
            if not line.strip():
                continue
            try:
                records.append(unseal_record(line))
            except (json.JSONDecodeError, ValueError) as exc:
                warnings.warn(
                    f"admission journal {self.path}: skipping a damaged "
                    f"record ({exc})", RuntimeWarning, stacklevel=2)
        return records

    def rewrite(self, records: List[Dict]) -> None:
        """Atomically replace the journal (compaction after recovery)."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            for record in records:
                handle.write(seal_record(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


@dataclass
class JournaledCampaign:
    """One campaign's folded journal truth."""

    campaign_id: str
    tenant: str
    priority: int
    spec: Dict
    idempotency_key: Optional[str] = None
    deadline_at: Optional[float] = None
    state: str = "queued"
    attempts: int = 0
    order: int = 0                 # admission order (replay position)


@dataclass
class JournalState:
    """The reduction of a full journal replay."""

    campaigns: Dict[str, JournaledCampaign] = field(default_factory=dict)
    #: ``(tenant, key) -> campaign_id`` for idempotent re-submission
    idempotency: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: highest ``cmp-NNNNNN`` sequence number ever admitted
    max_seq: int = 0


def fold_journal(records: List[Dict]) -> JournalState:
    """Reduce replayed records to per-campaign state (latest wins).

    State transitions for campaigns with no surviving ``admit`` record
    (a damaged line) are dropped — a campaign the journal cannot
    re-describe cannot be re-queued, only its directory remains for
    manual inspection.
    """
    state = JournalState()
    for order, record in enumerate(records):
        campaign_id = record.get("campaign_id")
        if not campaign_id:
            continue
        if record.get("op") == "admit":
            entry = JournaledCampaign(
                campaign_id=campaign_id,
                tenant=record.get("tenant", "anonymous"),
                priority=int(record.get("priority", 0)),
                spec=dict(record.get("spec") or {}),
                idempotency_key=record.get("idempotency_key"),
                deadline_at=record.get("deadline_at"),
                order=order)
            state.campaigns[campaign_id] = entry
            if entry.idempotency_key:
                state.idempotency[(entry.tenant, entry.idempotency_key)] \
                    = campaign_id
            match = _CAMPAIGN_ID.match(campaign_id)
            if match:
                state.max_seq = max(state.max_seq, int(match.group(1)))
        elif record.get("op") == "state":
            entry = state.campaigns.get(campaign_id)
            if entry is None:
                continue
            entry.state = record.get("state", entry.state)
            entry.attempts = int(record.get("attempts", entry.attempts))
    return state


def compaction_records(state: JournalState) -> List[Dict]:
    """The minimal record list that folds back to ``state``.

    One ``admit`` per campaign (admission order preserved) plus one
    ``state`` per campaign that has moved past its initial state —
    bounding journal growth across restarts to O(campaigns), not
    O(transitions).
    """
    records: List[Dict] = []
    ordered = sorted(state.campaigns.values(), key=lambda e: e.order)
    for entry in ordered:
        records.append({
            "op": "admit", "campaign_id": entry.campaign_id,
            "tenant": entry.tenant, "priority": entry.priority,
            "spec": entry.spec, "idempotency_key": entry.idempotency_key,
            "deadline_at": entry.deadline_at,
        })
    for entry in ordered:
        if entry.state != "queued" or entry.attempts:
            records.append({
                "op": "state", "campaign_id": entry.campaign_id,
                "state": entry.state, "attempts": entry.attempts,
            })
    return records
