"""Checkpoint file format: CRC-guarded, schema-versioned, atomic.

A checkpoint is one JSON document::

    {"format": "repro-checkpoint",
     "schema": 1,                      # file-format revision
     "version": "0.1.0",               # repro package that wrote it
     "crc32": 3735928559,              # over canonical {"body","meta"}
     "meta": {...},                    # cycle, kind, job digest, ...
     "body": {...}}                    # tagged-JSON simulation state

The CRC covers the canonical (sorted, whitespace-free) serialisation of
``{"body": ..., "meta": ...}``, so any flipped bit, truncated tail, or
hand-edited field is detected before a single value reaches a component's
``restore_state``.  Every rejection raises
:class:`~repro.errors.CheckpointError` — retryable, because the caller's
correct reaction is to fall back to an older checkpoint or to cycle 0.

Writes are crash-safe: the document goes to a temp file which is fsynced
and then :func:`os.replace`'d over the target, after rotating the
previous file to ``<path>.prev`` — a kill mid-write can never destroy the
last good checkpoint.  The ``checkpoint.corrupt`` / ``checkpoint.truncated``
fault sites (see :mod:`repro.faults`) deliberately damage the rendered
document *before* it hits the disk, exercising exactly the rejection path
a real torn write would take.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..errors import CheckpointError
from ..obs import runtime as _obs
from .codec import decode_value, encode_value

#: bump on any incompatible change to the checkpoint document layout
SCHEMA_VERSION = 1

MAGIC = "repro-checkpoint"

#: suffix of the rotated previous checkpoint kept as a fallback
PREV_SUFFIX = ".prev"


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def render_checkpoint(body: Dict, meta: Optional[Dict] = None) -> str:
    """Serialise ``body`` (+ ``meta``) into the checkpoint document text."""
    inner = {"body": encode_value(body), "meta": dict(meta or {}),
             "version": __version__}
    canonical = _canonical(inner)
    document = {
        "format": MAGIC,
        "schema": SCHEMA_VERSION,
        "crc32": zlib.crc32(canonical.encode("utf-8")),
    }
    document.update(inner)
    return json.dumps(document, sort_keys=True)


def parse_checkpoint(text: str, source: str = "<memory>"
                     ) -> Tuple[Dict, Dict]:
    """Validate a checkpoint document; returns ``(body, meta)``.

    Raises :class:`CheckpointError` on anything short of a fully intact,
    schema-compatible, checksum-clean document.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {source} is not valid JSON (truncated?): {exc}")
    if not isinstance(document, dict) or document.get("format") != MAGIC:
        raise CheckpointError(
            f"checkpoint {source} is not a {MAGIC} document")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {source} has schema {schema!r}; this build "
            f"reads schema {SCHEMA_VERSION}")
    if "body" not in document or "crc32" not in document:
        raise CheckpointError(f"checkpoint {source} is missing fields")
    # the CRC covers everything except itself and the two fields whose
    # exact values are checked above — flipping any other character,
    # including the informational version string, is detected
    inner = {"body": document["body"], "meta": document.get("meta", {}),
             "version": document.get("version")}
    crc = zlib.crc32(_canonical(inner).encode("utf-8"))
    if crc != document["crc32"]:
        raise CheckpointError(
            f"checkpoint {source} failed its CRC check "
            f"(stored {document['crc32']}, computed {crc}) — corrupt")
    return decode_value(inner["body"]), inner["meta"]


def _fault_damage(text: str) -> Tuple[str, Optional[str]]:
    """Apply any injected checkpoint corruption; returns (text, site)."""
    from ..faults import injector as _inj
    if _inj._active is None:
        return text, None
    action = _inj.fault_point("checkpoint.corrupt", size=len(text))
    if action is not None:
        # flip a digit inside the CRC-covered region so the checksum
        # catches it; position is deterministic for a given document
        mid = len(text) // 2
        damaged = text[:mid] + ("0" if text[mid] != "0" else "1") \
            + text[mid + 1:]
        return damaged, "checkpoint.corrupt"
    action = _inj.fault_point("checkpoint.truncated", size=len(text))
    if action is not None:
        return text[:len(text) // 2], "checkpoint.truncated"
    return text, None


def save_checkpoint(path: str, body: Dict,
                    meta: Optional[Dict] = None) -> str:
    """Atomically write a checkpoint file; returns the path written.

    The existing file (if any) is rotated to ``<path>.prev`` first, so
    the caller always has one older intact checkpoint to fall back to if
    this one turns out damaged.
    """
    text = render_checkpoint(body, meta)
    text, damaged_by = _fault_damage(text)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    if os.path.exists(path):
        os.replace(path, path + PREV_SUFFIX)
    os.replace(tmp, path)
    tel = _obs._active
    if tel is not None:
        tel.checkpoint_written(path, len(text) + 1,
                              (meta or {}).get("cycle", 0),
                              kind=(meta or {}).get("kind", "sim"),
                              damaged=damaged_by)
    return path


def load_checkpoint(path: str) -> Tuple[Dict, Dict]:
    """Read and validate one checkpoint file; returns ``(body, meta)``.

    Raises :class:`CheckpointError` for a missing, truncated, corrupt,
    or schema-incompatible file.  Use :func:`load_latest_checkpoint` to
    get the fallback-to-previous behaviour.
    """
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")
    return parse_checkpoint(text, source=path)


def load_latest_checkpoint(path: str) -> Optional[Tuple[Dict, Dict, str]]:
    """Load ``path``, falling back to ``<path>.prev`` if it is rejected.

    Returns ``(body, meta, used_path)`` or ``None`` when no usable
    checkpoint exists — never raises for corruption: each rejected file
    is reported through telemetry and skipped, which implements the
    "previous checkpoint or cycle 0" fallback contract.
    """
    tel = _obs._active
    for candidate in (path, path + PREV_SUFFIX):
        if not os.path.exists(candidate):
            continue
        try:
            body, meta = load_checkpoint(candidate)
        except CheckpointError as exc:
            if tel is not None:
                tel.checkpoint_restored("rejected", candidate,
                                        error=str(exc))
            continue
        return body, meta, candidate
    return None


def checkpoint_info(path: str) -> Dict[str, Any]:
    """Summarise one checkpoint file for CLI inspection."""
    body, meta = load_checkpoint(path)
    return {
        "path": path,
        "schema": SCHEMA_VERSION,
        "meta": meta,
        "components": [entry["name"]
                       for entry in body.get("components", ())]
        if isinstance(body, dict) else [],
        "size_bytes": os.path.getsize(path),
    }
