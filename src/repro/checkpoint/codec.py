"""Tagged-JSON codec for simulation state.

Component ``snapshot_state()`` dicts are almost-JSON: the exceptions are
tuples (``random.Random.getstate()``, the CPU's interrupt frames), byte
strings, sets, and dicts with non-string keys (DMA channels keyed by
channel number, flash line buffers keyed by line address).  Pickle would
swallow all of those but gives up the properties a checkpoint format
needs: a stable canonical byte representation to checksum, a schema that
can be versioned and rejected, and no arbitrary-code-execution surface
when loading a possibly-corrupt file.

The codec therefore maps every supported value onto plain JSON with small
tag objects.  A dict whose keys are all strings (and which does not
collide with the tag key) passes through untouched; everything else is
wrapped::

    (1, 2)              -> {"__t": "tuple", "v": [1, 2]}
    b"\\x00\\xff"         -> {"__t": "bytes", "v": "00ff"}
    {3: "x"}            -> {"__t": "dict", "v": [[3, "x"]]}
    {1, 2}              -> {"__t": "set", "v": [1, 2]}

Encoding is total over the supported types and raises
:class:`~repro.errors.CheckpointError` on anything else — a component
returning an unserialisable object is a programming error that must
surface at save time, not as a corrupt file at restore time.
"""

from __future__ import annotations

from typing import Any

from ..errors import CheckpointError

#: reserved key marking a tag object; a plain dict using it gets wrapped
TAG = "__t"

_SCALARS = (str, int, float, bool, type(None))


def encode_value(value: Any) -> Any:
    """Map ``value`` onto the JSON-safe tagged representation."""
    if isinstance(value, bool) or value is None or \
            isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        encoded = [encode_value(item) for item in value]
        if isinstance(value, tuple):
            return {TAG: "tuple", "v": encoded}
        return encoded
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and TAG not in value:
            return {key: encode_value(item) for key, item in value.items()}
        return {TAG: "dict",
                "v": [[encode_value(key), encode_value(item)]
                      for key, item in value.items()]}
    if isinstance(value, (bytes, bytearray)):
        return {TAG: "bytes", "v": bytes(value).hex()}
    if isinstance(value, (set, frozenset)):
        return {TAG: "set",
                "v": sorted((encode_value(item) for item in value),
                            key=repr)}
    raise CheckpointError(
        f"cannot encode {type(value).__name__} value in a checkpoint: "
        f"{value!r}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(TAG)
        if tag is None:
            return {key: decode_value(item) for key, item in value.items()}
        body = value.get("v")
        if tag == "tuple":
            return tuple(decode_value(item) for item in body)
        if tag == "bytes":
            return bytes.fromhex(body)
        if tag == "set":
            return {decode_value(item) for item in body}
        if tag == "dict":
            return {decode_value(key): decode_value(item)
                    for key, item in body}
        raise CheckpointError(f"unknown codec tag {tag!r} in checkpoint")
    raise CheckpointError(
        f"cannot decode {type(value).__name__} value from a checkpoint")
