"""repro.checkpoint — deterministic snapshot/restore of a live simulation.

The paper's measurements cannot be repeated on the real target; the
reproduction's answer is that they never need to be repeated here either:
a :meth:`Simulator.checkpoint` file captures *all* simulation state —
every component, every RNG stream, the event-hub oracle — such that
restoring it into a freshly built device and running on is byte-identical
to a run that was never interrupted (see docs/checkpoint.md).

Public surface:

* :func:`save_checkpoint` / :func:`load_checkpoint` — CRC-guarded,
  schema-versioned, atomically written files;
* :func:`load_latest_checkpoint` — the fallback-to-previous loader fleet
  workers use;
* :class:`~repro.errors.CheckpointError` — the (retryable) rejection.
"""

from ..errors import CheckpointError
from .codec import decode_value, encode_value
from .format import (MAGIC, PREV_SUFFIX, SCHEMA_VERSION, checkpoint_info,
                     load_checkpoint, load_latest_checkpoint,
                     parse_checkpoint, render_checkpoint, save_checkpoint)

__all__ = [
    "CheckpointError",
    "MAGIC",
    "PREV_SUFFIX",
    "SCHEMA_VERSION",
    "checkpoint_info",
    "decode_value",
    "encode_value",
    "load_checkpoint",
    "load_latest_checkpoint",
    "parse_checkpoint",
    "render_checkpoint",
    "save_checkpoint",
]
