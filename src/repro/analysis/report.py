"""Consolidated profiling report: everything a session learned, one text.

Bundles the outputs a tooling front-end would present after an ED
measurement run — device identification, the parallel parameter summary,
the rate timeline, poor-IPC diagnoses, the function-level profile, the CPI
stack, and the trace/bandwidth accounting — into a single report string
(used by ``repro report``-style tooling and by the examples).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.optimization.cpi import CpiStack
from ..core.profiling import analysis
from ..core.profiling.functions import FunctionProfiler
from ..core.profiling.session import ProfileResult
from ..ed.device import EmulationDevice

_RULE = "-" * 64


def profiling_report(device: EmulationDevice, result: ProfileResult,
                     profiler: Optional[FunctionProfiler] = None,
                     ipc_name: str = "tc.ipc",
                     dip_threshold_fraction: float = 0.8) -> str:
    """Render the full post-measurement report."""
    soc_cfg = device.config.soc
    sections: List[str] = []

    sections.append(
        f"Enhanced System Profiling report — {soc_cfg.name}ED @ "
        f"{soc_cfg.cpu.frequency_mhz} MHz, {result.cycles_run} cycles "
        f"({result.cycles_run / (soc_cfg.cpu.frequency_mhz * 1e6) * 1e3:.2f}"
        f" ms)")

    sections.append(_RULE)
    sections.append("parallel parameter measurement:")
    sections.append(result.summary_table())

    if ipc_name in result and len(result[ipc_name]):
        threshold = result[ipc_name].mean_rate() * dip_threshold_fraction
        diagnoses = analysis.diagnose(result, ipc_name=ipc_name,
                                      ipc_threshold=threshold)
        sections.append(_RULE)
        if diagnoses:
            sections.append(
                f"poor-IPC windows (IPC below {threshold:.2f}):")
            for diag in diagnoses:
                suspects = ", ".join(
                    f"{name} ({score:+.1f}σ)"
                    for name, score in diag.causes[:3])
                sections.append(
                    f"  cycles {diag.window.start}..{diag.window.end}: "
                    f"IPC {diag.ipc_inside:.2f} — {suspects}")
        else:
            sections.append(
                f"no windows below {dip_threshold_fraction:.0%} of mean IPC")
        period = analysis.estimate_periodicity(result[ipc_name])
        if period is not None:
            freq_mhz = soc_cfg.cpu.frequency_mhz
            sections.append(
                f"IPC disturbance recurs every ~{period} cycles "
                f"({period / (freq_mhz * 1e6) * 1e6:.0f} µs) — "
                f"check tasks at that raster")

    if profiler is not None and profiler.stats:
        sections.append(_RULE)
        sections.append("function-level profile:")
        sections.append(profiler.flat_profile())

    counts = device.oracle()
    stack = CpiStack.from_counts(counts, device.cycle, soc_cfg)
    sections.append(_RULE)
    sections.append("CPI stack (oracle view):")
    sections.append(stack.as_table())

    sections.append(_RULE)
    sections.append(
        f"trace accounting: {device.mcds.total_messages} messages, "
        f"{device.mcds.total_bits} bits "
        f"({result.bandwidth_mbps():.2f} Mbit/s sustained); EMEM "
        f"{device.emem.fill_ratio:.1%} full, {result.lost_messages} "
        f"messages lost")
    return "\n".join(sections)
