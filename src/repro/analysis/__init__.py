"""Tool-side analysis: trace decoding and reporting."""

from .decode import DecodedRun, TraceDecoder
from .report import profiling_report

__all__ = ["DecodedRun", "TraceDecoder", "profiling_report"]
