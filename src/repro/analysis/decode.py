"""Tool-side trace decoding: reconstructing execution from messages.

The debugger reconstructs the full instruction flow from compressed
program-trace messages plus the program image (the paper's tooling does the
same from MCDS messages plus the ELF).  The decoder walks the program from
a sync point, consuming one discontinuity message per control-flow change;
tests verify the reconstruction against the simulator's actual path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mcds import messages as msgs
from ..soc.cpu.isa import Program


@dataclass
class DecodedRun:
    """Reconstruction result."""

    discontinuities: List[Tuple[int, int]]   # (cycle, target address)
    function_entries: Dict[str, int]         # function -> times entered
    first_cycle: Optional[int]
    last_cycle: Optional[int]

    @property
    def span_cycles(self) -> int:
        if self.first_cycle is None or self.last_cycle is None:
            return 0
        return self.last_cycle - self.first_cycle


class TraceDecoder:
    """Decodes a program-trace message stream against a program image."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._entries = sorted(
            (addr, name) for name, addr in program.symbols.items()
            if "." not in name)

    def _function_of(self, addr: int) -> str:
        name = "?"
        for entry_addr, entry_name in self._entries:
            if entry_addr > addr:
                break
            name = entry_name
        return name

    def decode(self, stream) -> DecodedRun:
        discontinuities: List[Tuple[int, int]] = []
        function_entries: Dict[str, int] = {}
        first = last = None
        for msg in stream:
            if msg.kind not in (msgs.IPT_BRANCH, msgs.IPT_SYNC):
                continue
            if first is None:
                first = msg.cycle
            last = msg.cycle
            target = msg.address
            discontinuities.append((msg.cycle, target))
            name = self._function_of(target)
            if target == self.program.symbols.get(name):
                function_entries[name] = function_entries.get(name, 0) + 1
        return DecodedRun(discontinuities, function_entries, first, last)
