"""``repro.traces``: trace analytics at scale.

The obs layer (PR4) answers "what happened in this run" with a bounded
in-memory Chrome trace.  This package answers the fleet-scale questions
— *store* every span a campaign emits without holding the trace in
memory, *aggregate* at ingest so multi-GB traces are queryable in
O(summary), *query* time windows and customers reading only matching
column blocks, *diff* two stored runs by (customer, signal), and
*export* to Chrome JSON or Perfetto protobuf.  See docs/traces.md for
the on-disk format specification.

Typical wiring — stream a live telemetry run into a segment::

    from repro.obs import telemetry
    from repro import traces

    with telemetry(run_id="baseline") as tel:
        with traces.recording(tel, "baseline.rtrace"):
            report = run_campaign(jobs, workers=0)

    summary = traces.summary_for("baseline.rtrace")

and later, offline::

    result = traces.query_segment("baseline.rtrace", traces.TraceQuery(
        begin_us=1e6, end_us=2e6, names=("job.execute",)))
    diff = traces.diff_summaries(traces.summary_for("baseline.rtrace"),
                                 traces.summary_for("candidate.rtrace"))
"""

from contextlib import contextmanager

from .diff import DiffEntry, TraceDiff, diff_summaries, format_diff
from .export import (to_chrome, to_perfetto, write_chrome, write_perfetto)
from .format import DEFAULT_BLOCK_EVENTS
from .query import QueryResult, TraceQuery, query_segment, run_query
from .store import (TraceReader, TraceWriter, ingest_chrome, summary_for)
from .summary import (StreamingSummary, load_summary, sidecar_path,
                      write_summary)

__all__ = [
    "DEFAULT_BLOCK_EVENTS", "DiffEntry", "QueryResult", "StreamingSummary",
    "TraceDiff", "TraceQuery", "TraceReader", "TraceWriter",
    "diff_summaries", "format_diff", "ingest_chrome", "load_summary",
    "query_segment", "recording", "run_query", "sidecar_path",
    "summary_for", "to_chrome", "to_perfetto", "write_chrome",
    "write_perfetto", "write_summary",
]


@contextmanager
def recording(tel, path: str, block_events: int = DEFAULT_BLOCK_EVENTS,
              top_n: int = 20):
    """Stream everything ``tel``'s tracer records into a segment at
    ``path`` for the duration of the block.

    The tracer's bounded buffer keeps working exactly as before (so
    ``--trace-out`` still gets its bounded view); the sink sees *every*
    event, including ones the buffer drops.  The segment and its summary
    sidecar are sealed on exit, even when the block raises.
    """
    writer = TraceWriter(path, run_id=tel.run_id,
                         block_events=block_events, top_n=top_n)
    tel.tracer.attach_sink(writer)
    try:
        yield writer
    finally:
        tel.tracer.detach_sink()
        writer.close()
