"""The ``.rtrace`` columnar segment format: layout, packing, CRC guards.

A segment is a single append-only file::

    +--------------------+
    | magic  "RTRC0001"  |  8 bytes
    +--------------------+
    | column block 0     |  struct-packed arrays + compressed args blob
    | column block 1     |
    | ...                |
    +--------------------+
    | footer (JSON)      |  index: string table, per-block metadata, CRCs
    +--------------------+
    | tail               |  16 bytes: <II footer_len footer_crc + magic
    +--------------------+

Each block packs up to ``block_events`` events column-wise in
little-endian order — timestamps (f8), durations (f8), then the interned
``name``/``cat``/``job`` ids and the ``pid``/``tid`` lanes (u4 each) and
the phase code (u1) — followed by a zlib-compressed canonical-JSON list
of the events' ``args`` dicts.  The footer records, per block, the byte
offset/length, event count, timestamp range, the set of name and job ids
present, and a CRC32 over the raw block bytes; readers can therefore
*prune* blocks on a time-window/name/job predicate and verify everything
they do read.  The footer itself is CRC-guarded by the fixed-size tail,
which is what makes the index reachable with two seeks from the end of a
multi-gigabyte file.

No pickle anywhere — same rule as the checkpoint and journal formats.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TraceStoreError

MAGIC = b"RTRC0001"
TAIL_STRUCT = struct.Struct("<II")          # footer_len, footer_crc32
TAIL_SIZE = TAIL_STRUCT.size + len(MAGIC)

FORMAT_NAME = "repro-trace-segment"
SCHEMA_VERSION = 1

#: default events per column block — small enough that a narrow
#: time-window query touches a few percent of a large file, large enough
#: to amortize the struct/zlib cost per event
DEFAULT_BLOCK_EVENTS = 4096

#: phase codes (Chrome trace-event ``ph`` values the store models)
PH_COMPLETE = 0      # "X": a finished span with a duration
PH_INSTANT = 1       # "i": a point on the timeline
PH_CODES = {"X": PH_COMPLETE, "i": PH_INSTANT}
PH_CHARS = {code: char for char, code in PH_CODES.items()}


def canonical_json(payload) -> str:
    """Canonical (sorted, whitespace-free) JSON — the CRC input form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class StringTable:
    """Append-only intern table; id 0 is always the empty string."""

    def __init__(self, strings: Optional[Sequence[str]] = None) -> None:
        self.strings: List[str] = list(strings) if strings else [""]
        if self.strings[0] != "":
            raise TraceStoreError("string table id 0 must be ''")
        self._ids: Dict[str, int] = {
            value: idx for idx, value in enumerate(self.strings)}

    def intern(self, value: str) -> int:
        idx = self._ids.get(value)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(value)
            self._ids[value] = idx
        return idx

    def __getitem__(self, idx: int) -> str:
        try:
            return self.strings[idx]
        except IndexError:
            raise TraceStoreError(f"string id {idx} outside table "
                                  f"({len(self.strings)} entries)")

    def __len__(self) -> int:
        return len(self.strings)


def pack_block(rows: Sequence[Tuple]) -> Tuple[bytes, Dict]:
    """Pack event rows into one column block; returns (bytes, index entry).

    Each row is ``(ts, dur, name_id, cat_id, job_id, pid, tid, ph, args)``
    with ``args`` a JSON-safe dict or ``None``.  The returned index entry
    carries everything the footer needs except the block's byte offset.
    """
    if not rows:
        raise TraceStoreError("cannot pack an empty block")
    n = len(rows)
    cols = list(zip(*rows))
    body = b"".join((
        struct.pack(f"<{n}d", *cols[0]),           # ts_us
        struct.pack(f"<{n}d", *cols[1]),           # dur_us
        struct.pack(f"<{n}I", *cols[2]),           # name ids
        struct.pack(f"<{n}I", *cols[3]),           # cat ids
        struct.pack(f"<{n}I", *cols[4]),           # job ids
        struct.pack(f"<{n}I", *cols[5]),           # pids
        struct.pack(f"<{n}I", *cols[6]),           # tids
        struct.pack(f"<{n}B", *cols[7]),           # phase codes
        zlib.compress(canonical_json(list(cols[8])).encode("utf-8")),
    ))
    entry = {
        "count": n,
        "length": len(body),
        "crc32": zlib.crc32(body) & 0xFFFFFFFF,
        "ts_min": min(cols[0]),
        "ts_max": max(cols[0]),
        "names": sorted(set(cols[2])),
        "jobs": sorted({jid for jid in cols[4] if jid}),
    }
    return body, entry


def unpack_block(data: bytes, entry: Dict,
                 want_args: bool = True) -> List[Tuple]:
    """Inverse of :func:`pack_block`; verifies the block CRC first."""
    if len(data) != entry["length"]:
        raise TraceStoreError(
            f"block truncated: expected {entry['length']} bytes, "
            f"got {len(data)}")
    if (zlib.crc32(data) & 0xFFFFFFFF) != entry["crc32"]:
        raise TraceStoreError("block CRC mismatch: segment is damaged")
    n = entry["count"]
    offset = 0
    columns = []
    for fmt, width in (("d", 8), ("d", 8), ("I", 4), ("I", 4), ("I", 4),
                       ("I", 4), ("I", 4), ("B", 1)):
        columns.append(struct.unpack_from(f"<{n}{fmt}", data, offset))
        offset += n * width
    if want_args:
        try:
            args_list = json.loads(zlib.decompress(data[offset:]))
        except (zlib.error, ValueError) as exc:
            raise TraceStoreError(f"block args blob unreadable: {exc}")
        if len(args_list) != n:
            raise TraceStoreError(
                f"block args blob has {len(args_list)} entries "
                f"for {n} events")
    else:
        args_list = [None] * n
    return list(zip(*columns, args_list))


def render_footer(footer: Dict) -> bytes:
    """Footer JSON plus the CRC-guarded fixed-size tail."""
    body = canonical_json(footer).encode("utf-8")
    tail = TAIL_STRUCT.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
    return body + tail + MAGIC


def read_footer(handle, file_size: int) -> Tuple[Dict, int]:
    """Load and validate the footer; returns (footer, bytes_read).

    ``handle`` must be an open binary file.  Raises
    :class:`TraceStoreError` on any structural damage — a segment whose
    writer never closed (no tail), a garbled tail, or a footer whose CRC
    does not match.
    """
    if file_size < len(MAGIC) + TAIL_SIZE:
        raise TraceStoreError(
            f"file too small to be a trace segment ({file_size} bytes)")
    handle.seek(0)
    if handle.read(len(MAGIC)) != MAGIC:
        raise TraceStoreError("bad magic: not a repro trace segment")
    handle.seek(file_size - TAIL_SIZE)
    tail = handle.read(TAIL_SIZE)
    if tail[TAIL_STRUCT.size:] != MAGIC:
        raise TraceStoreError(
            "no footer tail: the segment writer never closed this file")
    footer_len, footer_crc = TAIL_STRUCT.unpack(tail[:TAIL_STRUCT.size])
    footer_at = file_size - TAIL_SIZE - footer_len
    if footer_at < len(MAGIC):
        raise TraceStoreError("footer length exceeds file size")
    handle.seek(footer_at)
    body = handle.read(footer_len)
    if (zlib.crc32(body) & 0xFFFFFFFF) != footer_crc:
        raise TraceStoreError("footer CRC mismatch: segment is damaged")
    try:
        footer = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise TraceStoreError(f"footer is not valid JSON: {exc}")
    if footer.get("format") != FORMAT_NAME:
        raise TraceStoreError(
            f"unexpected footer format {footer.get('format')!r}")
    if footer.get("schema") != SCHEMA_VERSION:
        raise TraceStoreError(
            f"unsupported segment schema {footer.get('schema')!r} "
            f"(this build reads schema {SCHEMA_VERSION})")
    return footer, len(MAGIC) + TAIL_SIZE + footer_len
