"""Streaming aggregation at ingest + the CRC-guarded summary sidecar.

Every event streamed into a :class:`~repro.traces.store.TraceWriter`
passes through a :class:`StreamingSummary` exactly once, so by the time
the segment closes the expensive whole-trace questions — duration
histograms per span name, gap/lost/degraded/stall totals per customer,
the N slowest spans, the per-(customer, signal) rate series that
cross-run diffing joins on — are already answered.  The summary is
persisted next to the segment as ``<segment>.summary.json`` and is the
only thing :mod:`repro.traces.diff` ever reads: diffing two multi-GB
runs is O(summary), not O(trace).

State is bounded: histograms are fixed buckets, the slowest-span set is
a size-``top_n`` heap, and the per-job/per-signal maps grow with the
campaign matrix, not with trace length.
"""

from __future__ import annotations

import heapq
import json
import os
import zlib
from bisect import bisect_left
from typing import Dict, List, Optional

from ..errors import TraceStoreError
from .format import canonical_json

SUMMARY_FORMAT = "repro-trace-summary"
SUMMARY_SCHEMA = 1
SUMMARY_SUFFIX = ".summary.json"

#: span-duration histogram bounds in microseconds (log-spaced; the last
#: implicit bucket is +Inf), matching the registry's histogram idiom
DUR_BUCKETS_US = (10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7)


def _name_stat() -> Dict:
    return {"count": 0, "dur_sum_us": 0.0, "dur_min_us": None,
            "dur_max_us": 0.0, "buckets": [0] * (len(DUR_BUCKETS_US) + 1)}


def _job_stat() -> Dict:
    return {"spans": 0, "dur_sum_us": 0.0, "lost": 0, "gaps": 0,
            "degraded": 0, "stall_events": 0}


class StreamingSummary:
    """Incremental aggregates over one trace stream."""

    def __init__(self, top_n: int = 20) -> None:
        self.top_n = top_n
        self.events_total = 0
        self.spans_total = 0
        self.instants_total = 0
        self.buffer_overflows = 0
        self.gaps_total = 0
        self.lost_total = 0
        self.degraded_total = 0
        self.stall_events_total = 0
        self.by_name: Dict[str, Dict] = {}
        self.instants_by_name: Dict[str, int] = {}
        self.by_job: Dict[str, Dict] = {}
        #: job -> signal -> deterministic payload stats (fed by the
        #: orchestrator's ``job.profile`` instants); the diff join key
        self.series: Dict[str, Dict[str, Dict]] = {}
        self._slowest: List[tuple] = []      # min-heap of size <= top_n

    # -- ingest --------------------------------------------------------------
    def observe(self, name: str, ph: str, ts_us: float, dur_us: float,
                job: str, args: Optional[Dict]) -> None:
        self.events_total += 1
        if ph == "X":
            self.spans_total += 1
            stat = self.by_name.get(name)
            if stat is None:
                stat = self.by_name[name] = _name_stat()
            stat["count"] += 1
            stat["dur_sum_us"] += dur_us
            if stat["dur_min_us"] is None or dur_us < stat["dur_min_us"]:
                stat["dur_min_us"] = dur_us
            if dur_us > stat["dur_max_us"]:
                stat["dur_max_us"] = dur_us
            stat["buckets"][bisect_left(DUR_BUCKETS_US, dur_us)] += 1
            if job:
                jstat = self.by_job.get(job)
                if jstat is None:
                    jstat = self.by_job[job] = _job_stat()
                jstat["spans"] += 1
                jstat["dur_sum_us"] += dur_us
            entry = (dur_us, self.spans_total, name, ts_us, job)
            if len(self._slowest) < self.top_n:
                heapq.heappush(self._slowest, entry)
            elif entry > self._slowest[0]:
                heapq.heapreplace(self._slowest, entry)
            return
        self.instants_total += 1
        self.instants_by_name[name] = self.instants_by_name.get(name, 0) + 1
        args = args or {}
        if name == "gap.recorded":
            self.gaps_total += 1
            self.lost_total += int(args.get("lost") or 0)
            return
        if name == "trace.buffer_full":
            self.buffer_overflows += 1
            return
        if name == "job.profile" and job:
            self.series.setdefault(job, {})[str(args.get("signal", ""))] = {
                "mean_rate": args.get("mean_rate", 0.0),
                "samples": int(args.get("samples") or 0),
                "degraded": int(args.get("degraded") or 0),
            }
            return
        if name == "job.stats" and job:
            jstat = self.by_job.get(job)
            if jstat is None:
                jstat = self.by_job[job] = _job_stat()
            lost = int(args.get("lost") or 0)
            gaps = int(args.get("gaps") or 0)
            degraded = int(args.get("degraded") or 0)
            stalls = int(args.get("stall_events") or 0)
            jstat["lost"] += lost
            jstat["gaps"] += gaps
            jstat["degraded"] += degraded
            jstat["stall_events"] += stalls
            self.lost_total += lost
            self.degraded_total += degraded
            self.stall_events_total += stalls

    def observe_event(self, event: Dict, job: str = "") -> None:
        """Convenience for a Chrome-form event dict."""
        self.observe(event.get("name", ""), event.get("ph", "X"),
                     float(event.get("ts", 0.0)),
                     float(event.get("dur", 0.0)), job,
                     event.get("args"))

    # -- export --------------------------------------------------------------
    def slowest(self) -> List[Dict]:
        """The top-N slowest spans, slowest first."""
        return [{"name": name, "dur_us": round(dur, 3),
                 "ts_us": round(ts, 3), "job": job}
                for dur, _, name, ts, job in
                sorted(self._slowest, reverse=True)]

    def to_dict(self) -> Dict:
        by_name = {}
        for name in sorted(self.by_name):
            stat = self.by_name[name]
            by_name[name] = {
                "count": stat["count"],
                "dur_sum_us": round(stat["dur_sum_us"], 3),
                "dur_min_us": round(stat["dur_min_us"] or 0.0, 3),
                "dur_max_us": round(stat["dur_max_us"], 3),
                "dur_mean_us": round(
                    stat["dur_sum_us"] / max(1, stat["count"]), 3),
                "le": list(DUR_BUCKETS_US) + ["+Inf"],
                "buckets": list(stat["buckets"]),
            }
        by_job = {}
        for job in sorted(self.by_job):
            stat = self.by_job[job]
            by_job[job] = dict(stat, dur_sum_us=round(stat["dur_sum_us"], 3))
        return {
            "events": self.events_total,
            "spans": self.spans_total,
            "instants": self.instants_total,
            "buffer_overflows": self.buffer_overflows,
            "totals": {
                "gaps": self.gaps_total,
                "lost_messages": self.lost_total,
                "degraded_samples": self.degraded_total,
                "stall_events": self.stall_events_total,
            },
            "by_name": by_name,
            "instants_by_name": dict(sorted(self.instants_by_name.items())),
            "by_job": by_job,
            "series": {job: dict(sorted(signals.items()))
                       for job, signals in sorted(self.series.items())},
            "slowest": self.slowest(),
        }


# -- sidecar persistence -----------------------------------------------------
def sidecar_path(segment_path: str) -> str:
    return segment_path + SUMMARY_SUFFIX


def write_summary(path: str, body: Dict) -> str:
    """Atomically write a CRC-sealed summary document."""
    doc = {
        "format": SUMMARY_FORMAT,
        "schema": SUMMARY_SCHEMA,
        "crc32": zlib.crc32(canonical_json(body).encode("utf-8"))
        & 0xFFFFFFFF,
        "body": body,
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_summary(path: str) -> Dict:
    """Load and validate a summary sidecar; returns the body dict."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise TraceStoreError(f"summary sidecar unreadable: {exc}")
    except ValueError as exc:
        raise TraceStoreError(f"summary sidecar is not valid JSON: {exc}")
    if doc.get("format") != SUMMARY_FORMAT:
        raise TraceStoreError(
            f"unexpected summary format {doc.get('format')!r}")
    if doc.get("schema") != SUMMARY_SCHEMA:
        raise TraceStoreError(
            f"unsupported summary schema {doc.get('schema')!r}")
    body = doc.get("body")
    crc = zlib.crc32(canonical_json(body).encode("utf-8")) & 0xFFFFFFFF
    if crc != doc.get("crc32"):
        raise TraceStoreError("summary sidecar CRC mismatch")
    return body
