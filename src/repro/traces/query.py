"""Predicate queries over stored segments, reading only matching blocks.

A :class:`TraceQuery` combines a time window, span-name set, job set,
and phase filter.  Block pruning happens against the footer index alone:
a block is read only when its timestamp range overlaps the window *and*
its interned name/job sets intersect the predicate — so a narrow query
over a large segment touches the footer plus a handful of blocks, never
the whole file.  :class:`QueryResult` reports exactly how much was
touched (``bytes_read`` / ``blocks_scanned``), which is the evidence E18
gates on.

The time window matches on an event's *start* timestamp (``begin_us <=
ts <= end_us``) — the same convention Chrome's viewer uses for slice
selection, and the one the footer's per-block ``ts_min``/``ts_max`` can
prune exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .store import TraceReader


@dataclass(frozen=True)
class TraceQuery:
    """One immutable query: all set predicates must hold (AND)."""

    begin_us: Optional[float] = None
    end_us: Optional[float] = None
    names: Optional[Tuple[str, ...]] = None
    jobs: Optional[Tuple[str, ...]] = None
    phase: Optional[str] = None          # "X" | "i"
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.begin_us is not None and self.end_us is not None and \
                self.end_us < self.begin_us:
            raise ConfigurationError(
                f"query window is inverted: end_us {self.end_us} < "
                f"begin_us {self.begin_us}")
        if self.phase is not None and self.phase not in ("X", "i"):
            raise ConfigurationError(
                f"phase must be 'X' or 'i', got {self.phase!r}")
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError("limit must be >= 1")


@dataclass
class QueryResult:
    """Matching events plus the cost accounting of producing them."""

    events: List[Dict] = field(default_factory=list)
    blocks_total: int = 0
    blocks_scanned: int = 0
    bytes_read: int = 0
    file_bytes: int = 0
    truncated: bool = False              # the limit cut the scan short

    @property
    def bytes_fraction(self) -> float:
        """Fraction of the segment actually read to answer the query."""
        return self.bytes_read / max(1, self.file_bytes)


def _block_matches(entry: Dict, query: TraceQuery,
                   name_ids: Optional[set], job_ids: Optional[set]) -> bool:
    if query.begin_us is not None and entry["ts_max"] < query.begin_us:
        return False
    if query.end_us is not None and entry["ts_min"] > query.end_us:
        return False
    if name_ids is not None and not name_ids.intersection(entry["names"]):
        return False
    if job_ids is not None and not job_ids.intersection(entry["jobs"]):
        return False
    return True


def _event_matches(event: Dict, query: TraceQuery) -> bool:
    ts = event["ts"]
    if query.begin_us is not None and ts < query.begin_us:
        return False
    if query.end_us is not None and ts > query.end_us:
        return False
    if query.names is not None and event["name"] not in query.names:
        return False
    if query.phase is not None and event["ph"] != query.phase:
        return False
    if query.jobs is not None:
        args = event.get("args") or {}
        job = args.get("job", args.get("job_id"))
        if job is None or str(job) not in query.jobs:
            return False
    return True


def run_query(reader: TraceReader, query: TraceQuery) -> QueryResult:
    """Execute ``query`` against an open reader.

    ``bytes_read`` in the result is the reader's *total* for its
    lifetime — footer included when the reader was opened for this query
    — so a fresh reader per query yields the honest cost of answering it
    cold.
    """
    # resolve predicate strings against the intern table once; a name or
    # job the table has never seen matches nothing, so an unknown-only
    # predicate short-circuits to zero blocks
    name_ids: Optional[set] = None
    if query.names is not None:
        known = {s: i for i, s in enumerate(reader.strings.strings)}
        name_ids = {known[n] for n in query.names if n in known}
    job_ids: Optional[set] = None
    if query.jobs is not None:
        known = {s: i for i, s in enumerate(reader.strings.strings)}
        job_ids = {known[j] for j in query.jobs if j in known}

    result = QueryResult(blocks_total=len(reader.blocks),
                         file_bytes=reader.file_bytes)
    for index, entry in enumerate(reader.blocks):
        if (name_ids is not None and not name_ids) or \
                (job_ids is not None and not job_ids):
            break
        if not _block_matches(entry, query, name_ids, job_ids):
            continue
        result.blocks_scanned += 1
        for event in reader.read_block(index):
            if not _event_matches(event, query):
                continue
            result.events.append(event)
            if query.limit is not None and \
                    len(result.events) >= query.limit:
                result.truncated = True
                break
        if result.truncated:
            break
    # total cost including the footer read that made pruning possible
    result.bytes_read = reader.bytes_read
    return result


def query_segment(path: str, query: TraceQuery) -> QueryResult:
    """Open ``path`` cold, run ``query``, close — the CLI entry point."""
    with TraceReader(path) as reader:
        return run_query(reader, query)
