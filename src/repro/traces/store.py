"""Columnar trace store: streaming writer, pruning reader, ingest.

:class:`TraceWriter` is the sink end of the pipeline.  Attach one to a
live :class:`~repro.obs.tracer.SpanTracer` (``tracer.attach_sink``) or
feed it Chrome-form event dicts directly: events accumulate in one
in-flight block (``block_events`` rows, ~4k by default) and are flushed
column-packed + CRC'd to disk, so a campaign of any length holds at most
one block in memory.  Every event also feeds the
:class:`~repro.traces.summary.StreamingSummary`, persisted as the
``.summary.json`` sidecar at close — ingest-time aggregation, queries in
O(summary).

:class:`TraceReader` is the other end: it reads the footer with two
seeks from the end of the file, prunes column blocks on time-window /
span-name / job predicates, and counts every byte it touches in
``bytes_read`` — the instrumentation benchmark E18 uses to prove a
windowed query never loads the full file.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import TraceStoreError
from ..obs import runtime as _obs
from .format import (DEFAULT_BLOCK_EVENTS, FORMAT_NAME, MAGIC, PH_CHARS,
                     PH_CODES, SCHEMA_VERSION, StringTable, pack_block,
                     read_footer, render_footer, unpack_block)
from .summary import StreamingSummary, load_summary, sidecar_path, \
    write_summary


def _job_of(args: Optional[Dict]) -> str:
    if not args:
        return ""
    job = args.get("job")
    if job is None:
        job = args.get("job_id")
    return str(job) if job is not None else ""


class TraceWriter:
    """Append-only segment writer with one in-flight column block."""

    def __init__(self, path: str, run_id: Optional[str] = None,
                 block_events: int = DEFAULT_BLOCK_EVENTS,
                 top_n: int = 20) -> None:
        if block_events < 1:
            raise TraceStoreError("block_events must be >= 1")
        self.path = path
        self.run_id = run_id
        self.block_events = block_events
        self.summary = StreamingSummary(top_n=top_n)
        self._strings = StringTable()
        self._blocks: List[Dict] = []
        self._rows: List[Tuple] = []
        self._process_names: Dict[int, str] = {}
        self._thread_names: Dict[Tuple[int, int], str] = {}
        self._lanes: set = set()
        self.events_written = 0
        self.spans_written = 0
        self.instants_written = 0
        self.skipped_events = 0
        self.bytes_written = 0
        self.closed = False
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "wb")
        self._handle.write(MAGIC)
        self._offset = len(MAGIC)

    # -- lane metadata (mirrors SpanTracer.set_process/set_thread) -----------
    def set_process(self, pid: int, name: str) -> None:
        self._process_names[int(pid)] = name

    def set_thread(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(int(pid), int(tid))] = name

    # -- ingest --------------------------------------------------------------
    def append(self, event: Dict) -> None:
        """Stream one Chrome-form event dict into the segment.

        ``X`` (complete span) and ``i`` (instant) events are stored;
        ``M`` metadata events update the lane-name tables; anything else
        (nestable async phases, flow events, counters) is counted in
        ``skipped_events`` — the store models the tracer's vocabulary,
        not the whole Chrome zoo.
        """
        if self.closed:
            raise TraceStoreError(f"writer for {self.path} is closed")
        ph = event.get("ph", "X")
        if ph == "M":
            args = event.get("args") or {}
            if event.get("name") == "process_name":
                self.set_process(event.get("pid", 0), args.get("name", ""))
            elif event.get("name") == "thread_name":
                self.set_thread(event.get("pid", 0), event.get("tid", 0),
                                args.get("name", ""))
            return
        code = PH_CODES.get(ph)
        if code is None:
            self.skipped_events += 1
            return
        args = event.get("args")
        job = _job_of(args)
        ts = float(event.get("ts", 0.0))
        dur = float(event.get("dur", 0.0)) if ph == "X" else 0.0
        pid = int(event.get("pid", 0))
        tid = int(event.get("tid", 0))
        self._lanes.add((pid, tid))
        self._rows.append((ts, dur,
                           self._strings.intern(event.get("name", "")),
                           self._strings.intern(event.get("cat", "")),
                           self._strings.intern(job) if job else 0,
                           pid, tid, code, args))
        self.events_written += 1
        if ph == "X":
            self.spans_written += 1
        else:
            self.instants_written += 1
        self.summary.observe(event.get("name", ""), ph, ts, dur, job, args)
        if len(self._rows) >= self.block_events:
            self.flush()

    def flush(self) -> None:
        """Flush the in-flight block (if any) to disk."""
        if not self._rows:
            return
        rows, self._rows = self._rows, []
        body, entry = pack_block(rows)
        entry["offset"] = self._offset
        self._handle.write(body)
        self._offset += len(body)
        self._blocks.append(entry)
        self.bytes_written += len(body)
        tel = _obs._active
        if tel is not None:
            reg = tel.registry
            reg.get("repro_trace_store_events_total").inc(len(rows))
            reg.get("repro_trace_store_blocks_total").inc()
            reg.get("repro_trace_store_bytes_total").inc(len(body))

    def _footer(self) -> Dict:
        return {
            "format": FORMAT_NAME,
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "time_unit": "us",
            "strings": self._strings.strings,
            "blocks": self._blocks,
            "counts": {
                "events": self.events_written,
                "spans": self.spans_written,
                "instants": self.instants_written,
                "skipped": self.skipped_events,
            },
            "process_names": {str(pid): name for pid, name
                              in self._process_names.items()},
            "thread_names": {f"{pid}:{tid}": name for (pid, tid), name
                             in self._thread_names.items()},
            "lanes": sorted([pid, tid] for pid, tid in self._lanes),
        }

    def close(self) -> str:
        """Seal the segment: footer + tail + fsync, then the sidecar."""
        if self.closed:
            return self.path
        self.flush()
        tail = render_footer(self._footer())
        self._handle.write(tail)
        self.bytes_written += len(tail)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self.closed = True
        write_summary(sidecar_path(self.path), self.summary.to_dict())
        return self.path

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceReader:
    """Footer-indexed segment reader with byte-level instrumentation."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.bytes_read = 0
        try:
            self.file_bytes = os.path.getsize(path)
            self._handle = open(path, "rb")
        except OSError as exc:
            raise TraceStoreError(f"cannot open trace segment: {exc}")
        try:
            self.footer, footer_bytes = read_footer(self._handle,
                                                    self.file_bytes)
        except TraceStoreError:
            self._handle.close()
            raise
        self.bytes_read += footer_bytes
        self.strings = StringTable(self.footer["strings"])
        self.blocks: List[Dict] = self.footer["blocks"]
        self.counts: Dict = self.footer["counts"]
        self.run_id = self.footer.get("run_id")
        self.process_names = {int(pid): name for pid, name
                              in self.footer["process_names"].items()}
        self.thread_names = {}
        for key, name in self.footer["thread_names"].items():
            pid, tid = key.split(":", 1)
            self.thread_names[(int(pid), int(tid))] = name
        self.lanes = [tuple(lane) for lane in self.footer.get("lanes", [])]

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- block access --------------------------------------------------------
    def read_block(self, index: int, want_args: bool = True) -> List[Dict]:
        """Read, verify, and decode one column block into event dicts."""
        entry = self.blocks[index]
        self._handle.seek(entry["offset"])
        data = self._handle.read(entry["length"])
        self.bytes_read += len(data)
        events = []
        for ts, dur, name_id, cat_id, _job_id, pid, tid, code, args \
                in unpack_block(data, entry, want_args=want_args):
            ph = PH_CHARS[code]
            event = {"name": self.strings[name_id],
                     "cat": self.strings[cat_id], "ph": ph,
                     "ts": ts, "pid": pid, "tid": tid}
            if ph == "X":
                event["dur"] = dur
            else:
                event["s"] = "t"
            if args is not None:
                event["args"] = args
            events.append(event)
        return events

    def events(self, want_args: bool = True) -> Iterator[Dict]:
        """Stream every stored event, one block in memory at a time."""
        for index in range(len(self.blocks)):
            for event in self.read_block(index, want_args=want_args):
                yield event

    def rebuild_summary(self) -> StreamingSummary:
        """Recompute the streaming summary from the stored blocks."""
        summary = StreamingSummary()
        for event in self.events():
            summary.observe_event(event, job=_job_of(event.get("args")))
        return summary


# -- segment-level helpers ---------------------------------------------------
def summary_for(segment_path: str) -> Dict:
    """The segment's summary body: sidecar if intact, else recomputed."""
    sidecar = sidecar_path(segment_path)
    if os.path.exists(sidecar):
        try:
            return load_summary(sidecar)
        except TraceStoreError:
            pass                     # fall through to the rebuild
    with TraceReader(segment_path) as reader:
        return reader.rebuild_summary().to_dict()


def ingest_chrome(source_path: str, dest_path: str,
                  block_events: int = DEFAULT_BLOCK_EVENTS,
                  run_id: Optional[str] = None) -> TraceWriter:
    """Convert a Chrome trace-event JSON file into a segment.

    Accepts both the object form (``{"traceEvents": [...]}`` — what
    ``--trace-out`` writes) and the bare JSON-array form.  Returns the
    closed writer so callers can report its counters.
    """
    try:
        with open(source_path) as handle:
            body = json.load(handle)
    except OSError as exc:
        raise TraceStoreError(f"cannot read source trace: {exc}")
    except ValueError as exc:
        raise TraceStoreError(f"source trace is not valid JSON: {exc}")
    if isinstance(body, dict):
        events = body.get("traceEvents")
        if not isinstance(events, list):
            raise TraceStoreError(
                "source trace object has no traceEvents array")
    elif isinstance(body, list):
        events = body
    else:
        raise TraceStoreError("source trace must be a JSON object or array")
    writer = TraceWriter(dest_path, run_id=run_id,
                         block_events=block_events)
    try:
        for event in events:
            if isinstance(event, dict):
                writer.append(event)
            else:
                writer.skipped_events += 1
    finally:
        writer.close()
    return writer
