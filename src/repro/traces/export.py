"""Exports: Chrome trace-event JSON and Perfetto protobuf TracePackets.

Chrome export streams the segment back into the same JSON-object form
``--trace-out`` writes (``{"traceEvents": [...]}`` with process/thread
metadata events first), one block in memory at a time — viewers sort by
timestamp themselves, so events are emitted in stored order.

Perfetto export hand-encodes the protobuf wire format (varints +
length-delimited submessages) for the tiny subset of
``perfetto.protos.Trace`` the timeline needs: one ``TrackDescriptor``
packet per process and thread lane, then ``TrackEvent`` packets —
``TYPE_SLICE_BEGIN``/``TYPE_SLICE_END`` pairs for complete spans,
``TYPE_INSTANT`` for instants — sorted by timestamp on one trusted
packet sequence.  No protobuf dependency: the writer is ~60 lines of
wire-format arithmetic, and the tests decode it back with the same
primitives.

Field numbers (from the Perfetto proto schema, stable by protobuf
contract): Trace.packet=1; TracePacket.timestamp=8,
.trusted_packet_sequence_id=10, .track_event=11, .track_descriptor=60;
TrackEvent.type=9, .track_uuid=11, .name=23; TrackDescriptor.uuid=1,
.name=2, .process=3, .thread=4; ProcessDescriptor.pid=1,
.process_name=6; ThreadDescriptor.pid=1, .tid=2, .thread_name=5.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Tuple

from .store import TraceReader

# TrackEvent.Type enum values
TYPE_SLICE_BEGIN = 1
TYPE_SLICE_END = 2
TYPE_INSTANT = 3

#: every packet claims the same trusted sequence — one writer, one stream
SEQUENCE_ID = 1


# -- chrome ------------------------------------------------------------------
def chrome_metadata_events(reader: TraceReader) -> List[Dict]:
    """Process/thread name metadata events, same shape as the tracer's."""
    meta: List[Dict] = []
    for pid in sorted({pid for pid, _ in reader.lanes}):
        name = reader.process_names.get(pid, f"process {pid}")
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": name}})
    for pid, tid in sorted(reader.lanes):
        name = reader.thread_names.get((pid, tid), f"thread {tid}")
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": name}})
    return meta


def chrome_events(reader: TraceReader) -> Iterator[Dict]:
    """Metadata events, then every stored event in segment order."""
    for event in chrome_metadata_events(reader):
        yield event
    for event in reader.events():
        yield event


def write_chrome(reader: TraceReader, path: str) -> str:
    """Stream the segment to a Chrome JSON-object trace file."""
    with open(path, "w") as handle:
        handle.write('{"displayTimeUnit": "ms", '
                     '"otherData": {"producer": "repro.traces"}, '
                     '"traceEvents": [')
        first = True
        for event in chrome_events(reader):
            if not first:
                handle.write(", ")
            handle.write(json.dumps(event, sort_keys=True))
            first = False
        handle.write("]}\n")
    return path


def to_chrome(reader: TraceReader) -> str:
    """The whole trace as one Chrome JSON string (small traces only)."""
    body = {
        "traceEvents": list(chrome_events(reader)),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.traces"},
    }
    return json.dumps(body, sort_keys=True)


# -- protobuf wire-format primitives -----------------------------------------
def encode_varint(value: int) -> bytes:
    if value < 0:
        raise ValueError("varints here are unsigned")
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        if value:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def _key(field_number: int, wire_type: int) -> bytes:
    return encode_varint((field_number << 3) | wire_type)


def field_uint(field_number: int, value: int) -> bytes:
    return _key(field_number, 0) + encode_varint(value)


def field_bytes(field_number: int, payload: bytes) -> bytes:
    return _key(field_number, 2) + encode_varint(len(payload)) + payload


def field_str(field_number: int, value: str) -> bytes:
    return field_bytes(field_number, value.encode("utf-8"))


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """(value, next_offset) — the test-side inverse of encode_varint."""
    result = shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def decode_message(data: bytes) -> List[Tuple[int, int, object]]:
    """Decode one message into (field_number, wire_type, value) triples."""
    fields: List[Tuple[int, int, object]] = []
    offset = 0
    while offset < len(data):
        key, offset = decode_varint(data, offset)
        field_number, wire_type = key >> 3, key & 0x7
        if wire_type == 0:
            value, offset = decode_varint(data, offset)
        elif wire_type == 2:
            length, offset = decode_varint(data, offset)
            value = data[offset:offset + length]
            offset += length
        else:
            raise ValueError(f"unsupported wire type {wire_type}")
        fields.append((field_number, wire_type, value))
    return fields


# -- perfetto trace assembly -------------------------------------------------
def _process_uuid(pid: int) -> int:
    return (pid + 1) << 32


def _thread_uuid(pid: int, tid: int) -> int:
    return _process_uuid(pid) + tid + 1


def _descriptor_packets(reader: TraceReader) -> List[bytes]:
    packets: List[bytes] = []
    for pid in sorted({pid for pid, _ in reader.lanes}):
        name = reader.process_names.get(pid, f"process {pid}")
        process = field_uint(1, pid) + field_str(6, name)
        descriptor = field_uint(1, _process_uuid(pid)) + \
            field_str(2, name) + field_bytes(3, process)
        packets.append(field_uint(10, SEQUENCE_ID) +
                       field_bytes(60, descriptor))
    for pid, tid in sorted(reader.lanes):
        name = reader.thread_names.get((pid, tid), f"thread {tid}")
        thread = field_uint(1, pid) + field_uint(2, tid) + \
            field_str(5, name)
        descriptor = field_uint(1, _thread_uuid(pid, tid)) + \
            field_str(2, name) + field_bytes(4, thread)
        packets.append(field_uint(10, SEQUENCE_ID) +
                       field_bytes(60, descriptor))
    return packets


def _event_packets(events: Iterable[Dict]) -> List[Tuple[int, int, bytes]]:
    """(ts_ns, order, packet_bytes) triples, ready to sort."""
    packets: List[Tuple[int, int, bytes]] = []
    order = 0
    for event in events:
        uuid = _thread_uuid(event["pid"], event["tid"])
        ts_ns = int(round(event["ts"] * 1000.0))
        if event["ph"] == "X":
            end_ns = ts_ns + max(0, int(round(event.get("dur", 0.0)
                                              * 1000.0)))
            begin = field_uint(9, TYPE_SLICE_BEGIN) + \
                field_uint(11, uuid) + field_str(23, event["name"])
            end = field_uint(9, TYPE_SLICE_END) + field_uint(11, uuid)
            packets.append((ts_ns, order, field_uint(8, ts_ns) +
                            field_uint(10, SEQUENCE_ID) +
                            field_bytes(11, begin)))
            # order+1 keeps a zero-duration span's END after its BEGIN
            packets.append((end_ns, order + 1, field_uint(8, end_ns) +
                            field_uint(10, SEQUENCE_ID) +
                            field_bytes(11, end)))
        else:
            instant = field_uint(9, TYPE_INSTANT) + field_uint(11, uuid) + \
                field_str(23, event["name"])
            packets.append((ts_ns, order, field_uint(8, ts_ns) +
                            field_uint(10, SEQUENCE_ID) +
                            field_bytes(11, instant)))
        order += 2
    return packets


def to_perfetto(reader: TraceReader) -> bytes:
    """The segment as a perfetto.protos.Trace byte string."""
    out = bytearray()
    for packet in _descriptor_packets(reader):
        out += field_bytes(1, packet)
    for _, _, packet in sorted(_event_packets(reader.events())):
        out += field_bytes(1, packet)
    return bytes(out)


def write_perfetto(reader: TraceReader, path: str) -> str:
    with open(path, "wb") as handle:
        handle.write(to_perfetto(reader))
    return path
