"""Cross-run diffing: which customers regressed between run A and run B?

Joins two summary sidecars on (customer, signal) and on the per-customer
pipeline counters, and reports every value that moved beyond the
configured thresholds.  The join key is the *deterministic* part of the
trace — the ``job.profile`` / ``job.stats`` instants the orchestrator
derives from campaign payloads, which are byte-identical across
backends, worker counts, and resumes — so a diff of two runs of the same
spec is exactly empty, and a perturbed config surfaces exactly the
perturbed customers.  Span durations are wall clock and deliberately
stay out of the changed-set: the mean duration per span name is reported
informationally instead.

Direction matters for "regressed": more stalls, misses, contention,
lost messages, or degraded samples is worse; more IPC or buffer hits is
better.  Signals the table doesn't know are reported as neutral changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: per-signal direction: True = a higher value is worse (a regression),
#: False = a higher value is better (an improvement)
HIGHER_IS_WORSE = {
    "tc.ipc": False,
    "pcp.ipc": False,
    "flash.data_buffer_hit_rate": False,
    "icache.miss_rate": True,
    "flash.data_access_rate": True,
    "dspr.access_rate": True,
    "lmu.access_rate": True,
    "bus.contention_rate": True,
    "tc.load_stall_rate": True,
    "irq.rate": True,
}

#: per-job pipeline counters from ``job.stats`` — more is always worse
COUNTER_METRICS = ("lost", "gaps", "degraded", "stall_events")


@dataclass(frozen=True)
class DiffEntry:
    """One (customer, metric) value that moved beyond the thresholds."""

    job: str
    metric: str                  # "<signal>.mean_rate", "lost", ...
    before: float
    after: float
    worse: Optional[bool]        # None when the direction is unknown

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def rel(self) -> float:
        base = abs(self.before)
        if base == 0.0:
            return float("inf") if self.after != self.before else 0.0
        return abs(self.delta) / base


@dataclass
class TraceDiff:
    """Everything :func:`diff_summaries` found."""

    changes: List[DiffEntry] = field(default_factory=list)
    added_jobs: List[str] = field(default_factory=list)
    removed_jobs: List[str] = field(default_factory=list)
    compared_jobs: int = 0
    #: mean span duration per name in both runs (informational only —
    #: wall clock, so it never enters the changed-set)
    duration_deltas: Dict[str, Dict] = field(default_factory=dict)

    @property
    def changed_jobs(self) -> List[str]:
        return sorted({entry.job for entry in self.changes})

    @property
    def regressions(self) -> List[DiffEntry]:
        return [entry for entry in self.changes if entry.worse is True]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [entry for entry in self.changes if entry.worse is False]

    def to_dict(self) -> Dict:
        return {
            "compared_jobs": self.compared_jobs,
            "changed_jobs": self.changed_jobs,
            "added_jobs": self.added_jobs,
            "removed_jobs": self.removed_jobs,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "changes": [{
                "job": e.job, "metric": e.metric,
                "before": e.before, "after": e.after,
                "delta": e.delta, "worse": e.worse,
            } for e in self.changes],
            "duration_deltas": self.duration_deltas,
        }


def _significant(before: float, after: float, rel_threshold: float,
                 abs_threshold: float) -> bool:
    delta = abs(after - before)
    if delta <= abs_threshold:
        return False
    base = abs(before)
    if base == 0.0:
        return True                  # appeared from nothing: always news
    return delta / base > rel_threshold


def _worse(metric: str, delta: float) -> Optional[bool]:
    signal = metric.rsplit(".mean_rate", 1)[0] if \
        metric.endswith(".mean_rate") else metric
    if signal in COUNTER_METRICS or metric.endswith(".degraded") or \
            metric.endswith(".samples"):
        up_is_worse = True
    elif signal in HIGHER_IS_WORSE:
        up_is_worse = HIGHER_IS_WORSE[signal]
    else:
        return None
    return (delta > 0) == up_is_worse


def diff_summaries(before: Dict, after: Dict,
                   rel_threshold: float = 0.01,
                   abs_threshold: float = 1e-9) -> TraceDiff:
    """Join two summary bodies; report values that moved past thresholds.

    ``rel_threshold`` is the fractional change required (relative to the
    *before* value), ``abs_threshold`` the absolute floor below which a
    change is noise by definition.  Both must be exceeded.
    """
    diff = TraceDiff()
    series_a: Dict[str, Dict] = before.get("series", {})
    series_b: Dict[str, Dict] = after.get("series", {})
    jobs_a, jobs_b = set(series_a), set(series_b)
    diff.added_jobs = sorted(jobs_b - jobs_a)
    diff.removed_jobs = sorted(jobs_a - jobs_b)
    common = sorted(jobs_a & jobs_b)
    diff.compared_jobs = len(common)

    def note(job: str, metric: str, va: float, vb: float) -> None:
        if _significant(va, vb, rel_threshold, abs_threshold):
            diff.changes.append(DiffEntry(
                job=job, metric=metric, before=va, after=vb,
                worse=_worse(metric, vb - va)))

    for job in common:
        signals_a, signals_b = series_a[job], series_b[job]
        for signal in sorted(set(signals_a) & set(signals_b)):
            sa, sb = signals_a[signal], signals_b[signal]
            note(job, f"{signal}.mean_rate",
                 float(sa.get("mean_rate", 0.0)),
                 float(sb.get("mean_rate", 0.0)))
            note(job, f"{signal}.samples",
                 float(sa.get("samples", 0)), float(sb.get("samples", 0)))
            note(job, f"{signal}.degraded",
                 float(sa.get("degraded", 0)), float(sb.get("degraded", 0)))
        for signal in sorted(set(signals_a) ^ set(signals_b)):
            side = signals_a.get(signal, signals_b.get(signal))
            va = float(side.get("mean_rate", 0.0)) \
                if signal in signals_a else 0.0
            vb = float(side.get("mean_rate", 0.0)) \
                if signal in signals_b else 0.0
            note(job, f"{signal}.mean_rate", va, vb)

    by_job_a: Dict[str, Dict] = before.get("by_job", {})
    by_job_b: Dict[str, Dict] = after.get("by_job", {})
    for job in sorted(set(by_job_a) & set(by_job_b)):
        for metric in COUNTER_METRICS:
            note(job, metric,
                 float(by_job_a[job].get(metric, 0)),
                 float(by_job_b[job].get(metric, 0)))

    names_a: Dict[str, Dict] = before.get("by_name", {})
    names_b: Dict[str, Dict] = after.get("by_name", {})
    for name in sorted(set(names_a) & set(names_b)):
        mean_a = names_a[name].get("dur_mean_us", 0.0)
        mean_b = names_b[name].get("dur_mean_us", 0.0)
        diff.duration_deltas[name] = {
            "before_mean_us": mean_a, "after_mean_us": mean_b,
            "delta_us": round(mean_b - mean_a, 3),
        }
    return diff


def format_diff(diff: TraceDiff) -> str:
    """Human-readable diff report (the CLI's output)."""
    lines = [f"compared {diff.compared_jobs} customers: "
             f"{len(diff.changed_jobs)} changed, "
             f"{len(diff.regressions)} regressions, "
             f"{len(diff.improvements)} improvements"]
    for label, jobs in (("added", diff.added_jobs),
                        ("removed", diff.removed_jobs)):
        if jobs:
            lines.append(f"{label} customers: {', '.join(jobs)}")
    if diff.changes:
        lines.append(f"{'customer':<28}{'metric':<30}{'before':>12}"
                     f"{'after':>12}  verdict")
        for entry in diff.changes:
            verdict = {True: "REGRESSED", False: "improved",
                       None: "changed"}[entry.worse]
            lines.append(f"{entry.job:<28}{entry.metric:<30}"
                         f"{entry.before:>12.6g}{entry.after:>12.6g}"
                         f"  {verdict}")
    slower = [(name, d) for name, d in diff.duration_deltas.items()
              if d["delta_us"] > 0]
    if slower:
        slower.sort(key=lambda item: -item[1]["delta_us"])
        lines.append("slower span means (wall clock, informational):")
        for name, d in slower[:5]:
            lines.append(f"  {name:<28}{d['before_mean_us']:>12.1f}us"
                         f"{d['after_mean_us']:>12.1f}us")
    return "\n".join(lines)
