"""MCDS: Multi-Core Debug Solution — trigger, trace, counter structures."""

from . import counters, debug, messages, trace, trigger
from .latency import LatencyProbe
from .mcds import Mcds

__all__ = ["Mcds", "LatencyProbe", "counters", "debug", "messages", "trace", "trigger"]
