"""Trace message formats with bit-accurate size accounting.

The paper's bandwidth argument (Section 5, last paragraph) is quantitative
over message sizes: "Instead of sampling by the external tool at least two
long counters ... only a single trace message with the counted events is
stored."  Every message therefore carries its encoded size in bits, so EMEM
occupancy, DAP bandwidth, and compression ratios can be computed exactly.

Sizes follow the spirit of Nexus/MCDS message encoding: a short header
(TCODE + source), variable-length payload in 8-bit chunks, and a
variable-length timestamp delta.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# message kinds
RATE_SAMPLE = "rate_sample"      # counter-structure sample (the paper's new message)
COUNTER_RAW = "counter_raw"      # full raw counter value (old-approach model)
IPT_BRANCH = "ipt_branch"        # program-flow discontinuity, compressed address
IPT_SYNC = "ipt_sync"            # periodic full-address synchronisation
IPT_TICK = "ipt_tick"            # cycle-accurate executed-count message
DATA_ACCESS = "data_access"      # qualified data-trace message
BUS_XFER = "bus_xfer"            # bus observation message
TRIGGER_EVT = "trigger"          # trigger/watchdog fired
OVERFLOW = "overflow"            # trace FIFO overflowed, messages lost
GAP = "gap"                      # synthesized: a span of lost messages

_HEADER_BITS = 6                 # TCODE
_SOURCE_BITS = 3                 # originating observation block / counter id


def _varlen_bits(value: int, chunk: int = 8) -> int:
    """Bits for a variable-length field packed in ``chunk``-bit groups."""
    if value < 0:
        value = -value
    needed = max(1, value.bit_length())
    groups = (needed + chunk - 1) // chunk
    return groups * chunk


@dataclass
class TraceMessage:
    """One encoded trace message."""

    kind: str
    cycle: int
    bits: int
    source: str = ""
    value: int = 0
    address: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def checksum(self) -> int:
        """CRC over the content fields, as the hardware frames it.

        The sim only materializes the CRC where it matters: a corruption
        fault stores the pre-corruption checksum in ``extra["crc"]``, and
        the EMEM verifies it at the sink — so the check is free for the
        (overwhelming) majority of messages that were never touched.
        """
        body = f"{self.kind}/{self.cycle}/{self.source}/{self.value}/" \
               f"{self.address}"
        return zlib.crc32(body.encode("utf-8"))

    def to_dict(self) -> dict:
        """Checkpoint-friendly encoding (plain scalars + a dict)."""
        return {"kind": self.kind, "cycle": self.cycle, "bits": self.bits,
                "source": self.source, "value": self.value,
                "address": self.address, "extra": dict(self.extra)}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceMessage":
        return cls(payload["kind"], payload["cycle"], payload["bits"],
                   payload["source"], payload["value"], payload["address"],
                   dict(payload["extra"]))


@dataclass
class Gap:
    """A contiguous span of trace messages lost between ``start``/``end``.

    Side-band accounting, not buffered content: gaps never occupy EMEM
    capacity (the happy path stays byte-identical), but they travel with
    the decoded stream so every profiling window overlapping one can be
    marked degraded instead of silently reporting a wrong rate.  ``kind``
    names the cause: ``wrap`` (ring eviction), ``reject`` (fill-mode
    refusal), ``corrupt`` (CRC mismatch at the sink), ``injected`` (a
    fault drill), ``dap`` (lost on the wire).
    """

    start: int
    end: int
    lost: int
    kind: str
    source: str = "emem"

    def to_message(self) -> TraceMessage:
        """The in-stream representation (a Nexus-style overflow message)."""
        bits = _HEADER_BITS + _varlen_bits(self.lost)
        return TraceMessage(GAP, self.end, bits, self.source, self.lost,
                            extra={"start": self.start, "kind": self.kind})

    def to_list(self) -> list:
        return [self.start, self.end, self.lost, self.kind, self.source]

    @classmethod
    def from_list(cls, payload) -> "Gap":
        return cls(int(payload[0]), int(payload[1]), int(payload[2]),
                   str(payload[3]), str(payload[4]))


def merge_gap_spans(gaps: List[Gap]) -> List[Tuple[int, int]]:
    """Collapse gaps into sorted, disjoint (start, end) cycle spans."""
    spans = sorted((gap.start, gap.end) for gap in gaps)
    merged: List[Tuple[int, int]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


class MessageFactory:
    """Builds messages with consistent size accounting and timestamp deltas.

    Timestamps are delta-encoded against the previous message of the same
    stream (scalable time-stamping, paper Section 3).
    """

    def __init__(self, timestamp_enabled: bool = True) -> None:
        self.timestamp_enabled = timestamp_enabled
        self._last_cycle = 0

    def _stamp_bits(self, cycle: int) -> int:
        if not self.timestamp_enabled:
            return 0
        delta = cycle - self._last_cycle
        self._last_cycle = cycle
        return _varlen_bits(delta)

    def rate_sample(self, cycle: int, counter: str, value: int) -> TraceMessage:
        """The paper's enhanced-profiling message: one counted-events value."""
        bits = (_HEADER_BITS + _SOURCE_BITS + _varlen_bits(value)
                + self._stamp_bits(cycle))
        return TraceMessage(RATE_SAMPLE, cycle, bits, counter, value)

    def counter_raw(self, cycle: int, counter: str, value: int) -> TraceMessage:
        """Old approach: a full-width counter sampled by the external tool.

        Two 32-bit counters (events + basis) must be read to form one rate
        value, so the conventional flow costs two of these per sample.
        """
        bits = _HEADER_BITS + _SOURCE_BITS + 32 + self._stamp_bits(cycle)
        return TraceMessage(COUNTER_RAW, cycle, bits, counter, value)

    def branch(self, cycle: int, source_addr: int, target_addr: int,
               last_reported: int) -> TraceMessage:
        """Program-flow message with relative address compression."""
        relative = target_addr ^ last_reported
        bits = (_HEADER_BITS + _SOURCE_BITS + _varlen_bits(relative)
                + self._stamp_bits(cycle))
        return TraceMessage(IPT_BRANCH, cycle, bits, "ptu", address=target_addr)

    def sync(self, cycle: int, address: int) -> TraceMessage:
        bits = _HEADER_BITS + _SOURCE_BITS + 32 + self._stamp_bits(cycle)
        return TraceMessage(IPT_SYNC, cycle, bits, "ptu", address=address)

    def tick(self, cycle: int, executed: int) -> TraceMessage:
        """Cycle-accurate mode: executed-instruction count for one cycle."""
        bits = _HEADER_BITS + 2 + self._stamp_bits(cycle)
        return TraceMessage(IPT_TICK, cycle, bits, "ptu", value=executed)

    def data_access(self, cycle: int, address: int, is_write: bool,
                    last_reported: int) -> TraceMessage:
        relative = address ^ last_reported
        bits = (_HEADER_BITS + _SOURCE_BITS + 1 + _varlen_bits(relative)
                + self._stamp_bits(cycle))
        return TraceMessage(DATA_ACCESS, cycle, bits, "dtu", address=address,
                            extra={"write": is_write})

    def bus_xfer(self, cycle: int, bus: str, master: str) -> TraceMessage:
        bits = _HEADER_BITS + _SOURCE_BITS + 4 + self._stamp_bits(cycle)
        return TraceMessage(BUS_XFER, cycle, bits, bus,
                            extra={"master": master})

    def trigger(self, cycle: int, name: str) -> TraceMessage:
        bits = _HEADER_BITS + _SOURCE_BITS + self._stamp_bits(cycle)
        return TraceMessage(TRIGGER_EVT, cycle, bits, name)

    def overflow(self, cycle: int, lost: int) -> TraceMessage:
        bits = _HEADER_BITS + _varlen_bits(lost) + self._stamp_bits(cycle)
        return TraceMessage(OVERFLOW, cycle, bits, "fifo", value=lost)

    def reset(self) -> None:
        self._last_cycle = 0

    def snapshot_state(self) -> dict:
        return {"last_cycle": self._last_cycle}

    def restore_state(self, state: dict) -> None:
        self._last_cycle = state["last_cycle"]
