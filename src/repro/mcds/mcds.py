"""The MCDS block: trigger, trace qualification, and trace generation.

Owns the counter structures, raw counters, trigger programs, and trace
units, and routes every generated trace message into the emulation memory.
It is a pure observer: it subscribes to event signals and the CPU trace
hook but never initiates bus traffic or changes component state, which is
what makes profiling non-intrusive (experiment E8 checks this property
cycle-exactly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, ResourceExhaustedError
from ..soc.device import Soc
from ..soc.kernel.simulator import FOREVER, Component
from . import counters as counters_mod
from .messages import MessageFactory, TraceMessage
from .trace import BusTraceUnit, DataTraceUnit, ProgramTraceUnit, TraceFanout
from .trigger import Trigger, TriggerStateMachine


class Mcds(Component):
    name = "mcds"

    #: counter structures available in hardware (the MCDS is "configurable
    #: and scalable"; this is the AUDO FUTURE sizing)
    MAX_COUNTER_STRUCTURES = 16

    def __init__(self, soc: Soc, timestamp_enabled: bool = True) -> None:
        self.soc = soc
        self.hub = soc.hub
        self.factory = MessageFactory(timestamp_enabled)
        self.rate_counters: List[counters_mod.RateCounterStructure] = []
        self.raw_counters: List[counters_mod.RawCounter] = []
        self.triggers: List[Trigger] = []
        self.state_machines: List[TriggerStateMachine] = []
        self.program_traces: List[ProgramTraceUnit] = []
        self.data_traces: List[DataTraceUnit] = []
        self.bus_traces: List[BusTraceUnit] = []
        self._cycle_basis: List[counters_mod.RateCounterStructure] = []
        self.sink = None                 # EMEM store callable, set by the ED
        self.messages_by_kind: Dict[str, int] = {}
        self.bits_by_kind: Dict[str, int] = {}

    # -- message path -----------------------------------------------------
    def deliver(self, msg: TraceMessage) -> None:
        self.messages_by_kind[msg.kind] = self.messages_by_kind.get(msg.kind, 0) + 1
        self.bits_by_kind[msg.kind] = self.bits_by_kind.get(msg.kind, 0) + msg.bits
        if self.sink is not None:
            self.sink(msg)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    @property
    def total_bits(self) -> int:
        return sum(self.bits_by_kind.values())

    # -- configuration ---------------------------------------------------------
    def add_rate_counter(self, name: str, events, resolution: int,
                         basis: str = "tc.instr_executed",
                         enabled: bool = True, width: int = 32,
                         on_overflow: str = counters_mod.SATURATE
                         ) -> counters_mod.RateCounterStructure:
        """Allocate a counter structure that emits rate-sample messages."""
        if len(self.rate_counters) >= self.MAX_COUNTER_STRUCTURES:
            raise ResourceExhaustedError(
                f"all {self.MAX_COUNTER_STRUCTURES} counter structures in use")
        structure = counters_mod.RateCounterStructure(
            name, self.hub, events, resolution, basis, enabled,
            width, on_overflow)
        structure.sink = self._on_rate_sample
        self.rate_counters.append(structure)
        if basis == counters_mod.CYCLES:
            self._cycle_basis.append(structure)
            self.wake()
        return structure

    def _on_rate_sample(self, cycle: int, structure, value: int) -> None:
        msg = self.factory.rate_sample(cycle, structure.name, value)
        if structure.last_sample_tainted is not None:
            # the counter overflowed (or a drill wrapped it) inside this
            # window: the value is untrustworthy, flag it for the decoder
            msg.extra = {"tainted": structure.last_sample_tainted}
        self.deliver(msg)

    def add_raw_counter(self, name: str, events) -> counters_mod.RawCounter:
        counter = counters_mod.RawCounter(name, self.hub, events)
        self.raw_counters.append(counter)
        return counter

    def add_trigger(self, trigger: Trigger) -> Trigger:
        self.triggers.append(trigger)
        self.wake()
        return trigger

    def add_state_machine(self, machine: TriggerStateMachine
                          ) -> TriggerStateMachine:
        self.state_machines.append(machine)
        self.wake()
        return machine

    def add_program_trace(self, core: str = "tc", cycle_accurate: bool = False,
                          sync_period: int = 256,
                          enabled: bool = True) -> ProgramTraceUnit:
        """Attach a program-trace unit to a core's trace hook.

        Both cores can be traced in parallel (paper Figure 5: "can record
        the trace of one or several cores in parallel"); their messages
        share the EMEM with a common, order-preserving timestamp stream.
        """
        ptu = ProgramTraceUnit(f"ptu.{core}", self.factory, self.deliver,
                               cycle_accurate, sync_period, enabled)
        if core == "tc":
            cpu = self.soc.cpu
        elif core == "pcp":
            cpu = self.soc.pcp
        else:
            raise ConfigurationError(
                f"program trace supports cores 'tc' and 'pcp', got {core!r}")
        if cpu.trace is None:
            cpu.trace = TraceFanout()
        cpu.trace.add(ptu)
        self.program_traces.append(ptu)
        return ptu

    def add_data_trace(self, address_range: Tuple[int, int],
                       masters: Optional[Tuple[str, ...]] = None,
                       writes_only: bool = False,
                       enabled: bool = True) -> DataTraceUnit:
        dtu = DataTraceUnit(f"dtu{len(self.data_traces)}", self.factory,
                            self.deliver, address_range, masters, writes_only,
                            enabled)
        self.soc.memory.watchers.append(dtu)
        self.data_traces.append(dtu)
        return dtu

    def add_bus_trace(self, signal: str, enabled: bool = True) -> BusTraceUnit:
        btu = BusTraceUnit(f"btu.{signal}", self.hub, signal, self.factory,
                           self.deliver, enabled)
        self.bus_traces.append(btu)
        return btu

    # -- run control (debug) ----------------------------------------------------
    def add_watchpoint(self, address_range, writes_only: bool = False,
                       masters=None, action=None):
        """Data watchpoint: halts the TriCore on a guarded access."""
        from .debug import Watchpoint
        watchpoint = Watchpoint(self.soc.cpu, address_range, writes_only,
                                masters, action)
        self.soc.memory.watchers.append(watchpoint)
        return watchpoint

    def add_breakpoint(self, address: int, length: int = 4):
        """Code breakpoint: halts the TriCore when execution reaches it."""
        from .debug import Breakpoint
        breakpoint_ = Breakpoint(self.soc.cpu, address, length)
        self.triggers.append(breakpoint_.trigger)
        self.wake()
        return breakpoint_

    # -- per-cycle work -----------------------------------------------------------
    def idle_until(self, cycle: int):
        # everything else the MCDS does is event-driven through hub
        # subscriptions and trace hooks; only cycle-basis sampling windows,
        # triggers, and trigger state machines need the clock
        if self._cycle_basis or self.triggers or self.state_machines:
            return None
        return FOREVER

    def observable_state(self) -> int:
        # trace bytes for the strict-equivalence auditor: a quiescent tick
        # must not generate messages (totals alone would miss delivery)
        return self.total_messages + self.total_bits

    def tick(self, cycle: int) -> None:
        for structure in self._cycle_basis:
            structure.on_cycle(cycle)
        for trigger in self.triggers:
            trigger.evaluate(cycle)
        for machine in self.state_machines:
            machine.evaluate(cycle)

    def reset(self) -> None:
        self.factory.reset()
        for structure in self.rate_counters:
            structure.reset()
        for counter in self.raw_counters:
            counter.reset()
        for trigger in self.triggers:
            trigger.reset()
        for machine in self.state_machines:
            machine.reset()
        for unit in (self.program_traces + self.data_traces + self.bus_traces):
            unit.reset()
        self.messages_by_kind.clear()
        self.bits_by_kind.clear()

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "factory": self.factory.snapshot_state(),
            "rate_counters": [s.snapshot_state() for s in self.rate_counters],
            "raw_counters": [c.snapshot_state() for c in self.raw_counters],
            "triggers": [t.snapshot_state() for t in self.triggers],
            "state_machines": [m.snapshot_state()
                               for m in self.state_machines],
            "program_traces": [u.snapshot_state()
                               for u in self.program_traces],
            "data_traces": [u.snapshot_state() for u in self.data_traces],
            "bus_traces": [u.snapshot_state() for u in self.bus_traces],
            "messages_by_kind": dict(self.messages_by_kind),
            "bits_by_kind": dict(self.bits_by_kind),
        }

    def restore_state(self, state: dict) -> None:
        self.factory.restore_state(state["factory"])
        for structure, entry in zip(self.rate_counters,
                                    state["rate_counters"]):
            structure.restore_state(entry)
        for counter, entry in zip(self.raw_counters, state["raw_counters"]):
            counter.restore_state(entry)
        for trigger, entry in zip(self.triggers, state["triggers"]):
            trigger.restore_state(entry)
        for machine, entry in zip(self.state_machines,
                                  state["state_machines"]):
            machine.restore_state(entry)
        for unit, entry in zip(self.program_traces, state["program_traces"]):
            unit.restore_state(entry)
        for unit, entry in zip(self.data_traces, state["data_traces"]):
            unit.restore_state(entry)
        for unit, entry in zip(self.bus_traces, state["bus_traces"]):
            unit.restore_state(entry)
        self.messages_by_kind = dict(state["messages_by_kind"])
        self.bits_by_kind = dict(state["bits_by_kind"])
