"""MCDS counter structures: on-chip rate generation.

The heart of the Enhanced System Profiling method (paper Section 5): one
counter accumulates occurrences of an event source, another counts the
*resolution basis* — clock cycles for IPC, executed instructions for every
other event rate.  Each time the basis counter reaches the configured
resolution, the event count is emitted as a single compact trace message
and both counters reset.

A structure can be disabled and re-enabled at runtime by trigger logic;
that is what "connect multiple counter structures" means — a
high-resolution structure armed only while a low-resolution one crosses a
threshold (see :mod:`repro.core.profiling.multires`).

Hardware counters are finite: a ``width``-bit event counter that overflows
within one resolution window either **saturates** at its maximum,
**wraps** modulo 2^width, or **raises** — explicit, configurable
semantics instead of Python's silent unbounded ints.  Either way the
affected sample is *tainted* and the profiling layer marks its window
degraded.  Fault site: ``counter.wrap``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..errors import ConfigurationError, CounterSaturationError
from ..faults import injector as _fi
from ..faults.injector import fault_point
from ..soc.kernel.hub import EventHub

#: pseudo basis meaning "per clock cycle" (IPC-style measurement)
CYCLES = "cycles"

#: overflow disciplines for a finite-width event counter
SATURATE = "saturate"
WRAP = "wrap"
RAISE = "raise"


class RateCounterStructure:
    """One event counter + one resolution-basis counter + message emit."""

    def __init__(self, name: str, hub: EventHub, events: Iterable[str],
                 resolution: int, basis: str = "tc.instr_executed",
                 enabled: bool = True, width: int = 32,
                 on_overflow: str = SATURATE) -> None:
        if resolution < 1:
            raise ConfigurationError("resolution must be >= 1")
        if not 1 <= width <= 64:
            raise ConfigurationError("counter width must be within [1, 64]")
        if on_overflow not in (SATURATE, WRAP, RAISE):
            raise ConfigurationError(
                f"unknown overflow mode {on_overflow!r}; expected "
                f"'{SATURATE}', '{WRAP}' or '{RAISE}'")
        self.name = name
        self.hub = hub
        self.events = tuple(events)
        self.basis = basis
        self.resolution = resolution
        self.enabled = enabled
        self.width = width
        self.on_overflow = on_overflow
        self._max = (1 << width) - 1
        self.event_count = 0
        self.basis_count = 0
        self.samples_emitted = 0
        self.saturations = 0
        self.wraps = 0
        #: value of the most recent emitted sample — comparator input
        self.last_sample: Optional[int] = None
        #: overflow cause ("saturate"/"wrap"/"injected") of the most recent
        #: sample, or None if it was clean — read by the MCDS to taint the
        #: emitted message
        self.last_sample_tainted: Optional[str] = None
        self._taint: Optional[str] = None
        #: sink receiving ``(cycle, structure, value)`` on every sample
        self.sink: Optional[Callable[[int, "RateCounterStructure", int], None]] = None

        for event in self.events:
            hub.subscribe(event, self._on_event)
        if basis != CYCLES:
            hub.subscribe(basis, self._on_basis)

    # -- hub callbacks -----------------------------------------------------
    def _on_event(self, count: int) -> None:
        if not self.enabled:
            return
        self.event_count += count
        if self.event_count > self._max:
            if self.on_overflow == SATURATE:
                self.event_count = self._max
                self.saturations += 1
                self._taint = SATURATE
            elif self.on_overflow == WRAP:
                self.event_count &= self._max
                self.wraps += 1
                self._taint = WRAP
            else:
                raise CounterSaturationError(
                    f"counter {self.name!r} overflowed its {self.width}-bit "
                    f"range within one resolution window")

    def _on_basis(self, count: int) -> None:
        if not self.enabled:
            return
        self.basis_count += count
        while self.basis_count >= self.resolution:
            self._sample()

    def on_cycle(self, cycle: int) -> None:
        """Called by the MCDS once per cycle; drives cycle-basis structures."""
        if self.basis == CYCLES and self.enabled:
            self.basis_count += 1
            if self.basis_count >= self.resolution:
                self._sample()

    # -- sampling -------------------------------------------------------------
    def _sample(self) -> None:
        value = self.event_count
        if _fi._active is not None:
            action = fault_point("counter.wrap", counter=self.name,
                                 sample=self.samples_emitted)
            if action is not None:
                # the hardware counter wrapped mid-window: the emitted value
                # is the truncated remainder, and the sample is tainted
                value &= int(action.params.get("mask", 0xFF))
                self.wraps += 1
                self._taint = "injected"
        self.last_sample = value
        self.last_sample_tainted = self._taint
        self._taint = None
        self.samples_emitted += 1
        self.event_count = 0
        self.basis_count -= self.resolution
        if self.sink is not None:
            self.sink(self.hub.cycle, self, value)

    # -- trigger-side control ----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Disable and clear partial counts (a fresh window on re-arm)."""
        self.enabled = False
        self.event_count = 0
        self.basis_count = 0

    def detach(self) -> None:
        """Unsubscribe from the hub (free the counter resources)."""
        for event in self.events:
            self.hub.unsubscribe(event, self._on_event)
        if self.basis != CYCLES:
            self.hub.unsubscribe(self.basis, self._on_basis)

    def reset(self) -> None:
        self.event_count = 0
        self.basis_count = 0
        self.samples_emitted = 0
        self.saturations = 0
        self.wraps = 0
        self.last_sample = None
        self.last_sample_tainted = None
        self._taint = None

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"enabled": self.enabled,
                "event_count": self.event_count,
                "basis_count": self.basis_count,
                "samples_emitted": self.samples_emitted,
                "saturations": self.saturations,
                "wraps": self.wraps,
                "last_sample": self.last_sample,
                "last_sample_tainted": self.last_sample_tainted,
                "taint": self._taint}

    def restore_state(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self.event_count = state["event_count"]
        self.basis_count = state["basis_count"]
        self.samples_emitted = state["samples_emitted"]
        self.saturations = state["saturations"]
        self.wraps = state["wraps"]
        self.last_sample = state["last_sample"]
        self.last_sample_tainted = state["last_sample_tainted"]
        self._taint = state["taint"]


class RawCounter:
    """A plain free-running event counter (no rate generation).

    Models the conventional approach the paper improves upon: the external
    tool periodically samples two such counters over the debug interface to
    compute a rate — the costly baseline of experiment E4.  Also used as a
    trigger input ("counters" in the MCDS trigger block).
    """

    def __init__(self, name: str, hub: EventHub, events: Iterable[str]) -> None:
        self.name = name
        self.hub = hub
        self.events = tuple(events)
        self.value = 0
        for event in self.events:
            hub.subscribe(event, self._on_event)

    def _on_event(self, count: int) -> None:
        self.value += count

    def detach(self) -> None:
        for event in self.events:
            self.hub.unsubscribe(event, self._on_event)

    def reset(self) -> None:
        self.value = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"value": self.value}

    def restore_state(self, state: dict) -> None:
        self.value = state["value"]
