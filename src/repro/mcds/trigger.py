"""MCDS trigger block: comparators, boolean expressions, state machines.

Paper Section 3: "MCDS allows to define very complex conditions using
Boolean expressions, counters and state machines.  It is for instance
possible to trigger on events not happening in a defined time window."

Conditions are small objects with an ``evaluate(cycle) -> bool`` method;
the MCDS evaluates the installed trigger programs once per cycle and runs
their actions on rising edges.  Actions are plain callables — enable a
counter structure, start/stop a trace unit, freeze the EMEM capture — so
trigger programs compose without a dedicated action language.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from ..faults import injector as _fi
from ..faults.injector import fault_point
from ..obs import runtime as _obs
from ..soc.kernel.hub import EventHub

BELOW = "below"
ABOVE = "above"


class Condition:
    """Base class: a boolean signal evaluated every cycle."""

    def evaluate(self, cycle: int) -> bool:
        raise NotImplementedError

    # -- checkpoint -----------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Mutable evaluation state (stateless conditions return ``{}``)."""
        return {}

    def restore_state(self, state: dict) -> None:
        pass

    # -- composition sugar ---------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return BoolExpr(all, [self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return BoolExpr(any, [self, other])

    def __invert__(self) -> "Condition":
        return NotExpr(self)


class RateThreshold(Condition):
    """Compares the latest sample of a rate counter against a threshold.

    This is the paper's coupling condition: "the IPC rate measurement with
    the high resolution ... is only activated when the IPC rate with the low
    resolution is below a configurable threshold."
    """

    def __init__(self, structure, threshold: int, direction: str = BELOW) -> None:
        if direction not in (BELOW, ABOVE):
            raise ConfigurationError("direction must be 'below' or 'above'")
        self.structure = structure
        self.threshold = threshold
        self.direction = direction

    def evaluate(self, cycle: int) -> bool:
        sample = self.structure.last_sample
        if sample is None:
            return False
        if self.direction == BELOW:
            return sample < self.threshold
        return sample > self.threshold


class CountThreshold(Condition):
    """True once a raw event counter passes a threshold (one-shot arming)."""

    def __init__(self, counter, threshold: int) -> None:
        self.counter = counter
        self.threshold = threshold

    def evaluate(self, cycle: int) -> bool:
        return self.counter.value >= self.threshold


class SignalActive(Condition):
    """True in any cycle in which the named event signal occurred."""

    def __init__(self, hub: EventHub, signal: str) -> None:
        self.hub = hub
        self.signal = signal
        self._seen_cycle = -1
        hub.subscribe(signal, self._on_event)

    def _on_event(self, count: int) -> None:
        self._seen_cycle = self.hub.cycle

    def evaluate(self, cycle: int) -> bool:
        return self._seen_cycle == cycle

    def detach(self) -> None:
        self.hub.unsubscribe(self.signal, self._on_event)

    def snapshot_state(self) -> dict:
        return {"seen_cycle": self._seen_cycle}

    def restore_state(self, state: dict) -> None:
        self._seen_cycle = state["seen_cycle"]


class PcInRange(Condition):
    """True while a core's program counter lies in an address window.

    The hardware analogue is the trace-qualification address comparators in
    front of the observation blocks: combined with a trigger that starts
    and stops a trace unit, it implements "trace only function X".
    """

    def __init__(self, core, lo: int, hi: int) -> None:
        if lo >= hi:
            raise ConfigurationError("address window must be non-empty")
        self.core = core
        self.lo = lo
        self.hi = hi

    def evaluate(self, cycle: int) -> bool:
        return self.lo <= self.core.pc < self.hi


class WindowWatchdog(Condition):
    """Fires when an event does NOT happen within a time window.

    The paper's example of a complex condition.  The watchdog re-arms on
    every occurrence of the event; if ``window`` cycles elapse without one,
    the condition becomes true for one evaluation.
    """

    def __init__(self, hub: EventHub, signal: str, window: int) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1 cycle")
        self.hub = hub
        self.signal = signal
        self.window = window
        self._deadline = window
        self.timeouts = 0
        hub.subscribe(signal, self._on_event)

    def _on_event(self, count: int) -> None:
        self._deadline = self.hub.cycle + self.window

    def evaluate(self, cycle: int) -> bool:
        if cycle >= self._deadline:
            self.timeouts += 1
            self._deadline = cycle + self.window  # re-arm after firing
            return True
        return False

    def detach(self) -> None:
        self.hub.unsubscribe(self.signal, self._on_event)

    def snapshot_state(self) -> dict:
        return {"deadline": self._deadline, "timeouts": self.timeouts}

    def restore_state(self, state: dict) -> None:
        self._deadline = state["deadline"]
        self.timeouts = state["timeouts"]


class BoolExpr(Condition):
    """AND/OR over sub-conditions (``combiner`` is ``all`` or ``any``)."""

    def __init__(self, combiner: Callable, conditions: Iterable[Condition]) -> None:
        self.combiner = combiner
        self.conditions = list(conditions)

    def evaluate(self, cycle: int) -> bool:
        results = [c.evaluate(cycle) for c in self.conditions]
        return self.combiner(results)

    def snapshot_state(self) -> dict:
        return {"children": [c.snapshot_state() for c in self.conditions]}

    def restore_state(self, state: dict) -> None:
        for condition, entry in zip(self.conditions, state["children"]):
            condition.restore_state(entry)


class NotExpr(Condition):
    def __init__(self, condition: Condition) -> None:
        self.condition = condition

    def evaluate(self, cycle: int) -> bool:
        return not self.condition.evaluate(cycle)

    def snapshot_state(self) -> dict:
        return {"inner": self.condition.snapshot_state()}

    def restore_state(self, state: dict) -> None:
        self.condition.restore_state(state["inner"])


class Trigger:
    """Edge-detected condition with enter/leave actions."""

    def __init__(self, name: str, condition: Condition,
                 on_enter: Optional[Callable[[int], None]] = None,
                 on_leave: Optional[Callable[[int], None]] = None) -> None:
        self.name = name
        self.condition = condition
        self.on_enter = on_enter
        self.on_leave = on_leave
        self.active = False
        self.fire_count = 0
        self.lost_injected = 0
        self.spurious_injected = 0

    def evaluate(self, cycle: int) -> None:
        state = self.condition.evaluate(cycle)
        if _fi._active is not None:
            if state and fault_point("trigger.lost", trigger=self.name,
                                     cycle=cycle) is not None:
                state = False
                self.lost_injected += 1
            elif not state and fault_point("trigger.spurious",
                                           trigger=self.name,
                                           cycle=cycle) is not None:
                state = True
                self.spurious_injected += 1
        if state and not self.active:
            self.active = True
            self.fire_count += 1
            tel = _obs._active       # rising edges only: the rare path
            if tel is not None:
                tel.trigger_fired(self.name, cycle)
            if self.on_enter is not None:
                self.on_enter(cycle)
        elif not state and self.active:
            self.active = False
            if self.on_leave is not None:
                self.on_leave(cycle)

    def reset(self) -> None:
        self.active = False
        self.fire_count = 0
        self.lost_injected = 0
        self.spurious_injected = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"active": self.active, "fire_count": self.fire_count,
                "lost_injected": self.lost_injected,
                "spurious_injected": self.spurious_injected,
                "condition": self.condition.snapshot_state()}

    def restore_state(self, state: dict) -> None:
        self.active = state["active"]
        self.fire_count = state["fire_count"]
        self.lost_injected = state["lost_injected"]
        self.spurious_injected = state["spurious_injected"]
        self.condition.restore_state(state["condition"])


class TriggerStateMachine:
    """Explicit state machine over conditions (sequenced trigger programs).

    ``transitions`` maps ``(state, condition)`` to ``(next_state, action)``;
    the first matching transition per cycle wins.  Used for staged captures:
    e.g. *armed* → (anomaly seen) → *capturing* → (N samples) → *frozen*.
    """

    def __init__(self, name: str, initial: str) -> None:
        self.name = name
        self.initial = initial
        self.state = initial
        self._transitions: List[tuple] = []
        self.transitions_taken = 0

    def add_transition(self, state: str, condition: Condition, next_state: str,
                       action: Optional[Callable[[int], None]] = None) -> None:
        self._transitions.append((state, condition, next_state, action))

    def evaluate(self, cycle: int) -> None:
        for state, condition, next_state, action in self._transitions:
            if state == self.state and condition.evaluate(cycle):
                self.state = next_state
                self.transitions_taken += 1
                if action is not None:
                    action(cycle)
                return

    def reset(self) -> None:
        self.state = self.initial
        self.transitions_taken = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"state": self.state,
                "transitions_taken": self.transitions_taken,
                "conditions": [condition.snapshot_state()
                               for _, condition, _, _ in self._transitions]}

    def restore_state(self, state: dict) -> None:
        self.state = state["state"]
        self.transitions_taken = state["transitions_taken"]
        for (_, condition, _, _), entry in zip(self._transitions,
                                               state["conditions"]):
            condition.restore_state(entry)
