"""Trace units: program flow, data access, and bus observation.

The MCDS observes one or several cores in parallel (paper Figure 5) plus
the multi-master buses.  Program trace is compressed: only control-flow
discontinuities produce messages (with relative address encoding and
periodic full-address syncs), and an optional cycle-accurate mode adds
per-cycle executed-instruction ticks — "to the extent which is possible for
a pipelined, multi-scalar, speculative processor" (Section 3).

Trace qualification (address-range filters on the data side, on/off control
from the trigger block everywhere) keeps bandwidth inside the EMEM/DAP
budget.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .messages import MessageFactory


class TraceFanout:
    """Duplicates the CPU trace hook to several sinks (PTU + profilers)."""

    def __init__(self) -> None:
        self.sinks: List = []

    def add(self, sink) -> None:
        self.sinks.append(sink)

    def on_cycle(self, cycle: int, start_pc: int, issued: int) -> None:
        for sink in self.sinks:
            sink.on_cycle(cycle, start_pc, issued)

    def on_discontinuity(self, cycle: int, src: int, dst: int, kind: str) -> None:
        for sink in self.sinks:
            sink.on_discontinuity(cycle, src, dst, kind)


class ProgramTraceUnit:
    """Compressed program-flow trace for one core."""

    def __init__(self, name: str, factory: MessageFactory, deliver,
                 cycle_accurate: bool = False, sync_period: int = 256,
                 enabled: bool = True) -> None:
        self.name = name
        self.factory = factory
        self.deliver = deliver          # callable(msg) — the MCDS message path
        self.cycle_accurate = cycle_accurate
        self.sync_period = sync_period
        self.enabled = enabled
        self._last_reported = 0
        self._since_sync = 0
        self.instructions_traced = 0
        self.messages = 0
        self.bits = 0

    # -- CPU hook ------------------------------------------------------------
    def on_cycle(self, cycle: int, start_pc: int, issued: int) -> None:
        if not self.enabled:
            return
        self.instructions_traced += issued
        if self.cycle_accurate:
            msg = self.factory.tick(cycle, issued)
            self._account(msg)

    def on_discontinuity(self, cycle: int, src: int, dst: int, kind: str) -> None:
        if not self.enabled:
            return
        self._since_sync += 1
        if self._since_sync >= self.sync_period:
            msg = self.factory.sync(cycle, dst)
            self._since_sync = 0
        else:
            msg = self.factory.branch(cycle, src, dst, self._last_reported)
        self._last_reported = dst
        self._account(msg)

    def _account(self, msg) -> None:
        self.messages += 1
        self.bits += msg.bits
        self.deliver(msg)

    # -- trigger-side control -----------------------------------------------------
    def start(self, cycle: int = 0) -> None:
        self.enabled = True

    def stop(self, cycle: int = 0) -> None:
        self.enabled = False

    @property
    def bits_per_instruction(self) -> float:
        if self.instructions_traced == 0:
            return 0.0
        return self.bits / self.instructions_traced

    def reset(self) -> None:
        self._last_reported = 0
        self._since_sync = 0
        self.instructions_traced = 0
        self.messages = 0
        self.bits = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"enabled": self.enabled,
                "last_reported": self._last_reported,
                "since_sync": self._since_sync,
                "instructions_traced": self.instructions_traced,
                "messages": self.messages, "bits": self.bits}

    def restore_state(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self._last_reported = state["last_reported"]
        self._since_sync = state["since_sync"]
        self.instructions_traced = state["instructions_traced"]
        self.messages = state["messages"]
        self.bits = state["bits"]


class DataTraceUnit:
    """Qualified data-access trace (selected address ranges, selected masters).

    Installed as a memory-system watcher; qualification happens here, so an
    idle unit with a narrow range costs almost nothing — the hardware
    analogue is the trace-qualification comparators in front of the DTU.
    """

    def __init__(self, name: str, factory: MessageFactory, deliver,
                 address_range: Tuple[int, int],
                 masters: Optional[Tuple[str, ...]] = None,
                 writes_only: bool = False, enabled: bool = True) -> None:
        self.name = name
        self.factory = factory
        self.deliver = deliver
        self.lo, self.hi = address_range
        if self.lo >= self.hi:
            raise ValueError("address range must be non-empty")
        self.masters = masters
        self.writes_only = writes_only
        self.enabled = enabled
        self._last_reported = 0
        self.messages = 0
        self.bits = 0

    def __call__(self, cycle: int, addr: int, is_write: bool, master: str) -> None:
        if not self.enabled:
            return
        if not self.lo <= addr < self.hi:
            return
        if self.writes_only and not is_write:
            return
        if self.masters is not None and master not in self.masters:
            return
        msg = self.factory.data_access(cycle, addr, is_write,
                                       self._last_reported)
        self._last_reported = addr
        self.messages += 1
        self.bits += msg.bits
        self.deliver(msg)

    def start(self, cycle: int = 0) -> None:
        self.enabled = True

    def stop(self, cycle: int = 0) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._last_reported = 0
        self.messages = 0
        self.bits = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"enabled": self.enabled,
                "last_reported": self._last_reported,
                "messages": self.messages, "bits": self.bits}

    def restore_state(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self._last_reported = state["last_reported"]
        self.messages = state["messages"]
        self.bits = state["bits"]


class BusTraceUnit:
    """Bus observation: one message per observed transfer signal.

    "The onchip multi-master system buses ... can also be traced
    independently from the cores" (Section 3) — this is how DMA activity
    becomes visible without passing through a CPU.
    """

    def __init__(self, name: str, hub, signal: str, factory: MessageFactory,
                 deliver, enabled: bool = True) -> None:
        self.name = name
        self.hub = hub
        self.signal = signal
        self.factory = factory
        self.deliver = deliver
        self.enabled = enabled
        self.messages = 0
        self.bits = 0
        hub.subscribe(signal, self._on_event)

    def _on_event(self, count: int) -> None:
        if not self.enabled:
            return
        msg = self.factory.bus_xfer(self.hub.cycle, self.signal, "-")
        self.messages += 1
        self.bits += msg.bits
        self.deliver(msg)

    def start(self, cycle: int = 0) -> None:
        self.enabled = True

    def stop(self, cycle: int = 0) -> None:
        self.enabled = False

    def detach(self) -> None:
        self.hub.unsubscribe(self.signal, self._on_event)

    def reset(self) -> None:
        self.messages = 0
        self.bits = 0

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"enabled": self.enabled,
                "messages": self.messages, "bits": self.bits}

    def restore_state(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self.messages = state["messages"]
        self.bits = state["bits"]
