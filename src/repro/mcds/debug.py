"""Debug run control: watchpoints and breakpoints.

The MCDS is first a *debug* solution ("accurate tracing of
concurrency-related bugs, including shared variable-access problems",
paper Section 3).  Beyond tracing, its comparators drive run control: a
watchpoint halts the core when a guarded address is touched, a breakpoint
when execution reaches a code window.

Run control is the one *intentionally* intrusive MCDS function — it exists
to stop the system — so it is kept strictly separate from the profiling
path, and `debug_halt` freezes the core against interrupts too (unlike the
application-level ``halt`` idle state).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..soc.kernel.hub import EventHub
from .trigger import Condition, PcInRange, Trigger


class Watchpoint:
    """Halts (or notifies) when a data access touches a guarded range."""

    def __init__(self, cpu, address_range: Tuple[int, int],
                 writes_only: bool = False,
                 masters: Optional[Tuple[str, ...]] = None,
                 action: Optional[Callable[[int, int, str], None]] = None
                 ) -> None:
        self.cpu = cpu
        self.lo, self.hi = address_range
        if self.lo >= self.hi:
            raise ValueError("address range must be non-empty")
        self.writes_only = writes_only
        self.masters = masters
        self.action = action
        self.hits: List[Tuple[int, int, str]] = []
        self.enabled = True

    # memory-system watcher signature
    def __call__(self, cycle: int, addr: int, is_write: bool,
                 master: str) -> None:
        if not self.enabled:
            return
        if not self.lo <= addr < self.hi:
            return
        if self.writes_only and not is_write:
            return
        if self.masters is not None and master not in self.masters:
            return
        self.hits.append((cycle, addr, master))
        if self.action is not None:
            self.action(cycle, addr, master)
        else:
            self.cpu.debug_halt = True

    @property
    def hit_count(self) -> int:
        return len(self.hits)


class Breakpoint:
    """Halts the core once execution enters a code window.

    Evaluated by the MCDS each cycle (trace-based break: the core stops at
    the end of the cycle in which it entered the window).
    """

    def __init__(self, cpu, address: int, length: int = 4) -> None:
        self.cpu = cpu
        self.condition = PcInRange(cpu, address, address + length)
        self.trigger = Trigger(
            f"bp@0x{address:08x}", self.condition,
            on_enter=self._on_hit)
        self.hit_cycles: List[int] = []

    def _on_hit(self, cycle: int) -> None:
        self.hit_cycles.append(cycle)
        self.cpu.debug_halt = True

    @property
    def hit_count(self) -> int:
        return len(self.hit_cycles)


def resume(cpu) -> None:
    """Release a debug-halted core (the tool's 'go' command)."""
    cpu.debug_halt = False
