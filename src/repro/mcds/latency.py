"""Event-to-event latency measurement on MCDS timestamps.

A classic use of the trigger block plus cycle-level timestamping (paper
Section 3: "conserving the order of events down to cycle level"): measure
the distribution of the delay between a *start* event (a service request
being raised by a peripheral) and an *end* event (the core entering the
handler).  Interrupt-entry latency is the quantity a hard-real-time
integrator signs off on, and contention from DMA or a second core shows up
directly in its tail.
"""

from __future__ import annotations

from typing import List, Optional

from ..soc.kernel.hub import EventHub


class LatencyProbe:
    """Records start→end latencies between two event signals.

    Pairs each start with the *next* end (single-outstanding semantics,
    correct when the start source is the highest-priority requester, e.g.
    the crank-angle interrupt).  ``max_pending`` bounds the start queue so
    a misconfigured probe cannot grow without limit.
    """

    def __init__(self, hub: EventHub, start_signal: str, end_signal: str,
                 max_pending: int = 64) -> None:
        self.hub = hub
        self.start_signal = start_signal
        self.end_signal = end_signal
        self.max_pending = max_pending
        self.samples: List[int] = []
        self._pending: List[int] = []
        self.dropped_starts = 0
        hub.subscribe(start_signal, self._on_start)
        hub.subscribe(end_signal, self._on_end)

    def _on_start(self, count: int) -> None:
        for _ in range(count):
            if len(self._pending) >= self.max_pending:
                self.dropped_starts += 1
            else:
                self._pending.append(self.hub.cycle)

    def _on_end(self, count: int) -> None:
        for _ in range(count):
            if self._pending:
                self.samples.append(self.hub.cycle - self._pending.pop(0))

    # -- statistics -----------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.samples)

    def min(self) -> Optional[int]:
        return min(self.samples) if self.samples else None

    def max(self) -> Optional[int]:
        return max(self.samples) if self.samples else None

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> Optional[int]:
        """p in [0, 100]; nearest-rank percentile."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> str:
        if not self.samples:
            return f"{self.start_signal} -> {self.end_signal}: no samples"
        return (f"{self.start_signal} -> {self.end_signal}: "
                f"n={self.count} min={self.min()} mean={self.mean():.1f} "
                f"p95={self.percentile(95)} max={self.max()} cycles")

    def detach(self) -> None:
        self.hub.unsubscribe(self.start_signal, self._on_start)
        self.hub.unsubscribe(self.end_signal, self._on_end)

    def reset(self) -> None:
        self.samples.clear()
        self._pending.clear()
        self.dropped_starts = 0
