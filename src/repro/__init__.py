"""repro: reproduction of Infineon's system performance optimization
methodology (Mayer & Hellwig, DATE 2008).

Public API tiers:

* :mod:`repro.soc` — the TriCore-like product-chip timing simulator.
* :mod:`repro.mcds` / :mod:`repro.ed` — the Emulation Device substrate
  (trace, triggers, counters, EMEM, DAP).
* :mod:`repro.core` — the paper's contribution: Enhanced System Profiling
  and the analytic architecture-optimization methodology.
* :mod:`repro.workloads` — synthetic automotive application software.
"""

__version__ = "0.1.0"
