"""Emulation Device: the product chip plus the Emulation Extension Chip.

Models the ED concept of paper Section 3: "an unchanged product chip part
extended by several hundred Kbytes of overlay RAM and a powerful trigger
and trace unit (Emulation Extension Chip EEC)".  The product chip part is a
plain :class:`~repro.soc.device.Soc`; the EEC adds the MCDS, the EMEM, and
the DAP access path.  Nothing in the EEC feeds timing back into the product
part — profiling is non-intrusive by construction, and experiment E8
verifies it cycle-exactly.

The calibration overlay is the one *deliberate* intrusion: mapping a flash
range into EMEM changes data-access timing, exactly as it does on silicon.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from ..mcds.mcds import Mcds
from ..mcds.messages import Gap
from ..soc.config import SoCConfig, tc1767_config, tc1797_config
from ..soc.cpu.isa import Program
from ..soc.device import Soc
from .dap import DapInterface
from .emem import EmulationMemory, RING


@dataclass
class EdConfig:
    """Emulation Device configuration: product part + EEC sizing."""

    soc: SoCConfig = dataclasses.field(default_factory=tc1797_config)
    emem_kb: int = 512            # TC1797ED: 512 KB, TC1767ED: 256 KB
    calibration_kb: int = 0       # EMEM share reserved for overlay RAM
    emem_mode: str = RING
    dap_bandwidth_mbps: float = 16.0
    dap_streaming: bool = False
    timestamps: bool = True


def tc1797ed_config() -> EdConfig:
    return EdConfig(soc=tc1797_config(), emem_kb=512)


def tc1767ed_config() -> EdConfig:
    return EdConfig(soc=tc1767_config(), emem_kb=256)


#: EEC blocks of Figure 4, for topology checks
EEC_BLOCKS = ("mcds", "emem", "bbb", "ecerberus", "dap", "mli_bridge")

#: the tool access paths of Figure 4
ACCESS_PATHS = (
    ("dap", "ecerberus", "bbb", "emem"),           # external tool path
    ("tricore", "mli_bridge", "bbb", "emem"),      # monitor-routine path
)


class EmulationDevice:
    """A TC17x7ED-style device: SoC + EEC, ready for profiling sessions."""

    def __init__(self, config: Optional[EdConfig] = None,
                 seed: int = 2008) -> None:
        self.config = config if config is not None else tc1797ed_config()
        self.soc = Soc(self.config.soc, seed)
        self.mcds = Mcds(self.soc, self.config.timestamps)
        self.emem = EmulationMemory(self.config.emem_kb,
                                    self.config.calibration_kb,
                                    self.config.emem_mode)
        self.mcds.sink = self.emem.store
        self.dap = DapInterface(self.emem, self.config.dap_bandwidth_mbps,
                                self.config.soc.cpu.frequency_mhz,
                                self.config.dap_streaming)
        self.soc.add_observer(self.mcds)
        self.soc.add_observer(self.dap)
        # the EMEM is a passive store, not a clocked component; it rides
        # checkpoints as an attached state provider
        self.soc.sim.attach_state("emem", self.emem)

    # -- product-part passthroughs -------------------------------------------
    @property
    def cpu(self):
        return self.soc.cpu

    @property
    def pcp(self):
        return self.soc.pcp

    @property
    def hub(self):
        return self.soc.hub

    @property
    def cycle(self) -> int:
        return self.soc.cycle

    def load_program(self, program: Program) -> None:
        self.soc.load_program(program)

    def run(self, cycles: int) -> None:
        self.soc.run(cycles)

    def oracle(self) -> dict:
        return self.soc.oracle()

    # -- checkpoint ----------------------------------------------------------
    def checkpoint(self, path: str, meta: Optional[dict] = None) -> str:
        """Write the full device state (SoC + EEC) to a checkpoint file."""
        body = dict(meta or {})
        body.setdefault("kind", "emulation_device")
        return self.soc.checkpoint(path, body)

    def restore(self, path: str) -> dict:
        """Load a checkpoint into this (same-config, same-seed) device."""
        return self.soc.restore(path)

    # -- calibration overlay -------------------------------------------------------
    def map_calibration_overlay(self, flash_addr: int, size: int) -> None:
        """Redirect a flash range into EMEM overlay RAM (tool-writable).

        Requires a reserved calibration share large enough for the range.
        """
        if size > self.emem.calibration_kb * 1024:
            raise ConfigurationError(
                f"overlay of {size} bytes exceeds the reserved calibration "
                f"share ({self.emem.calibration_kb} KB); call "
                f"reserve_calibration first")
        self.soc.map.add_overlay(flash_addr, size)

    def reserve_calibration(self, kb: int) -> None:
        self.emem.reserve_calibration(kb)

    # -- degradation accounting ----------------------------------------------
    def trace_gaps(self) -> List[Gap]:
        """Every lost-message span across the EEC, in cycle order."""
        return sorted(self.emem.gaps + self.dap.gaps,
                      key=lambda g: (g.start, g.end))

    # -- topology (Figures 2/4/5) ----------------------------------------------------
    def block_inventory(self) -> List[str]:
        return self.soc.block_inventory() + list(EEC_BLOCKS)

    def access_paths(self):
        return ACCESS_PATHS

    def reset(self) -> None:
        self.soc.reset()
        self.mcds.reset()
        self.emem.reset()
        self.dap.reset()
