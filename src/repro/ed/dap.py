"""DAP/JTAG tool interface: the bandwidth-limited drain.

"The bandwidth of the tool interface does not scale with the CPU frequency
and ... the sizes of on chip trace memories are limited" (paper Section 5).
The DAP is modelled as a fixed bit-rate channel: its per-CPU-cycle budget
*shrinks* as the CPU clock rises, which is exactly the scaling pressure
experiment E4 reproduces.

Two usage modes:

* **post-mortem** — the run fills the EMEM; afterwards ``download_all``
  reports the upload and how long it would take on the wire;
* **streaming** — each cycle the DAP drains whole messages up to its
  accumulated bit credit; if producers outrun it the EMEM fills and
  messages are lost, which the profiling session reports as overflow.
"""

from __future__ import annotations

from typing import List, Tuple

from ..mcds.messages import TraceMessage
from ..soc.kernel.simulator import Component
from .emem import EmulationMemory


class DapInterface(Component):
    name = "dap"

    def __init__(self, emem: EmulationMemory, bandwidth_mbps: float,
                 cpu_frequency_mhz: int, streaming: bool = False) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.emem = emem
        self.bandwidth_mbps = bandwidth_mbps
        self.cpu_frequency_mhz = cpu_frequency_mhz
        self.streaming = streaming
        #: bits the wire can move per CPU cycle
        self.bits_per_cycle = bandwidth_mbps / cpu_frequency_mhz
        self._credit = 0.0
        self.received: List[TraceMessage] = []
        self.bits_transferred = 0

    def consume_wire(self, bits: int) -> None:
        """Account foreign traffic (calibration writes, register polls).

        The DAP is one wire: tool-initiated writes spend the same budget
        the trace drain would have used, so heavy calibration slows the
        streaming download — visible as EMEM back-pressure.
        """
        self._credit -= bits
        self.bits_transferred += bits

    def tick(self, cycle: int) -> None:
        if not self.streaming:
            return
        self._credit += self.bits_per_cycle
        if self._credit < 1.0:
            return
        messages, bits = self.emem.pop_front(int(self._credit))
        if messages:
            self._credit -= bits
            self.bits_transferred += bits
            self.received.extend(messages)

    # -- post-mortem -----------------------------------------------------------
    def download_all(self) -> Tuple[List[TraceMessage], float]:
        """Upload the whole EMEM; returns (messages, wire seconds)."""
        messages = self.emem.contents()
        bits = sum(m.bits for m in messages)
        self.emem.pop_front(bits + 1)
        self.received.extend(messages)
        self.bits_transferred += bits
        seconds = bits / (self.bandwidth_mbps * 1e6)
        return messages, seconds

    def required_bandwidth_mbps(self, bits: int, cycles: int) -> float:
        """Sustained wire rate needed to stream ``bits`` over ``cycles``."""
        if cycles == 0:
            return 0.0
        seconds = cycles / (self.cpu_frequency_mhz * 1e6)
        return bits / seconds / 1e6

    def reset(self) -> None:
        self._credit = 0.0
        self.received.clear()
        self.bits_transferred = 0
