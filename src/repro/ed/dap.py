"""DAP/JTAG tool interface: the bandwidth-limited drain.

"The bandwidth of the tool interface does not scale with the CPU frequency
and ... the sizes of on chip trace memories are limited" (paper Section 5).
The DAP is modelled as a fixed bit-rate channel: its per-CPU-cycle budget
*shrinks* as the CPU clock rises, which is exactly the scaling pressure
experiment E4 reproduces.

Two usage modes:

* **post-mortem** — the run fills the EMEM; afterwards ``download_all``
  reports the upload and how long it would take on the wire;
* **streaming** — each cycle the DAP drains whole messages up to its
  accumulated bit credit; if producers outrun it the EMEM fills and
  messages are lost, which the profiling session reports as overflow.

Messages lost *on the wire* (an injected ``dap.drop``) or stalled by a
saturated link (``dap.saturate``) are accounted as side-band
:class:`~repro.mcds.messages.Gap` records, same as EMEM losses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..faults import injector as _fi
from ..faults.injector import fault_point
from ..mcds.messages import Gap, TraceMessage
from ..obs import runtime as _obs
from ..soc.kernel.simulator import FOREVER, Component
from .emem import EmulationMemory


class DapInterface(Component):
    name = "dap"

    def __init__(self, emem: EmulationMemory, bandwidth_mbps: float,
                 cpu_frequency_mhz: int, streaming: bool = False) -> None:
        if bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.emem = emem
        self.bandwidth_mbps = bandwidth_mbps
        self.cpu_frequency_mhz = cpu_frequency_mhz
        self.streaming = streaming
        #: bits the wire can move per CPU cycle
        self.bits_per_cycle = bandwidth_mbps / cpu_frequency_mhz
        self._credit = 0.0
        self.received: List[TraceMessage] = []
        self.bits_transferred = 0
        self.dropped_messages = 0         # lost on the wire (injected)
        self.saturated_cycles = 0         # cycles spent with a stalled link
        self.gaps: List[Gap] = []
        self._open_gap: Optional[Gap] = None
        self._saturated_until = -1

    def _note_loss(self, cycle: int) -> None:
        gap = self._open_gap
        if gap is not None:
            gap.end = max(gap.end, cycle)
            gap.lost += 1
        else:
            gap = Gap(cycle, cycle, 1, "dap", "dap")
            self.gaps.append(gap)
            self._open_gap = gap
            tel = _obs._active      # instant only on gap open, not growth
            if tel is not None:
                tel.gap_recorded("dap", "dap", cycle, 1)

    def consume_wire(self, bits: int) -> None:
        """Account foreign traffic (calibration writes, register polls).

        The DAP is one wire: tool-initiated writes spend the same budget
        the trace drain would have used, so heavy calibration slows the
        streaming download — visible as EMEM back-pressure.
        """
        self._credit -= bits
        self.bits_transferred += bits

    def idle_until(self, cycle: int):
        # post-mortem mode never needs the clock (streaming is fixed at
        # construction); a streaming drain accrues fractional wire credit
        # every cycle and so must stay hot
        return None if self.streaming else FOREVER

    def observable_state(self) -> int:
        # wire bytes for the strict-equivalence auditor
        return self.bits_transferred + len(self.received)

    def tick(self, cycle: int) -> None:
        if not self.streaming:
            return
        if _fi._active is not None:
            action = fault_point("dap.saturate", cycle=cycle)
            if action is not None:
                self._saturated_until = \
                    cycle + int(action.params.get("cycles", 1000))
            if cycle < self._saturated_until:
                # the wire is saturated by foreign traffic: no drain credit
                # accrues, the EMEM backs up and wraps on its own
                self.saturated_cycles += 1
                return
        self._credit += self.bits_per_cycle
        if self._credit < 1.0:
            return
        messages, bits = self.emem.pop_front(int(self._credit))
        if messages:
            self._credit -= bits
            self.bits_transferred += bits
            if _fi._active is not None:
                survivors = []
                for msg in messages:
                    if fault_point("dap.drop", cycle=msg.cycle,
                                   kind=msg.kind) is not None:
                        self.dropped_messages += 1
                        self._note_loss(msg.cycle)
                    else:
                        survivors.append(msg)
                        self._open_gap = None
                messages = survivors
            self.received.extend(messages)

    # -- post-mortem -----------------------------------------------------------
    def download_all(self) -> Tuple[List[TraceMessage], float]:
        """Upload the whole EMEM; returns (messages, wire seconds)."""
        tel = _obs._active
        if tel is not None:
            with tel.span("pipeline.download", cat="pipeline"):
                return self._download_all()
        return self._download_all()

    def _download_all(self) -> Tuple[List[TraceMessage], float]:
        messages = self.emem.contents()
        bits = sum(m.bits for m in messages)
        self.emem.pop_front(bits + 1)
        self.received.extend(messages)
        self.bits_transferred += bits
        seconds = bits / (self.bandwidth_mbps * 1e6)
        return messages, seconds

    def required_bandwidth_mbps(self, bits: int, cycles: int) -> float:
        """Sustained wire rate needed to stream ``bits`` over ``cycles``."""
        if cycles == 0:
            return 0.0
        seconds = cycles / (self.cpu_frequency_mhz * 1e6)
        return bits / seconds / 1e6

    def stats(self) -> Dict:
        """Wire-health snapshot for tooling and degradation reports."""
        return {
            "bandwidth_mbps": self.bandwidth_mbps,
            "streaming": self.streaming,
            "bits_transferred": self.bits_transferred,
            "messages_received": len(self.received),
            "dropped_messages": self.dropped_messages,
            "saturated_cycles": self.saturated_cycles,
            "gaps": len(self.gaps),
        }

    def reset(self) -> None:
        self._credit = 0.0
        self.received.clear()
        self.bits_transferred = 0
        self.dropped_messages = 0
        self.saturated_cycles = 0
        self.gaps = []
        self._open_gap = None
        self._saturated_until = -1

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        open_gap = None
        if self._open_gap is not None:
            open_gap = self.gaps.index(self._open_gap)
        return {
            # the fractional wire credit is a float: repr round-trips exactly
            "credit": self._credit,
            "received": [msg.to_dict() for msg in self.received],
            "bits_transferred": self.bits_transferred,
            "dropped_messages": self.dropped_messages,
            "saturated_cycles": self.saturated_cycles,
            "gaps": [gap.to_list() for gap in self.gaps],
            "open_gap": open_gap,
            "saturated_until": self._saturated_until,
        }

    def restore_state(self, state: dict) -> None:
        self._credit = state["credit"]
        self.received = [TraceMessage.from_dict(entry)
                         for entry in state["received"]]
        self.bits_transferred = state["bits_transferred"]
        self.dropped_messages = state["dropped_messages"]
        self.saturated_cycles = state["saturated_cycles"]
        self.gaps = [Gap.from_list(entry) for entry in state["gaps"]]
        self._open_gap = None if state["open_gap"] is None \
            else self.gaps[state["open_gap"]]
        self._saturated_until = state["saturated_until"]
