"""Emulation memory (EMEM): shared calibration overlay and trace buffer.

"The EEC consists of the MCDS ... and the Emulation Memory, which is shared
between calibration overlay and trace" (paper Section 3).  The trace share
is a bounded message FIFO with three capture disciplines:

* ``ring`` — wrap, overwriting the oldest messages (free-running capture);
* ``fill`` — stop accepting once full (capture from start);
* trigger-stop — keep ringing until a trigger fires, then store a
  configured post-trigger amount and freeze ("trigger close to the point of
  interest", Section 3).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..mcds.messages import TraceMessage

RING = "ring"
FILL = "fill"


class EmulationMemory:
    """Bounded trace store plus a calibration-overlay allocation."""

    def __init__(self, total_kb: int, calibration_kb: int = 0,
                 mode: str = RING) -> None:
        if calibration_kb > total_kb:
            raise ValueError("calibration share exceeds EMEM size")
        if mode not in (RING, FILL):
            raise ValueError(f"unknown EMEM mode {mode!r}")
        self.total_kb = total_kb
        self.calibration_kb = calibration_kb
        self.mode = mode
        self.capacity_bits = (total_kb - calibration_kb) * 1024 * 8
        self._fifo: deque = deque()
        self.stored_bits = 0
        self.frozen = False
        self._post_trigger_bits: Optional[int] = None
        self.lost_oldest = 0       # overwritten in ring mode
        self.lost_new = 0          # rejected in fill mode / after freeze
        self.total_stored = 0
        self.trigger_cycle: Optional[int] = None

    # -- calibration share ---------------------------------------------------
    def reserve_calibration(self, kb: int) -> None:
        """Grow the calibration share; shrinks the trace capacity."""
        if kb > self.total_kb:
            raise ValueError("calibration share exceeds EMEM size")
        self.calibration_kb = kb
        self.capacity_bits = (self.total_kb - kb) * 1024 * 8
        self._evict_to_capacity()

    # -- store path --------------------------------------------------------------
    def store(self, msg: TraceMessage) -> None:
        if self.frozen:
            self.lost_new += 1
            return
        self._fifo.append(msg)
        self.stored_bits += msg.bits
        self.total_stored += 1
        self._evict_to_capacity()
        if self._post_trigger_bits is not None:
            self._post_trigger_bits -= msg.bits
            if self._post_trigger_bits <= 0:
                self.frozen = True
                self._post_trigger_bits = None

    def _evict_to_capacity(self) -> None:
        while self.stored_bits > self.capacity_bits and self._fifo:
            if self.mode == FILL:
                dropped = self._fifo.pop()      # reject the newest
                self.stored_bits -= dropped.bits
                self.lost_new += 1
                return
            oldest = self._fifo.popleft()
            self.stored_bits -= oldest.bits
            self.lost_oldest += 1

    # -- trigger interaction --------------------------------------------------------
    def trigger_stop(self, cycle: int, post_trigger_fraction: float = 0.5) -> None:
        """Trigger action: freeze after a post-trigger share of the buffer."""
        if self.trigger_cycle is None:
            self.trigger_cycle = cycle
            self._post_trigger_bits = int(
                self.capacity_bits * post_trigger_fraction)

    # -- tool-side access --------------------------------------------------------------
    def pop_front(self, max_bits: int) -> Tuple[List[TraceMessage], int]:
        """Remove up to ``max_bits`` of whole messages from the front (DAP)."""
        popped: List[TraceMessage] = []
        bits = 0
        while self._fifo and bits + self._fifo[0].bits <= max_bits:
            msg = self._fifo.popleft()
            bits += msg.bits
            self.stored_bits -= msg.bits
            popped.append(msg)
        return popped, bits

    def contents(self) -> List[TraceMessage]:
        """Snapshot of buffered messages, oldest first (post-mortem upload)."""
        return list(self._fifo)

    @property
    def message_count(self) -> int:
        return len(self._fifo)

    @property
    def fill_ratio(self) -> float:
        if self.capacity_bits == 0:
            return 1.0
        return self.stored_bits / self.capacity_bits

    def history_cycles(self) -> int:
        """Cycles of execution covered by the buffered messages."""
        if len(self._fifo) < 2:
            return 0
        return self._fifo[-1].cycle - self._fifo[0].cycle

    def reset(self) -> None:
        self._fifo.clear()
        self.stored_bits = 0
        self.frozen = False
        self._post_trigger_bits = None
        self.lost_oldest = 0
        self.lost_new = 0
        self.total_stored = 0
        self.trigger_cycle = None
