"""Emulation memory (EMEM): shared calibration overlay and trace buffer.

"The EEC consists of the MCDS ... and the Emulation Memory, which is shared
between calibration overlay and trace" (paper Section 3).  The trace share
is a bounded message FIFO with three capture disciplines:

* ``ring`` — wrap, overwriting the oldest messages (free-running capture);
* ``fill`` — stop accepting once full (capture from start);
* trigger-stop — keep ringing until a trigger fires, then store a
  configured post-trigger amount and freeze ("trigger close to the point of
  interest", Section 3).

Every lost message — wrapped away, rejected by a full fill-mode buffer,
dropped for a CRC mismatch, or injected by a fault drill — is accounted as
a :class:`~repro.mcds.messages.Gap`: a side-band record of the lost cycle
span that the profiling layer uses to mark affected windows as degraded.
Gaps never occupy buffer capacity, so the happy path is byte-identical to
a model without the accounting.

Fault-injection sites (see :mod:`repro.faults`): ``emem.drop``,
``emem.overflow``, ``trace.corrupt``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..faults import injector as _fi
from ..faults.injector import fault_point
from ..mcds.messages import Gap, TraceMessage
from ..obs import runtime as _obs

RING = "ring"
FILL = "fill"


class EmulationMemory:
    """Bounded trace store plus a calibration-overlay allocation."""

    def __init__(self, total_kb: int, calibration_kb: int = 0,
                 mode: str = RING) -> None:
        if calibration_kb > total_kb:
            raise ConfigurationError("calibration share exceeds EMEM size")
        if mode not in (RING, FILL):
            raise ConfigurationError(f"unknown EMEM mode {mode!r}")
        self.total_kb = total_kb
        self.calibration_kb = calibration_kb
        self.mode = mode
        self.capacity_bits = (total_kb - calibration_kb) * 1024 * 8
        self._fifo: deque = deque()
        self.stored_bits = 0
        self.frozen = False
        self._post_trigger_bits: Optional[int] = None
        self.lost_oldest = 0       # overwritten in ring mode
        self.lost_new = 0          # rejected in fill mode / after freeze
        self.corrupt_dropped = 0   # CRC mismatch at the sink
        self.injected_drops = 0    # fault-drill drops/overruns
        self.total_stored = 0
        self.trigger_cycle: Optional[int] = None
        #: side-band record of every lost span, oldest first
        self.gaps: List[Gap] = []
        self._open_gap: Optional[Gap] = None

    # -- calibration share ---------------------------------------------------
    def reserve_calibration(self, kb: int) -> None:
        """Grow the calibration share; shrinks the trace capacity."""
        if kb > self.total_kb:
            raise ConfigurationError("calibration share exceeds EMEM size")
        self.calibration_kb = kb
        self.capacity_bits = (self.total_kb - kb) * 1024 * 8
        self._evict_to_capacity()

    # -- gap accounting ------------------------------------------------------
    def _note_loss(self, cycle: int, kind: str, lost: int = 1) -> None:
        gap = self._open_gap
        if gap is not None and gap.kind == kind:
            gap.end = max(gap.end, cycle)
            gap.lost += lost
        else:
            gap = Gap(cycle, cycle, lost, kind, "emem")
            self.gaps.append(gap)
            self._open_gap = gap
            tel = _obs._active      # instant only on gap open, not growth
            if tel is not None:
                tel.gap_recorded("emem", kind, cycle, lost)

    # -- store path --------------------------------------------------------------
    def store(self, msg: TraceMessage) -> None:
        if self.frozen:
            # the capture closed deliberately (trigger-stop): counted, but
            # not a gap — nothing downstream should look degraded
            self.lost_new += 1
            return
        self.total_stored += 1
        if _fi._active is not None:
            if fault_point("emem.drop", cycle=msg.cycle,
                           kind=msg.kind) is not None:
                self.injected_drops += 1
                self._note_loss(msg.cycle, "injected")
                return
            action = fault_point("trace.corrupt", cycle=msg.cycle,
                                 kind=msg.kind)
            if action is not None:
                msg.extra = dict(msg.extra)
                msg.extra["crc"] = msg.checksum()
                msg.value ^= int(action.params.get("xor", 0x5A))
            action = fault_point("emem.overflow", cycle=msg.cycle)
            if action is not None:
                self._force_overrun(
                    int(action.params.get("messages",
                                          max(1, len(self._fifo) // 2))))
        if msg.extra and "crc" in msg.extra and \
                msg.extra["crc"] != msg.checksum():
            self.corrupt_dropped += 1
            self._note_loss(msg.cycle, "corrupt")
            return
        if self.mode == FILL and \
                self.stored_bits + msg.bits > self.capacity_bits:
            # reject up front instead of the old append-then-pop churn;
            # same outcome, but the drop is now accounted, never silent
            self.lost_new += 1
            self._note_loss(msg.cycle, "reject")
            return
        self._fifo.append(msg)
        self.stored_bits += msg.bits
        if not self._evict_to_capacity():
            self._open_gap = None         # a clean store closes any gap
        if self._post_trigger_bits is not None:
            self._post_trigger_bits -= msg.bits
            if self._post_trigger_bits <= 0:
                self.frozen = True
                self._post_trigger_bits = None

    def _evict_to_capacity(self) -> int:
        """Drain to capacity; returns how many messages were lost doing so."""
        evicted = 0
        while self.stored_bits > self.capacity_bits and self._fifo:
            if self.mode == FILL:
                dropped = self._fifo.pop()      # reject the newest
                self.stored_bits -= dropped.bits
                self.lost_new += 1
                self._note_loss(dropped.cycle, "reject")
            else:
                oldest = self._fifo.popleft()
                self.stored_bits -= oldest.bits
                self.lost_oldest += 1
                self._note_loss(oldest.cycle, "wrap")
            evicted += 1
        return evicted

    def _force_overrun(self, messages: int) -> None:
        """Injected overrun: evict the oldest ``messages`` as the hardware
        would on a burst the arbiter could not absorb."""
        for _ in range(messages):
            if not self._fifo:
                break
            oldest = self._fifo.popleft()
            self.stored_bits -= oldest.bits
            self.injected_drops += 1
            self._note_loss(oldest.cycle, "injected")

    # -- trigger interaction --------------------------------------------------------
    def trigger_stop(self, cycle: int, post_trigger_fraction: float = 0.5) -> None:
        """Trigger action: freeze after a post-trigger share of the buffer."""
        if self.trigger_cycle is None:
            self.trigger_cycle = cycle
            self._post_trigger_bits = int(
                self.capacity_bits * post_trigger_fraction)

    # -- tool-side access --------------------------------------------------------------
    def pop_front(self, max_bits: int) -> Tuple[List[TraceMessage], int]:
        """Remove up to ``max_bits`` of whole messages from the front (DAP)."""
        popped: List[TraceMessage] = []
        bits = 0
        while self._fifo and bits + self._fifo[0].bits <= max_bits:
            msg = self._fifo.popleft()
            bits += msg.bits
            self.stored_bits -= msg.bits
            popped.append(msg)
        return popped, bits

    def contents(self) -> List[TraceMessage]:
        """Snapshot of buffered messages, oldest first (post-mortem upload)."""
        return list(self._fifo)

    def gap_messages(self) -> List[TraceMessage]:
        """The lost spans as in-stream overflow-style messages."""
        return [gap.to_message() for gap in self.gaps]

    @property
    def dropped_messages(self) -> int:
        """Every message that reached the EMEM but is not in the buffer."""
        return (self.lost_oldest + self.lost_new + self.corrupt_dropped
                + self.injected_drops)

    @property
    def overrun(self) -> bool:
        """Did the buffer ever lose data it was asked to keep?"""
        return bool(self.lost_oldest or self.lost_new or self.corrupt_dropped
                    or self.injected_drops)

    def stats(self) -> Dict:
        """Health snapshot for tooling and degradation reports."""
        return {
            "mode": self.mode,
            "capacity_bits": self.capacity_bits,
            "stored_bits": self.stored_bits,
            "message_count": self.message_count,
            "fill_ratio": self.fill_ratio,
            "total_stored": self.total_stored,
            "dropped_messages": self.dropped_messages,
            "lost_oldest": self.lost_oldest,
            "lost_new": self.lost_new,
            "corrupt_dropped": self.corrupt_dropped,
            "injected_drops": self.injected_drops,
            "overrun": self.overrun,
            "gaps": len(self.gaps),
            "frozen": self.frozen,
        }

    @property
    def message_count(self) -> int:
        return len(self._fifo)

    @property
    def fill_ratio(self) -> float:
        if self.capacity_bits == 0:
            return 1.0
        return self.stored_bits / self.capacity_bits

    def history_cycles(self) -> int:
        """Cycles of execution covered by the buffered messages."""
        if len(self._fifo) < 2:
            return 0
        return self._fifo[-1].cycle - self._fifo[0].cycle

    def reset(self) -> None:
        self._fifo.clear()
        self.stored_bits = 0
        self.frozen = False
        self._post_trigger_bits = None
        self.lost_oldest = 0
        self.lost_new = 0
        self.corrupt_dropped = 0
        self.injected_drops = 0
        self.total_stored = 0
        self.trigger_cycle = None
        self.gaps = []
        self._open_gap = None

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        open_gap = None
        if self._open_gap is not None:
            open_gap = self.gaps.index(self._open_gap)
        return {
            "fifo": [msg.to_dict() for msg in self._fifo],
            "stored_bits": self.stored_bits,
            "frozen": self.frozen,
            "post_trigger_bits": self._post_trigger_bits,
            "lost_oldest": self.lost_oldest,
            "lost_new": self.lost_new,
            "corrupt_dropped": self.corrupt_dropped,
            "injected_drops": self.injected_drops,
            "total_stored": self.total_stored,
            "trigger_cycle": self.trigger_cycle,
            "gaps": [gap.to_list() for gap in self.gaps],
            "open_gap": open_gap,
            "calibration_kb": self.calibration_kb,
            "capacity_bits": self.capacity_bits,
        }

    def restore_state(self, state: dict) -> None:
        self._fifo = deque(TraceMessage.from_dict(entry)
                           for entry in state["fifo"])
        self.stored_bits = state["stored_bits"]
        self.frozen = state["frozen"]
        self._post_trigger_bits = state["post_trigger_bits"]
        self.lost_oldest = state["lost_oldest"]
        self.lost_new = state["lost_new"]
        self.corrupt_dropped = state["corrupt_dropped"]
        self.injected_drops = state["injected_drops"]
        self.total_stored = state["total_stored"]
        self.trigger_cycle = state["trigger_cycle"]
        self.gaps = [Gap.from_list(entry) for entry in state["gaps"]]
        self._open_gap = None if state["open_gap"] is None \
            else self.gaps[state["open_gap"]]
        self.calibration_kb = state["calibration_kb"]
        self.capacity_bits = state["capacity_bits"]
