"""Calibration workflow: overlay pages, working/reference switching.

The ED concept "was driven by the requirement for a large overlay RAM for
calibration.  Calibration is used for example to optimize the parameters,
which determine the characteristics of an engine (torque, exhaust gas,
etc.) during the development phase of a car" (paper Section 3).

A calibration session manages *parameter blocks*: named flash ranges
(fuel maps, ignition maps) redirected into EMEM overlay RAM so the tool
can tune values while the application runs.  The classic page model is
implemented — a **working page** (overlay active, tool-writable) and a
**reference page** (original flash contents) that the calibrator can flip
between to A/B the tune — plus DAP wire-time accounting for the writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .device import EmulationDevice


@dataclass
class ParameterBlock:
    """One named, overlaid calibration structure."""

    name: str
    flash_addr: int
    size: int
    #: tool-side shadow of the tuned values (offset -> value)
    values: Dict[int, int] = field(default_factory=dict)
    writes: int = 0


class CalibrationSession:
    """Tool-side calibration manager for one Emulation Device."""

    #: DAP write transaction: command + address + 32-bit data
    WRITE_BITS = 96

    def __init__(self, device: EmulationDevice, reserve_kb: int = 128) -> None:
        self.device = device
        device.reserve_calibration(reserve_kb)
        self.blocks: Dict[str, ParameterBlock] = {}
        self._on_working_page = False
        self.bits_written = 0

    # -- block management ---------------------------------------------------
    def map_block(self, name: str, flash_addr: int, size: int
                  ) -> ParameterBlock:
        """Declare a calibration structure; overlays it on the working page."""
        if name in self.blocks:
            raise ValueError(f"block {name!r} already mapped")
        used = sum(b.size for b in self.blocks.values())
        budget = self.device.emem.calibration_kb * 1024
        if used + size > budget:
            raise ValueError(
                f"calibration share exhausted: {used + size} bytes needed, "
                f"{budget} reserved")
        block = ParameterBlock(name, flash_addr, size)
        self.blocks[name] = block
        if self._on_working_page:
            self.device.soc.map.add_overlay(flash_addr, size)
        return block

    # -- page switching -------------------------------------------------------
    def switch_to_working_page(self) -> None:
        """Activate all overlays: accesses hit the tool-tuned EMEM copies."""
        if self._on_working_page:
            return
        for block in self.blocks.values():
            self.device.soc.map.add_overlay(block.flash_addr, block.size)
        self._on_working_page = True

    def switch_to_reference_page(self) -> None:
        """Deactivate overlays: the application sees the original flash."""
        self.device.soc.map.clear_overlays()
        self._on_working_page = False

    @property
    def on_working_page(self) -> bool:
        return self._on_working_page

    # -- tool writes --------------------------------------------------------------
    def write_parameter(self, block_name: str, offset: int,
                        value: int) -> None:
        """Tune one 32-bit parameter word (tool-side, over the DAP).

        When the DAP is streaming trace, the write spends the shared wire
        budget and delays the drain accordingly.
        """
        block = self.blocks[block_name]
        if not 0 <= offset < block.size:
            raise ValueError(
                f"offset {offset} outside block {block_name!r} "
                f"(size {block.size})")
        block.values[offset] = value
        block.writes += 1
        self.bits_written += self.WRITE_BITS
        if self.device.dap.streaming:
            self.device.dap.consume_wire(self.WRITE_BITS)

    def read_parameter(self, block_name: str, offset: int) -> Optional[int]:
        return self.blocks[block_name].values.get(offset)

    # -- accounting ----------------------------------------------------------------
    def wire_seconds(self) -> float:
        """DAP time spent on calibration writes so far."""
        return self.bits_written / (self.device.dap.bandwidth_mbps * 1e6)

    def summary(self) -> str:
        lines = [f"{'block':<16}{'flash addr':>12}{'size':>8}{'writes':>8}"]
        for block in self.blocks.values():
            lines.append(f"{block.name:<16}{block.flash_addr:>#12x}"
                         f"{block.size:>8}{block.writes:>8}")
        page = "working (overlay)" if self._on_working_page else "reference"
        lines.append(f"page: {page}; calibration wire time "
                     f"{self.wire_seconds() * 1e3:.3f} ms")
        return "\n".join(lines)
