"""Tool access paths to the EEC (paper Figure 4 and Section 3).

Two ways into the emulation extension chip:

* **External path** — DAP/JTAG → ECerberus → Back Bone Bus → EMEM/MCDS.
  Zero CPU involvement, limited by the wire bit-rate; "requires no
  additional pins".
* **Monitor path** — "in a later development phase a tool can communicate
  over a user interface like CAN or FlexRay with a monitor routine,
  running on TriCore, which then accesses the EEC" over the MLI bridge.
  No debug cable in the vehicle, but the monitor steals CPU cycles.

:func:`install_monitor` builds that monitor routine as real application
code (an ISR doing EMEM reads through the MLI-mapped address space), so
its intrusiveness is *measured*, not asserted; :func:`compare_paths`
produces the engineering trade-off table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..soc.cpu import isa
from ..soc.memory import map as amap
from ..soc.peripherals.basic import PeriodicTimer
from ..workloads.program import FunctionBuilder
from .device import EmulationDevice


@dataclass
class AccessPathTiming:
    """Cost of moving one EMEM block out of the device over a path."""

    path: str
    words: int
    wire_seconds: float          # time on the external medium
    cpu_cycles: int              # product-CPU cycles consumed (intrusiveness)


def external_path_timing(device: EmulationDevice, words: int
                         ) -> AccessPathTiming:
    """DAP → ECerberus → BBB: pure wire time, zero CPU cycles."""
    read_bits = 96               # command + address + 32-bit data per word
    seconds = words * read_bits / (device.dap.bandwidth_mbps * 1e6)
    return AccessPathTiming("dap/ecerberus/bbb", words, seconds, 0)


def monitor_path_timing(device: EmulationDevice, words: int,
                        can_bitrate: float = 500e3) -> AccessPathTiming:
    """TriCore monitor → MLI → BBB, results shipped over CAN.

    CPU cost: one EMEM read per word through the MLI bridge (latency from
    the bus config) plus monitor framing overhead.  Wire cost: CAN frames
    of 8 payload bytes, ~135 bits each at the configured bit-rate.
    """
    mli_read = device.config.soc.bus.mli_latency + 2
    framing = 12                 # loop + packing instructions per word
    cpu_cycles = words * (mli_read + framing)
    frames = (words * 4 + 7) // 8
    wire_seconds = frames * 135 / can_bitrate
    return AccessPathTiming("tricore/mli/bbb + CAN", words, wire_seconds,
                            cpu_cycles)


def compare_paths(device: EmulationDevice, words: int = 1024) -> str:
    """The trade-off table a tooling engineer reads."""
    freq_hz = device.config.soc.cpu.frequency_mhz * 1e6
    rows = [external_path_timing(device, words),
            monitor_path_timing(device, words)]
    lines = [f"moving {words} EMEM words off-chip:",
             f"{'path':<26}{'wire ms':>9}{'CPU cycles':>12}{'CPU ms':>8}"]
    for row in rows:
        lines.append(f"{row.path:<26}{row.wire_seconds * 1e3:>9.3f}"
                     f"{row.cpu_cycles:>12}"
                     f"{row.cpu_cycles / freq_hz * 1e3:>8.3f}")
    return "\n".join(lines)


def install_monitor(device: EmulationDevice, builder, period: int = 50_000,
                    words_per_service: int = 16, priority: int = 3):
    """Add a real monitor routine to an application under construction.

    Appends a ``monitor_isr`` function (EMEM reads over the MLI path) to
    the given :class:`~repro.workloads.program.ProgramBuilder` and returns
    a hook that wires the timer + vector once the program is loaded::

        builder = ...                # application being built
        finish = install_monitor(device, builder)
        device.load_program(builder.assemble())
        finish()                     # binds SRN, vector, timer

    The CPU cycles this steals are visible in the profile — the measured
    intrusiveness of the monitor path.
    """
    monitor = builder.function("monitor_isr")
    monitor.alu(4)                                     # frame header
    monitor.loop(words_per_service, lambda f: f
                 .load(isa.StrideAddr(amap.EMEM_BASE, 4, 4096))
                 .alu(2))                              # pack + checksum
    monitor.store(isa.FixedAddr(amap.PERIPH_BASE + 0x600))  # CAN TX reg
    monitor.rfe()

    def finish():
        srn = device.soc.icu.add_srn("monitor", priority)
        device.cpu.set_vector(srn.id, "monitor_isr")
        device.soc.add_peripheral(PeriodicTimer(
            "monitor_timer", device.hub, device.soc.icu, srn.id, period))
        return srn

    return finish
