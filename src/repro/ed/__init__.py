"""Emulation Device: product chip + Emulation Extension Chip (EEC)."""

from .calibration import CalibrationSession, ParameterBlock
from .dap import DapInterface
from .device import (EdConfig, EmulationDevice, tc1767ed_config,
                     tc1797ed_config)
from .emem import EmulationMemory
from . import tool_access

__all__ = ["CalibrationSession", "ParameterBlock", "DapInterface",
           "EdConfig", "EmulationDevice", "EmulationMemory",
           "tc1767ed_config", "tc1797ed_config", "tool_access"]
