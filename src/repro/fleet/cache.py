"""Content-addressed result cache for profiling campaigns.

Each entry is one file, ``<digest>.json``, where the digest is the job's
content hash (spec + package version + payload schema — see
:func:`repro.fleet.spec.job_digest`).  Re-running a campaign therefore
only executes jobs whose spec, device config, or simulator version
actually changed; everything else is a hit.  Writes go through a
temp-file rename so a killed campaign can never leave a half-written
entry that would poison later runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from ..obs import runtime as _obs
from .spec import CampaignJob, canonical_json


class ResultCache:
    """Directory of content-addressed job payloads."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def lookup(self, job: CampaignJob) -> Optional[Dict]:
        """Return the cached payload for ``job``, or None on miss."""
        path = self._path(job.digest)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._note("miss", job)
            return None
        except (json.JSONDecodeError, OSError):
            # unreadable entry: drop it and treat as a miss
            try:
                os.unlink(path)
            except OSError:
                pass
            self._note("miss", job)
            return None
        self._note("hit", job)
        return entry["payload"]

    def _note(self, result: str, job: CampaignJob) -> None:
        if result == "hit":
            self.hits += 1
        else:
            self.misses += 1
        tel = _obs._active
        if tel is not None:
            tel.cache_lookup(result, job.digest)

    def store(self, job: CampaignJob, payload: Dict) -> str:
        """Persist a job payload atomically; returns the entry path."""
        path = self._path(job.digest)
        entry = canonical_json({
            "digest": job.digest,
            "job": job.to_dict(),
            "payload": payload,
        })
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(entry)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
