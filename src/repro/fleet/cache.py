"""Content-addressed result cache for profiling campaigns.

Each entry is one file, ``<digest>.json``, where the digest is the job's
content hash (spec + package version + payload schema — see
:func:`repro.fleet.spec.job_digest`).  Re-running a campaign therefore
only executes jobs whose spec, device config, or simulator version
actually changed; everything else is a hit.

The cache is safe to share between *processes and nodes* (it is the
multi-node fleet's dedupe layer):

* writes go to a temp file in the same directory, are flushed and
  fsynced, then atomically renamed into place — concurrent writers of
  the same digest race harmlessly (last rename wins, both wrote the
  same bytes) and a killed writer can never leave a half-written entry
  under the final name;
* every entry carries a CRC-32 over the canonical serialisation of its
  payload, re-verified on :meth:`lookup` together with the entry's
  digest field, so a bit-flipped or foreign entry is **quarantined**
  (moved to ``<digest>.json.quarantine`` for post-mortems) and reported
  as a miss instead of being served as science.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
import zlib
from typing import Dict, Optional

from ..obs import runtime as _obs
from .spec import CampaignJob, canonical_json

#: a damaged entry is preserved under this suffix, never served again
QUARANTINE_SUFFIX = ".quarantine"

#: per-entry checksum over the canonical payload serialisation
PAYLOAD_CRC_FIELD = "payload_crc32"


def payload_crc(payload: Dict) -> int:
    """CRC-32 over the canonical JSON of a job payload."""
    return zlib.crc32(canonical_json(payload).encode("utf-8"))


class ResultCache:
    """Directory of content-addressed job payloads."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a bad entry aside: a miss now, evidence later."""
        warnings.warn(
            f"result cache {path}: quarantining damaged entry ({reason})",
            RuntimeWarning, stacklevel=3)
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def lookup(self, job: CampaignJob) -> Optional[Dict]:
        """Return the cached payload for ``job``, or None on miss.

        The entry is re-verified before it is served: its recorded
        digest must match the job's (a foreign entry copied into the
        wrong name is not a hit) and its payload must reproduce the
        stored CRC (a torn or bit-flipped entry is not a hit).  Either
        mismatch quarantines the entry and reports a miss — the job
        simply re-executes, which is always safe.
        """
        path = self._path(job.digest)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._note("miss", job)
            return None
        except (json.JSONDecodeError, OSError):
            # unreadable entry: quarantine it and treat as a miss
            self._quarantine(path, "not parseable as JSON")
            self._note("miss", job)
            return None
        payload = entry.get("payload") if isinstance(entry, dict) else None
        if not isinstance(payload, dict):
            self._quarantine(path, "entry has no payload object")
            self._note("miss", job)
            return None
        if entry.get("digest") != job.digest:
            self._quarantine(
                path, f"digest mismatch: entry claims "
                      f"{str(entry.get('digest'))[:12]}..., "
                      f"job is {job.digest[:12]}...")
            self._note("miss", job)
            return None
        stored_crc = entry.get(PAYLOAD_CRC_FIELD)
        if stored_crc is not None and stored_crc != payload_crc(payload):
            self._quarantine(path, "payload failed its CRC check")
            self._note("miss", job)
            return None
        self._note("hit", job)
        return payload

    def _note(self, result: str, job: CampaignJob) -> None:
        if result == "hit":
            self.hits += 1
        else:
            self.misses += 1
        tel = _obs._active
        if tel is not None:
            tel.cache_lookup(result, job.digest)

    def store(self, job: CampaignJob, payload: Dict) -> str:
        """Persist a job payload atomically; returns the entry path.

        Write-to-temp, fsync, rename: concurrent multi-node writers of
        the same digest each land a complete entry (payloads are
        deterministic, so whichever rename wins the bytes are the same),
        and a reader can never observe a torn entry under the final
        name.  The fsync matters on the shared directory: a node may
        crash right after another node's lookup decision depended on
        this entry existing.
        """
        path = self._path(job.digest)
        entry = canonical_json({
            "digest": job.digest,
            "job": job.to_dict(),
            "payload": payload,
            PAYLOAD_CRC_FIELD: payload_crc(payload),
        })
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(entry)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
