"""Campaign orchestrator: fans a job matrix over a fault-tolerant pool.

Execution model
---------------

* Jobs are deterministically sharded (:func:`repro.fleet.spec.assign_shards`)
  and each shard is one ``run_shard`` task on a ``ProcessPoolExecutor``.
  Workers isolate failures per job, so a raising job returns a structured
  error outcome instead of killing its shard.
* Failed jobs are retried with exponential backoff, one single-job shard
  at a time (so a poison job can only hurt itself).  A job that exhausts
  its retry budget is **quarantined**: recorded with its error and
  excluded from the aggregate, while every other job completes normally.
* A worker process dying outright (or a shard exceeding its timeout)
  breaks the pool; the orchestrator records synthetic failures for the
  affected shard, abandons the pool, and continues on a fresh one.
* Before anything is submitted, each job is looked up in the
  content-addressed :class:`~repro.fleet.cache.ResultCache` and, under
  ``resume=True``, in the campaign's JSONL store — hits never reach the
  pool, which is why a warm re-run executes zero jobs.

* In-process runs (``workers=0``) support **cooperative preemption**: a
  ``should_yield`` callback is consulted between jobs and at every
  checkpoint boundary; when it fires, the run stops early with
  ``CampaignReport.preempted=True`` — completed records durable in the
  store, the interrupted job's checkpoint on disk — and a later
  ``resume=True`` run finishes the campaign byte-identically.  This is
  how ``repro.serve`` evicts a low-priority campaign under load.

Results are bit-identical regardless of worker count: every job builds
its own seeded device, and the aggregate artifact is written sorted by
content-derived job id with timing metadata excluded.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, TimeoutError as \
    FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..faults import FaultPlan
from ..obs import bridge as _obs_bridge
from ..obs import runtime as _obs
from .cache import ResultCache
from .metrics import CampaignMetrics
from .spec import CampaignJob, assign_shards
from .store import ResultStore
from .worker import run_batch_shard, run_shard


@dataclass
class CampaignReport:
    """Everything a campaign run produced.

    ``preempted=True`` means the run stopped early at a safe boundary
    (the orchestrator's ``should_yield`` fired): every completed record
    is durable in the store, the interrupted job's checkpoint is on
    disk, and no aggregate was written — a later ``resume=True`` run
    finishes the campaign byte-identically.
    """

    records: List[Dict] = field(default_factory=list)   # sorted by job_id
    metrics: CampaignMetrics = field(default_factory=CampaignMetrics)
    store_path: Optional[str] = None
    aggregate_path: Optional[str] = None
    preempted: bool = False
    #: the run hit its wall-clock deadline: terminal for this submission
    #: (unlike ``preempted``, nobody will resume it), no aggregate is
    #: written, and unfinished jobs are simply not run — never quarantined
    deadline_exceeded: bool = False

    @property
    def ok_records(self) -> List[Dict]:
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def quarantined(self) -> List[Dict]:
        return [r for r in self.records if r["status"] == "quarantined"]


class CampaignRunner:
    """Runs one campaign: cache/resume short-circuit, pool fan-out,
    retry/quarantine, store + aggregate emission."""

    def __init__(self, jobs: Sequence[CampaignJob],
                 workers: int = 1,
                 cache_dir: Optional[str] = None,
                 campaign_dir: Optional[str] = None,
                 max_retries: int = 2,
                 backoff_s: float = 0.25,
                 max_backoff_s: float = 5.0,
                 timeout_s: Optional[float] = None,
                 resume: bool = False,
                 fault_plan: Optional[Dict] = None,
                 checkpoint_every: Optional[int] = None,
                 should_yield: Optional[Callable[[], bool]] = None,
                 deadline_s: Optional[float] = None,
                 backend: str = "scalar") -> None:
        if backend not in ("scalar", "batch"):
            raise ConfigurationError(
                f"unknown backend {backend!r}; "
                f"choose from ['batch', 'scalar']")
        if backend == "batch":
            from ..batch import require_numpy
            require_numpy()       # fail at admission, not mid-campaign
        self.backend = backend
        if workers < 0:
            raise ConfigurationError("workers must be >= 0 (0 = in-process)")
        if should_yield is not None and workers != 0:
            raise ConfigurationError(
                "should_yield needs workers=0: a live callback cannot "
                "cross the process-pool pickle boundary")
        self.jobs = sorted(jobs, key=lambda j: j.job_id)
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate jobs in campaign matrix")
        if workers == 0 and any(job.fault == "exit" for job in self.jobs):
            raise ConfigurationError(
                "fault='exit' drills need workers >= 1: in-process mode "
                "would kill the orchestrator itself")
        self.workers = workers
        # normalised to the dict form so it pickles to pool workers; a
        # plan also disables the result cache entirely — payloads produced
        # under injection must never poison (or be served from) the
        # content-addressed store, whose keys don't cover the plan
        if isinstance(fault_plan, FaultPlan):
            fault_plan = fault_plan.to_dict()
        elif fault_plan is not None:
            fault_plan = FaultPlan.from_dict(fault_plan).to_dict()
        self.fault_plan = fault_plan
        if fault_plan is not None:
            cache_dir = None
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.store = ResultStore(campaign_dir) if campaign_dir else None
        self.max_retries = max_retries
        if max_backoff_s < 0:
            raise ConfigurationError("max_backoff_s must be >= 0")
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        # full-jitter retry backoff, seeded from the (stable) job matrix
        # rather than the global RNG: a retried campaign draws the same
        # delays every run, so nothing about campaign artifacts — which
        # never include wall clock anyway — can drift between repeats
        self._backoff_rng = random.Random(zlib.crc32(
            ",".join(job.job_id for job in self.jobs).encode("utf-8")))
        self.timeout_s = timeout_s
        self.resume = resume
        self.should_yield = should_yield
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(
                "deadline_s must be positive (or None for no deadline)")
        self.deadline_s = deadline_s
        self._deadline_at: Optional[float] = None
        self._preempted = False
        self._deadline_hit = False
        # periodic mid-run checkpoints: a crashed/hung/killed attempt
        # resumes from its last intact checkpoint instead of cycle 0
        self.checkpoint: Optional[Dict] = None
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigurationError(
                    "checkpoint_every must be >= 1 cycle")
            if campaign_dir is None:
                raise ConfigurationError(
                    "checkpoint_every needs a campaign_dir to keep the "
                    "checkpoint files in")
            self.checkpoint = {
                "dir": os.path.join(campaign_dir, "checkpoints"),
                "every": int(checkpoint_every),
            }
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _retire_pool(self, broken: bool = False) -> None:
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        # a broken/stuck pool must not be waited on — abandon it
        pool.shutdown(wait=not broken, cancel_futures=broken)

    # -- execution rounds ----------------------------------------------------
    @staticmethod
    def _synthetic_failures(shard: Sequence[CampaignJob], attempt: int,
                            error: str) -> List[Dict]:
        return [{
            "job": job.to_dict(), "status": "error", "error": error,
            "trace": error, "wall_s": 0.0, "attempt": attempt, "pid": None,
        } for job in shard]

    def _shard_timeout(self, shard: Sequence[CampaignJob]) -> Optional[float]:
        if self.timeout_s is None:
            return None
        return self.timeout_s * len(shard)

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter exponential backoff with a hard cap.

        ``uniform(0, min(cap, base * 2^(attempt-1)))`` — the AWS full-
        jitter form: retry storms decorrelate instead of thundering in
        lockstep, and a large retry budget can never sleep unboundedly.
        """
        ceiling = min(self.max_backoff_s,
                      self.backoff_s * (2 ** (attempt - 1)))
        return self._backoff_rng.uniform(0.0, ceiling)

    def _deadline_expired(self) -> bool:
        return self._deadline_at is not None and \
            time.time() > self._deadline_at

    def _run_round(self, shards: List[List[CampaignJob]],
                   attempt: int) -> List[Dict]:
        """Execute one round of shards, surviving pool breakage."""
        shard_fn = run_batch_shard if self.backend == "batch" else run_shard
        if self.workers == 0:
            outcomes: List[Dict] = []
            for shard in shards:
                outcomes.extend(
                    shard_fn([job.to_dict() for job in shard], attempt,
                             self.fault_plan, self.checkpoint,
                             self.should_yield,
                             deadline_at=self._deadline_at))
                # a preempted/expired outcome ends the round: later
                # shards stay pending (resumable after a preemption,
                # moot after a deadline)
                if outcomes and outcomes[-1]["status"] in ("preempted",
                                                           "deadline"):
                    break
            return outcomes

        outcomes = []
        pool = self._ensure_pool()
        futures = [(pool.submit(shard_fn,
                                [job.to_dict() for job in shard], attempt,
                                self.fault_plan, self.checkpoint,
                                deadline_at=self._deadline_at),
                    shard) for shard in shards]
        abandon = False
        for future, shard in futures:
            try:
                outcomes.extend(future.result(self._shard_timeout(shard)))
            except FutureTimeoutError:
                outcomes.extend(self._synthetic_failures(
                    shard, attempt,
                    f"timeout: shard exceeded "
                    f"{self._shard_timeout(shard):.1f} s"))
                abandon = True         # a worker is stuck in there
            except BrokenProcessPool:
                outcomes.extend(self._synthetic_failures(
                    shard, attempt, "worker process died"))
                abandon = True
        if abandon:
            self._retire_pool(broken=True)
        return outcomes

    # -- record plumbing -----------------------------------------------------
    @staticmethod
    def _ok_record(job: CampaignJob, payload: Dict, source: str,
                   attempts: int, wall_s: float) -> Dict:
        return {
            "job_id": job.job_id, "digest": job.digest,
            "job": job.to_dict(), "status": "ok", "source": source,
            "attempts": attempts, "wall_s": wall_s, "payload": payload,
        }

    def _finish(self, job: CampaignJob, record: Dict,
                records: Dict[str, Dict],
                metrics: Optional[CampaignMetrics] = None) -> None:
        records[job.job_id] = record
        if metrics is not None and record["status"] == "ok":
            metrics.note_payload(record["payload"])
        if self.store is not None:
            self.store.append(record)
        tel = _obs._active
        if tel is not None:
            tel.emit("job.done", job_id=job.job_id,
                     status=record["status"],
                     source=record.get("source", "executed"),
                     attempts=record.get("attempts", 0))
            if record["status"] == "ok":
                self._profile_instants(tel, job, record["payload"])

    @staticmethod
    def _profile_instants(tel, job: CampaignJob, payload: Dict) -> None:
        """Per-customer profile summary instants on the trace timeline.

        Derived purely from the (byte-identical) payload, so the values
        are the same for executed, cached, resumed, scalar, and batch
        records — which is what makes the trace store's per-(customer,
        signal) series deterministic and cross-run diffing exact, while
        wall-clock span durations stay informational.
        """
        profile = payload.get("profile") or {}
        parameters = profile.get("parameters") or {}
        stall_events = 0
        degraded = 0
        for signal in sorted(parameters):
            entry = parameters[signal]
            entry_degraded = len(entry.get("degraded", ()))
            degraded += entry_degraded
            tel.instant("job.profile", cat="fleet", job=job.name,
                        signal=signal,
                        mean_rate=entry.get("mean_rate", 0.0),
                        samples=entry.get("samples", 0),
                        degraded=entry_degraded)
            if signal == "tc.load_stall_rate":
                stall_events = int(sum(entry.get("values", ())))
        tel.instant("job.stats", cat="fleet", job=job.name,
                    lost=int(profile.get("lost_messages", 0)),
                    gaps=len(profile.get("gaps", ())),
                    degraded=degraded, stall_events=stall_events,
                    trace_bits=int(profile.get("trace_bits", 0)))

    # -- the campaign --------------------------------------------------------
    def run(self) -> CampaignReport:
        start = time.perf_counter()
        self._preempted = False
        self._deadline_hit = False
        # armed at run start, as absolute wall-clock time: a plain float
        # crosses the pool's pickle boundary, and time.time() readings
        # are comparable between orchestrator and worker processes
        self._deadline_at = (time.time() + self.deadline_s
                             if self.deadline_s is not None else None)
        tel = _obs._active
        campaign_t0 = tel.tracer.now_us() if tel is not None else 0.0
        if tel is not None:
            tel.emit("campaign.start", total_jobs=len(self.jobs),
                     workers=self.workers, resume=self.resume,
                     faulted=self.fault_plan is not None)
        metrics = CampaignMetrics(total_jobs=len(self.jobs),
                                  workers=max(1, self.workers))
        records: Dict[str, Dict] = {}
        by_id = {job.job_id: job for job in self.jobs}

        # resume: replay completed records from a previous (killed) run
        prior = []
        if self.store is not None:
            if self.resume:
                prior = [r for r in self.store.load()
                         if r.get("status") == "ok"
                         and r.get("job_id") in by_id]
            self.store.clear()
        for record in prior:
            job = by_id[record["job_id"]]
            metrics.resumed += 1
            self._finish(job, self._ok_record(
                job, record["payload"], "resumed",
                record.get("attempts", 1), 0.0), records, metrics)

        # content-addressed cache: hits never reach the pool
        for job in self.jobs:
            if job.job_id in records or self.cache is None:
                continue
            payload = self.cache.lookup(job)
            if payload is not None:
                metrics.cache_hits += 1
                self._finish(job, self._ok_record(
                    job, payload, "cache", 0, 0.0), records, metrics)

        pending = [job for job in self.jobs if job.job_id not in records]

        # round 0: deterministic shards over the pool
        failures: Dict[str, Dict] = {}
        fatal: Dict[str, Dict] = {}

        def split_fatal(failed: Dict[str, Dict]) -> Dict[str, Dict]:
            # deterministic failures (retryable=False) skip the retry
            # rounds — backoff cannot fix a configuration error or a
            # cycle-deadline watchdog, so they quarantine immediately
            for job_id in list(failed):
                if not failed[job_id].get("retryable", True):
                    fatal[job_id] = failed.pop(job_id)
            return failed

        if pending and self._deadline_expired():
            # stale before a single job ran — never silently run it
            self._deadline_hit = True
            pending = []
        if pending:
            if self.backend == "batch":
                # pack cache-missed jobs into lane groups: every job
                # sharing a group key rides one worker invocation, so the
                # lane simulator sees the whole portfolio at once
                from ..batch import group_key
                groups: Dict[tuple, List[CampaignJob]] = {}
                for job in pending:
                    groups.setdefault(group_key(job.to_dict()),
                                      []).append(job)
                shards = list(groups.values())
            else:
                n_shards = max(1, min(len(pending),
                                      max(1, self.workers) * 2))
                shards = assign_shards(pending, n_shards)
            outcomes = self._run_round(shards, 0)
            failures = split_fatal(self._absorb(outcomes, records, metrics))

        # retry rounds: failed jobs individually, one at a time
        for attempt in range(1, self.max_retries + 1):
            if not failures or self._preempted or self._deadline_hit:
                break
            time.sleep(self._backoff_delay(attempt))
            if self._deadline_expired():
                self._deadline_hit = True
                break
            metrics.retries += len(failures)
            if tel is not None:
                tel.emit("round.retry", attempt=attempt,
                         jobs=sorted(failures, key=str))
            retry_jobs = sorted(failures, key=str)
            outcomes = []
            for job_id in retry_jobs:
                outcomes.extend(
                    self._run_round([[by_id[job_id]]], attempt))
            failures = split_fatal(self._absorb(outcomes, records, metrics,
                                                prior_failures=failures))

        # whatever still fails is quarantined — the campaign survives it.
        # Under preemption nothing is quarantined: unfinished jobs (and
        # even failed ones) get a fresh start on the resumed run.  Under
        # a deadline nothing is quarantined either — the submission is
        # terminal, and "didn't finish in time" is not a job defect.
        stopped_early = self._preempted or self._deadline_hit
        leftovers = {} if stopped_early else dict(fatal)
        if not stopped_early:
            leftovers.update(failures)
        for job_id in sorted(leftovers):
            outcome = leftovers[job_id]
            job = by_id[job_id]
            metrics.quarantined += 1
            if tel is not None:
                tel.instant("job.quarantined", cat="fleet",
                            job_id=job.job_id, error=outcome["error"])
            self._finish(job, {
                "job_id": job.job_id, "digest": job.digest,
                "job": job.to_dict(), "status": "quarantined",
                "source": "executed",
                "attempts": outcome["attempt"] + 1,
                "wall_s": outcome["wall_s"],
                "error": outcome["error"],
            }, records, metrics)

        self._retire_pool()
        metrics.wall_s = time.perf_counter() - start

        # under preemption only the completed prefix has records; the
        # aggregate (the byte-identity artifact) is only ever written by
        # the run that finishes the campaign
        ordered = [records[job.job_id] for job in self.jobs
                   if job.job_id in records]
        report = CampaignReport(records=ordered, metrics=metrics,
                                preempted=self._preempted,
                                deadline_exceeded=self._deadline_hit)
        if self.store is not None:
            self.store.rewrite(ordered)
            report.store_path = self.store.path
            if not self._preempted and not self._deadline_hit:
                report.aggregate_path = self.store.write_aggregate(
                    report.ok_records, report.quarantined)
        if tel is not None:
            # registry counters are folded exactly once, here, from the
            # final metrics snapshot — live hooks above only record spans
            # and events, so nothing double-counts
            _obs_bridge.record_campaign_metrics(tel.registry, metrics)
            tel.tracer.complete(
                "campaign", campaign_t0,
                tel.tracer.now_us() - campaign_t0, "fleet",
                args={"total_jobs": metrics.total_jobs,
                      "executed": metrics.executed,
                      "cache_hits": metrics.cache_hits,
                      "resumed": metrics.resumed,
                      "quarantined": metrics.quarantined})
            tel.emit("campaign.end", total_jobs=metrics.total_jobs,
                     executed=metrics.executed,
                     cache_hits=metrics.cache_hits,
                     resumed=metrics.resumed,
                     quarantined=metrics.quarantined,
                     retries=metrics.retries)
        return report

    @staticmethod
    def _retro_span(tel, job: CampaignJob, outcome: Dict) -> None:
        pid = outcome.get("pid") or 0
        if pid:
            tel.tracer.set_process(pid, f"worker {pid}")
        wall_us = outcome["wall_s"] * 1e6
        tel.tracer.complete(
            "job.execute", max(0.0, tel.tracer.now_us() - wall_us),
            wall_us, "fleet", pid=pid,
            args={"job": job.name, "status": outcome["status"],
                  "attempt": outcome["attempt"]})

    def _absorb(self, outcomes: List[Dict], records: Dict[str, Dict],
                metrics: CampaignMetrics,
                prior_failures: Optional[Dict[str, Dict]] = None
                ) -> Dict[str, Dict]:
        """Fold a round's outcomes into records; return remaining failures."""
        failures: Dict[str, Dict] = {}
        tel = _obs._active
        for outcome in outcomes:
            job = CampaignJob.from_dict(outcome["job"])
            metrics.busy_s += outcome["wall_s"]
            if "checkpoint" in outcome:
                metrics.note_checkpoint(outcome["checkpoint"])
            if outcome["status"] == "preempted":
                # not a failure: the job's partial progress is on disk as
                # a checkpoint, and the whole campaign will be offered
                # again (resume=True) once the preemption pressure clears
                self._preempted = True
                if tel is not None:
                    tel.instant("job.preempted", cat="fleet",
                                job_id=job.job_id)
                    tel.emit("job.preempted", job_id=job.job_id,
                             attempt=outcome["attempt"])
                continue
            if outcome["status"] == "deadline":
                # terminal for the submission, not a job defect: the
                # campaign stops at this safe boundary and reports
                # deadline_exceeded instead of running stale work
                self._deadline_hit = True
                if tel is not None:
                    tel.instant("job.deadline", cat="fleet",
                                job_id=job.job_id)
                    tel.emit("job.deadline", job_id=job.job_id,
                             attempt=outcome["attempt"])
                continue
            if tel is not None and self.workers > 0:
                # pool workers don't inherit the telemetry slot, so their
                # job spans are retro-emitted here from the reported
                # in-worker wall clock (workers=0 records live spans)
                self._retro_span(tel, job, outcome)
            if outcome["status"] == "ok":
                metrics.executed += 1
                metrics.job_walls.append(outcome["wall_s"])
                metrics.sim_cycles += int(
                    outcome["payload"].get("sim_cycles", 0))
                if self.cache is not None:
                    self.cache.store(job, outcome["payload"])
                self._finish(job, self._ok_record(
                    job, outcome["payload"], "executed",
                    outcome["attempt"] + 1, outcome["wall_s"]), records,
                    metrics)
            else:
                carried = dict(outcome)
                if prior_failures and job.job_id in prior_failures:
                    carried["wall_s"] += prior_failures[job.job_id]["wall_s"]
                failures[job.job_id] = carried
        return failures


def run_campaign(jobs: Sequence[CampaignJob], **kwargs) -> CampaignReport:
    """Convenience wrapper: build a runner and run it."""
    return CampaignRunner(jobs, **kwargs).run()
