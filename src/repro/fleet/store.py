"""JSONL campaign result store — crash-consistent by construction.

One line per completed job record, appended as jobs finish so a killed
campaign leaves a valid prefix behind — that prefix is exactly what
``--resume`` replays.  Appends are durable (flushed and fsynced before
``append`` returns) and every line carries a ``_crc32`` field computed
over the canonical serialisation of the rest of the record, so a torn
tail from a SIGKILL *and* a bit-flipped line from a bad disk are both
detected on load.  Damaged lines are quarantined to
``campaign.jsonl.quarantine`` with a warning — never silently dropped,
and never allowed to raise: every intact record after a damaged one is
still recovered.

The store is safe to *tail while a writer appends*: :meth:`ResultStore.
tail` consumes only newline-terminated lines, so a reader polling a live
campaign (the ``repro.serve`` result stream) never misreads an append in
flight as damage — it just picks the record up on its next poll.

At campaign end the orchestrator rewrites the file sorted by job id, and
writes the separate ``aggregate.json`` artifact containing only the
deterministic fields (no wall-clock, no attempt counts), which is the
thing asserted byte-identical across worker counts — and across
crash/resume cycles (see docs/checkpoint.md).
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

try:                                   # POSIX advisory file locking
    import fcntl
except ImportError:                    # pragma: no cover - non-POSIX host
    fcntl = None

from .spec import canonical_json

STORE_NAME = "campaign.jsonl"
AGGREGATE_NAME = "aggregate.json"

#: per-record checksum field; stripped again on load
CRC_FIELD = "_crc32"

#: damaged lines are preserved here, one per line, for post-mortems
QUARANTINE_SUFFIX = ".quarantine"

#: advisory inter-process lock guarding appends (and fenced commits)
LOCK_SUFFIX = ".lock"


def seal_record(record: Dict) -> str:
    """Render one record line with its ``_crc32`` over the canonical rest.

    Public: the resilience admission journal shares this exact line
    format, so one pair of seal/unseal functions guards both logs.
    """
    body = {key: value for key, value in record.items() if key != CRC_FIELD}
    crc = zlib.crc32(canonical_json(body).encode("utf-8"))
    sealed = dict(body)
    sealed[CRC_FIELD] = crc
    return json.dumps(sealed, sort_keys=True)


def unseal_record(line: str) -> Dict:
    """Parse and verify one record line; raises ``ValueError`` if damaged."""
    record = json.loads(line)          # may raise JSONDecodeError
    if not isinstance(record, dict):
        raise ValueError("record line is not a JSON object")
    if CRC_FIELD in record:
        stored = record.pop(CRC_FIELD)
        crc = zlib.crc32(canonical_json(record).encode("utf-8"))
        if crc != stored:
            raise ValueError(
                f"record failed its CRC check (stored {stored}, "
                f"computed {crc})")
    # records written before checksums were introduced load unchanged
    return record


# internal aliases kept for the store's own call sites
_seal = seal_record
_unseal = unseal_record


class ResultStore:
    """Append-oriented JSONL record log with atomic rewrite."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, STORE_NAME)
        self.aggregate_path = os.path.join(directory, AGGREGATE_NAME)
        self.quarantine_path = self.path + QUARANTINE_SUFFIX
        self.lock_path = self.path + LOCK_SUFFIX

    @contextmanager
    def lock(self):
        """Advisory inter-process lock on the store (``flock``).

        Held around every :meth:`append`, so two writer *processes* (the
        multi-node cluster's whole premise) can never interleave a torn
        line.  The lock lives in a sidecar file — never the JSONL itself,
        whose atomic :meth:`rewrite` would otherwise swap the inode out
        from under a waiting locker.  A SIGKILLed holder releases the
        lock automatically (the kernel drops ``flock`` locks on close).
        Callers may also take it explicitly to make a read-then-append
        sequence atomic against other writers — it is reentrant-unsafe,
        so never nest it.
        """
        if fcntl is None:              # pragma: no cover - non-POSIX host
            yield
            return
        handle = open(self.lock_path, "a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    def append(self, record: Dict,
               fence: Optional[Callable[[], None]] = None) -> None:
        """Durably append one checksummed record line.

        The line is flushed and fsynced before returning, so a record the
        caller believes is stored survives an immediate process kill;
        the worst a crash can leave is one torn final line, which
        :meth:`load` detects and quarantines.  The whole append runs
        under the store's inter-process :meth:`lock`, so concurrent
        writer processes serialize instead of interleaving.

        ``fence`` is the stale-claim guard for multi-node execution: a
        callable invoked *inside* the lock, before any byte is written.
        If it raises (``repro.errors.StaleLeaseError`` by convention),
        nothing is appended — which is how a revived node that lost its
        lease while paused is prevented from double-committing work that
        has since migrated to another node.
        """
        with self.lock():
            if fence is not None:
                fence()
            with open(self.path, "a") as handle:
                handle.write(_seal(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def _quarantine_line(self, line: str, reason: str) -> None:
        warnings.warn(
            f"result store {self.path}: skipping damaged record "
            f"({reason}); preserved in {self.quarantine_path}",
            RuntimeWarning, stacklevel=3)
        with open(self.quarantine_path, "a") as handle:
            handle.write(line + "\n")

    def load(self) -> List[Dict]:
        """Read back every intact record, quarantining damaged lines.

        A corrupt *complete* line (newline-terminated but failing its CRC
        or JSON parse) is quarantined: warn, copy the raw line to the
        quarantine file, keep scanning — records after the damage are not
        lost.  An *unterminated* final fragment is different: it is either
        an append in flight on a live writer or a torn tail from a kill
        mid-append, and in both cases the writer may still complete it —
        so it is skipped with a warning, never quarantined, and left in
        the file for the next reader.  (Before this distinction existed,
        any reader polling a live store would "quarantine" every append
        it happened to race — the concurrent-tailer bug.)
        """
        records: List[Dict] = []
        try:
            with open(self.path, "r") as handle:
                content = handle.read()
        except FileNotFoundError:
            return records
        complete, sep, partial = content.rpartition("\n")
        if partial.strip():
            warnings.warn(
                f"result store {self.path}: ignoring an unterminated "
                f"partial tail line ({len(partial)} bytes) — either an "
                f"append in flight or a torn tail from a kill",
                RuntimeWarning, stacklevel=2)
        if sep:
            for line in complete.split("\n"):
                if not line.strip():
                    continue
                try:
                    records.append(_unseal(line))
                except (json.JSONDecodeError, ValueError) as exc:
                    self._quarantine_line(line, str(exc))
        return records

    def tail(self, offset: int = 0) -> Tuple[List[Dict], int]:
        """Incrementally read records appended at or after byte ``offset``.

        The concurrent-tailer API: safe to call while a writer is
        appending.  Only newline-terminated lines are consumed, so a
        partially-written last line is *not* misread as damage — it is
        simply not consumed, and the next poll (with the returned offset)
        picks it up once the writer finishes it.  Damaged complete lines
        are skipped with a warning but never quarantined: a tailer is a
        read-only observer and must not race the writer (or other
        tailers) for the quarantine file.

        Returns ``(records, next_offset)``.  If an atomic :meth:`rewrite`
        happened underneath — the file shrank below ``offset``, or
        ``offset`` no longer sits on a record boundary (the byte before
        it is not a newline) — the tailer holds its position and returns
        no records rather than replaying lines it already delivered or
        misreading mid-line bytes as damage.
        """
        if offset < 0:
            offset = 0
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size <= offset:
                    return [], offset
                if offset > 0:
                    handle.seek(offset - 1)
                    if handle.read(1) != b"\n":
                        return [], offset
                else:
                    handle.seek(offset)
                chunk = handle.read(size - offset)
        except FileNotFoundError:
            return [], offset
        complete, sep, _partial = chunk.rpartition(b"\n")
        if not sep:
            return [], offset
        records: List[Dict] = []
        for raw in complete.split(b"\n"):
            line = raw.decode("utf-8", "replace")
            if not line.strip():
                continue
            try:
                records.append(_unseal(line))
            except (json.JSONDecodeError, ValueError) as exc:
                warnings.warn(
                    f"result store {self.path}: tail skipped a damaged "
                    f"record ({exc})", RuntimeWarning, stacklevel=2)
        return records, offset + len(complete) + len(sep)

    def rewrite(self, records: Iterable[Dict]) -> None:
        """Atomically replace the log with ``records`` (caller-sorted)."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            for record in records:
                handle.write(_seal(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def write_aggregate(self, records: Iterable[Dict],
                        quarantined: Iterable[Dict]) -> str:
        """Write the deterministic aggregate artifact.

        Only content-derived fields go in: job spec, digest, and result
        payload for completed jobs, plus the ids of quarantined jobs.
        Timing and attempt metadata stay in the JSONL log — they vary
        between runs and would break the byte-identity guarantee.
        """
        body = {
            "jobs": [
                {
                    "job_id": record["job_id"],
                    "digest": record["digest"],
                    "job": record["job"],
                    "payload": record["payload"],
                }
                for record in sorted(records, key=lambda r: r["job_id"])
            ],
            "quarantined": sorted(
                record["job_id"] for record in quarantined),
        }
        tmp = self.aggregate_path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_json(body))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.aggregate_path)
        return self.aggregate_path
