"""JSONL campaign result store.

One line per completed job record, appended as jobs finish so a killed
campaign leaves a valid prefix behind — that prefix is exactly what
``--resume`` replays.  At campaign end the orchestrator rewrites the file
sorted by job id, and writes the separate ``aggregate.json`` artifact
containing only the deterministic fields (no wall-clock, no attempt
counts), which is the thing asserted byte-identical across worker counts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List

from .spec import canonical_json

STORE_NAME = "campaign.jsonl"
AGGREGATE_NAME = "aggregate.json"


class ResultStore:
    """Append-oriented JSONL record log with atomic rewrite."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, STORE_NAME)
        self.aggregate_path = os.path.join(directory, AGGREGATE_NAME)

    def append(self, record: Dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def load(self) -> List[Dict]:
        """Read back all records, skipping a torn final line if present."""
        records: List[Dict] = []
        try:
            with open(self.path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError:
                        break      # torn tail from a killed campaign
        except FileNotFoundError:
            pass
        return records

    def rewrite(self, records: Iterable[Dict]) -> None:
        """Replace the log with ``records`` (sorted by the caller)."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def write_aggregate(self, records: Iterable[Dict],
                        quarantined: Iterable[Dict]) -> str:
        """Write the deterministic aggregate artifact.

        Only content-derived fields go in: job spec, digest, and result
        payload for completed jobs, plus the ids of quarantined jobs.
        Timing and attempt metadata stay in the JSONL log — they vary
        between runs and would break the byte-identity guarantee.
        """
        body = {
            "jobs": [
                {
                    "job_id": record["job_id"],
                    "digest": record["digest"],
                    "job": record["job"],
                    "payload": record["payload"],
                }
                for record in sorted(records, key=lambda r: r["job_id"])
            ],
            "quarantined": sorted(
                record["job_id"] for record in quarantined),
        }
        tmp = self.aggregate_path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(canonical_json(body))
        os.replace(tmp, self.aggregate_path)
        return self.aggregate_path
