"""Programmatic campaign API — one entry path for CLI, service, and code.

Historically ``repro campaign`` owned the wiring from "a population
description" to "a running :class:`CampaignRunner`": generate customers,
fan out the job matrix, pick runner knobs.  ``repro.serve`` needs the
identical path minus argparse, so the wiring lives here as data
(:class:`CampaignSpec`) plus one function (:func:`run_campaign`) and both
front-ends call it — a submitted HTTP campaign and a CLI campaign of the
same spec are *the same computation*, which is what makes the service's
byte-identity acceptance test (service SSE payloads == offline aggregate)
possible at all.

:func:`run_campaign` stays backward compatible with the original
orchestrator helper: passing a sequence of :class:`CampaignJob` still
works, so existing callers and tests are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .orchestrator import CampaignReport, CampaignRunner
from .spec import CampaignJob, build_matrix

#: runner knobs forwarded verbatim to :class:`CampaignRunner`
RUNNER_KWARGS = ("workers", "cache_dir", "campaign_dir", "max_retries",
                 "backoff_s", "max_backoff_s", "timeout_s", "resume",
                 "fault_plan", "checkpoint_every", "should_yield",
                 "deadline_s", "backend")


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign request: what to run, not how to run it.

    Everything here feeds job *content* (and therefore cache digests);
    execution knobs (workers, dirs, retries, ...) are deliberately not
    part of the spec — they change wall clock, never results, and belong
    to the caller of :func:`run_campaign`.

    Either a generated population (``count``/``seed`` → customer
    generator) or an explicit ``jobs`` list of
    ``CampaignJob.to_dict()``-shaped dicts; the two are mutually
    exclusive.
    """

    count: int = 8                # generated customer population size
    cycles: int = 100_000         # cycle budget per job
    device: str = "tc1797"        # SoC config key
    seed: int = 2008              # population + device build seed
    ipc_resolution: int = 256     # IPC sample window (cycles)
    rate_per: int = 100           # event-rate resolution (instructions)
    drill: bool = False           # append an always-crashing drill job
    jobs: Optional[Tuple[Dict, ...]] = None   # explicit job dicts instead
    #: optional wall-clock deadline for the whole campaign, in seconds
    #: from admission.  The one spec field that is *not* job content: it
    #: bounds how long the result is worth computing, not what to
    #: compute, so it never feeds cache digests or payload bytes.
    deadline_s: Optional[float] = None
    #: execution backend: ``"scalar"`` (one job at a time, the live
    #: measurement plane) or ``"batch"`` (numpy lane groups — same-config
    #: jobs fanned into one :class:`~repro.batch.LaneSimulator`).  Like
    #: ``deadline_s`` it is not job content: payloads are byte-identical
    #: either way (the batch backend's contract), so it never feeds cache
    #: digests or payload bytes.
    backend: str = "scalar"

    #: admissible bounds — the service exposes this spec to untrusted
    #: tenants, so limits live with the spec, not with each front-end
    MAX_COUNT = 256
    MAX_CYCLES = 50_000_000

    def __post_init__(self) -> None:
        if self.backend not in ("scalar", "batch"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                f"choose from ['batch', 'scalar']")
        if self.deadline_s is not None:
            try:
                deadline = float(self.deadline_s)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"deadline_s must be a number of seconds, got "
                    f"{self.deadline_s!r}")
            if not 0 < deadline < float("inf"):
                raise ConfigurationError(
                    f"deadline_s must be a positive finite number of "
                    f"seconds, got {self.deadline_s!r}")
            object.__setattr__(self, "deadline_s", deadline)
        if self.jobs is not None:
            object.__setattr__(self, "jobs", tuple(
                dict(job) for job in self.jobs))
            if not self.jobs:
                raise ConfigurationError("explicit jobs list is empty")
            return
        if not 1 <= int(self.count) <= self.MAX_COUNT:
            raise ConfigurationError(
                f"count must be in 1..{self.MAX_COUNT}, got {self.count}")
        if not 1 <= int(self.cycles) <= self.MAX_CYCLES:
            raise ConfigurationError(
                f"cycles must be in 1..{self.MAX_CYCLES}, got {self.cycles}")
        if int(self.ipc_resolution) < 1 or int(self.rate_per) < 1:
            raise ConfigurationError(
                "ipc_resolution and rate_per must be >= 1")
        from ..soc.config import tc1767_config, tc1797_config  # noqa: F401
        if self.device not in ("tc1797", "tc1767"):
            raise ConfigurationError(
                f"unknown device {self.device!r}; "
                f"choose from ['tc1767', 'tc1797']")

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignSpec":
        """Validated construction from untrusted input (HTTP bodies).

        Unknown keys are rejected rather than ignored — a client typo
        like ``"cycle"`` must fail loudly, not silently run the default.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("campaign spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec fields {unknown}; "
                f"known fields: {sorted(known)}")
        body = dict(payload)
        if body.get("jobs") is not None:
            body["jobs"] = tuple(body["jobs"])
        return cls(**body)

    def to_dict(self) -> Dict:
        body = {
            "count": self.count, "cycles": self.cycles,
            "device": self.device, "seed": self.seed,
            "ipc_resolution": self.ipc_resolution,
            "rate_per": self.rate_per, "drill": self.drill,
        }
        if self.jobs is not None:
            body["jobs"] = [dict(job) for job in self.jobs]
        # only present when set, so pre-deadline spec documents (and
        # their client-side digests) are byte-for-byte unchanged
        if self.deadline_s is not None:
            body["deadline_s"] = self.deadline_s
        if self.backend != "scalar":
            body["backend"] = self.backend
        return body

    def customers(self) -> List:
        """The generated customer population (portfolio ranking needs it)."""
        from ..workloads import CustomerGenerator
        if self.jobs is not None:
            raise ConfigurationError(
                "an explicit-jobs spec has no generated population")
        return CustomerGenerator(seed=self.seed).generate(self.count)

    def build_jobs(self) -> List[CampaignJob]:
        """Deterministic job matrix for this spec."""
        if self.jobs is not None:
            try:
                return [CampaignJob.from_dict(job) for job in self.jobs]
            except TypeError as exc:
                raise ConfigurationError(f"bad job spec: {exc}")
        jobs = build_matrix(self.customers(), devices=(self.device,),
                            cycle_budgets=(self.cycles,), seed=self.seed,
                            ipc_resolution=self.ipc_resolution,
                            rate_per=self.rate_per)
        if self.drill:
            jobs = jobs + [CampaignJob(
                name="fault-drill", domain="engine", device=self.device,
                params={}, cycles=self.cycles, seed=self.seed,
                fault="crash")]
        return jobs


SpecLike = Union[CampaignSpec, Dict, Sequence[CampaignJob]]


def jobs_for(spec: SpecLike) -> List[CampaignJob]:
    """Resolve any accepted spec form into a concrete job list."""
    if isinstance(spec, CampaignSpec):
        return spec.build_jobs()
    if isinstance(spec, dict):
        return CampaignSpec.from_dict(spec).build_jobs()
    jobs = list(spec)
    for job in jobs:
        if not isinstance(job, CampaignJob):
            raise ConfigurationError(
                f"expected CampaignJob entries, got {type(job).__name__}")
    return jobs


def run_campaign(spec: SpecLike, **kwargs) -> CampaignReport:
    """Run one campaign from a spec (or, back-compat, a job list).

    ``spec`` may be a :class:`CampaignSpec`, its dict form (exactly what
    ``POST /v1/campaigns`` accepts), or — the historical signature — a
    sequence of :class:`CampaignJob`.  ``kwargs`` are the
    :class:`CampaignRunner` execution knobs (``workers``, ``cache_dir``,
    ``campaign_dir``, ``max_retries``, ``backoff_s``, ``timeout_s``,
    ``resume``, ``fault_plan``, ``checkpoint_every``, ``should_yield``).
    """
    unknown = sorted(set(kwargs) - set(RUNNER_KWARGS))
    if unknown:
        raise ConfigurationError(
            f"unknown runner options {unknown}; known: "
            f"{sorted(RUNNER_KWARGS)}")
    # a spec-carried deadline/backend flows into the runner unless the
    # caller overrides it explicitly (the service passes the *remaining*
    # time, and a CLI --backend flag wins over the spec document)
    if "deadline_s" not in kwargs or "backend" not in kwargs:
        if isinstance(spec, dict):
            spec = CampaignSpec.from_dict(spec)
        if isinstance(spec, CampaignSpec):
            if "deadline_s" not in kwargs and spec.deadline_s is not None:
                kwargs["deadline_s"] = spec.deadline_s
            if "backend" not in kwargs and spec.backend != "scalar":
                kwargs["backend"] = spec.backend
    return CampaignRunner(jobs_for(spec), **kwargs).run()
