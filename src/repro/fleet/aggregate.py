"""Campaign aggregation: from job payloads to the architect's matrix.

Turns the deterministic campaign records into the artifacts the
methodology consumes: the per-customer profile matrix (the E9 table, now
produced by the fleet instead of a sequential loop), trace-derived volume
weights, and a volume-weighted portfolio ranking via
:class:`repro.core.optimization.portfolio.PortfolioEvaluator`.

Weights stay trace-derived on purpose: a customer's executed-instruction
volume (mean IPC x cycles profiled) is read from the decoded profile
payload, never from simulator oracle counters — consistent with the
repo-wide rule that everything the methodology uses comes out of trace
messages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import json

from ..core.optimization.portfolio import (PortfolioEntry,
                                           PortfolioEvaluator)
from ..core.profiling.export import result_from_json


def profile_of(record: Dict):
    """Rebuild the live :class:`ProfileResult` from a campaign record."""
    return result_from_json(json.dumps(record["payload"]["profile"]))


def _mean_rate(payload: Dict, name: str) -> float:
    entry = payload["profile"]["parameters"].get(name)
    return entry["mean_rate"] if entry else 0.0


def campaign_matrix(records: Iterable[Dict]) -> List[Dict]:
    """One row per completed job: the population profile matrix."""
    rows = []
    for record in records:
        if record["status"] != "ok":
            continue
        payload = record["payload"]
        rows.append({
            "name": payload["name"],
            "domain": payload["domain"],
            "device": payload["device"],
            "cycles": payload["cycles"],
            "ipc": _mean_rate(payload, "tc.ipc"),
            "icache_miss_pct": 100 * _mean_rate(payload,
                                                "icache.miss_rate"),
            "flash_data_pct": 100 * _mean_rate(payload,
                                               "flash.data_access_rate"),
            "pcp_ipc": _mean_rate(payload, "pcp.ipc"),
            "irq_rate": _mean_rate(payload, "irq.rate"),
            "bandwidth_mbps": payload["profile"]["bandwidth_mbps"],
            "lost_messages": payload["profile"]["lost_messages"],
        })
    rows.sort(key=lambda row: row["name"])
    return rows


def matrix_table(rows: Sequence[Dict]) -> str:
    """Render the campaign profile matrix like the E9 table."""
    lines = [f"{'customer':<28}{'IPC':>6}{'I$miss%':>9}{'flashD%':>9}"
             f"{'pcpIPC':>8}{'Mbit/s':>8}{'lost':>6}"]
    for row in rows:
        lines.append(
            f"{row['name']:<28}{row['ipc']:>6.2f}"
            f"{row['icache_miss_pct']:>9.2f}{row['flash_data_pct']:>9.2f}"
            f"{row['pcp_ipc']:>8.2f}{row['bandwidth_mbps']:>8.2f}"
            f"{row['lost_messages']:>6}")
    return "\n".join(lines)


def volume_weights(records: Iterable[Dict]) -> Dict[str, float]:
    """Trace-derived customer weights: executed instructions profiled.

    mean IPC x cycles run = instruction volume, the proxy for how much
    compute each customer's application represents in the population.
    """
    weights: Dict[str, float] = {}
    for record in records:
        if record["status"] != "ok":
            continue
        payload = record["payload"]
        weights[payload["name"]] = max(
            1.0, _mean_rate(payload, "tc.ipc") * payload["cycles"])
    return weights


def rank_portfolio(customers: Sequence, records: Iterable[Dict],
                   base_config, options,
                   work_instructions: int = 80_000,
                   seed: int = 2008) -> List[PortfolioEntry]:
    """Volume-weighted option ranking over the campaign's population.

    ``customers`` is the population the campaign profiled (quarantined
    customers are dropped — no profile, no vote); weights come from
    :func:`volume_weights` over the campaign records.
    """
    records = list(records)
    weights = volume_weights(records)
    profiled = [c for c in customers if c.name in weights]
    evaluator = PortfolioEvaluator(
        profiled, base_config, options, weights=weights,
        work_instructions=work_instructions, seed=seed)
    return evaluator.evaluate()
