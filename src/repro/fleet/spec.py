"""Campaign job specifications: the unit of work a fleet worker executes.

A :class:`CampaignJob` is pure data — customer name, application domain,
scenario parameters, device config name, cycle budget, profiling spec knobs
— everything a worker process needs to rebuild the emulation device and
run one profiling session from scratch.  Keeping the spec declarative (no
live scenario/device objects cross the process boundary) is what makes
jobs shippable to a ``ProcessPoolExecutor``, hashable for the result
cache, and replayable for campaign resume.

Identity is content-addressed: :func:`job_digest` hashes the canonical
JSON of the spec together with the package version, so any change to a
customer's parameters, the device config choice, the cycle budget, or the
simulator version yields a new cache key.  :func:`assign_shards` maps the
job list onto worker shards by digest — the mapping depends only on the
job set and shard count, never on submission or completion order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import __version__
from ..errors import ConfigurationError

#: bump when the worker payload layout changes — invalidates every cache
#: entry written by older code
SCHEMA_VERSION = 2

#: fault-drill modes a job may carry (used by tests, the ``--drill`` CLI
#: flag, and resilience benchmarks): ``crash`` raises on every attempt,
#: ``flaky:N`` raises on attempts < N then succeeds, ``exit`` kills the
#: worker process outright, ``hang:S`` sleeps S seconds before succeeding.
FAULT_MODES = ("crash", "flaky", "exit", "hang")


def canonical_json(payload) -> str:
    """Canonical (sorted, whitespace-free) JSON used for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignJob:
    """One profiling run in a campaign matrix."""

    name: str                     # customer / job label (unique per matrix)
    domain: str                   # workload scenario key: engine, body, ...
    device: str                   # SoC config key: tc1797, tc1767
    params: Dict = field(default_factory=dict)   # scenario parameter set
    cycles: int = 100_000         # cycle budget to simulate
    seed: int = 2008              # device build seed
    ipc_resolution: int = 256     # IPC sample window (cycles)
    rate_per: int = 100           # event-rate resolution (instructions)
    fault: Optional[str] = None   # fault-drill mode, None in production

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "domain": self.domain,
            "device": self.device,
            "params": dict(self.params),
            "cycles": self.cycles,
            "seed": self.seed,
            "ipc_resolution": self.ipc_resolution,
            "rate_per": self.rate_per,
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CampaignJob":
        return cls(**payload)

    @property
    def digest(self) -> str:
        return job_digest(self)

    @property
    def job_id(self) -> str:
        """Stable, human-greppable identity: label plus content hash."""
        return f"{self.name}-{self.digest[:10]}"


def job_digest(job: CampaignJob) -> str:
    """Content hash of (job spec, package version, payload schema)."""
    body = canonical_json({
        "job": job.to_dict(),
        "version": __version__,
        "schema": SCHEMA_VERSION,
    })
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def build_matrix(customers: Sequence,
                 devices: Iterable[str] = ("tc1797",),
                 cycle_budgets: Iterable[int] = (100_000,),
                 seed: int = 2008,
                 ipc_resolution: int = 256,
                 rate_per: int = 100) -> List[CampaignJob]:
    """Fan a customer population out over devices and cycle budgets.

    ``customers`` are :class:`repro.workloads.Customer` objects (or
    anything with ``name``/``domain``/``params``).  The matrix order is
    deterministic: customers in given order, then devices, then budgets.
    """
    devices = tuple(devices)
    cycle_budgets = tuple(cycle_budgets)
    jobs: List[CampaignJob] = []
    for customer in customers:
        for device in devices:
            for cycles in cycle_budgets:
                label = customer.name
                if len(devices) > 1:
                    label += f"@{device}"
                if len(cycle_budgets) > 1:
                    label += f"/{cycles}"
                jobs.append(CampaignJob(
                    name=label,
                    domain=customer.domain,
                    device=device,
                    params=dict(customer.params),
                    cycles=cycles,
                    seed=seed,
                    ipc_resolution=ipc_resolution,
                    rate_per=rate_per,
                ))
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ConfigurationError("campaign job labels must be unique")
    return jobs


def assign_shards(jobs: Sequence[CampaignJob],
                  n_shards: int) -> List[List[CampaignJob]]:
    """Deterministically partition jobs into at most ``n_shards`` shards.

    A job's shard is ``int(digest, 16) % n_shards`` — a pure function of
    job content and shard count, independent of list order or timing, so a
    re-run of the same campaign shards identically.  Jobs within a shard
    are ordered by ``job_id``; empty shards are dropped.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    buckets: List[List[CampaignJob]] = [[] for _ in range(n_shards)]
    for job in sorted(jobs, key=lambda j: j.job_id):
        buckets[int(job.digest, 16) % n_shards].append(job)
    return [bucket for bucket in buckets if bucket]
