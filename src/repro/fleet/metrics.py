"""Campaign metrics: throughput, cache efficiency, worker utilization.

The numbers an operator reads after a campaign: how many jobs ran vs came
from cache or a resumed store, how hard the worker pool was driven, and
the per-job wall-clock distribution.  ``busy_s`` sums the in-worker wall
time of every executed attempt (retries included), so utilization is
``busy / (campaign wall x workers)`` — the classic pool-efficiency ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CampaignMetrics:
    """Aggregated counters for one campaign run."""

    total_jobs: int = 0
    executed: int = 0            # jobs that ran in a worker this campaign
    cache_hits: int = 0
    resumed: int = 0             # satisfied from a prior store via --resume
    quarantined: int = 0
    retries: int = 0             # extra attempts beyond the first
    workers: int = 1
    wall_s: float = 0.0          # whole-campaign wall clock
    busy_s: float = 0.0          # summed in-worker job wall clock
    sim_cycles: int = 0          # simulated cycles across executed jobs
    job_walls: List[float] = field(default_factory=list)
    # degradation accounting, summed over every completed payload
    lost_messages: int = 0
    trace_gaps: int = 0
    degraded_samples: int = 0
    # crash-recovery accounting (only non-zero with --checkpoint-every):
    # the retry budget is measured in lost cycles, not lost jobs
    checkpoint_saves: int = 0
    checkpoint_resumes: int = 0      # attempts that resumed mid-run
    cycles_recovered: int = 0        # cycles NOT re-simulated on resume

    @property
    def completed(self) -> int:
        return self.executed + self.cache_hits + self.resumed

    @property
    def jobs_per_sec(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @property
    def worker_utilization(self) -> float:
        capacity = self.wall_s * max(1, self.workers)
        return min(1.0, self.busy_s / capacity) if capacity > 0 else 0.0

    @property
    def sim_cycles_per_sec(self) -> float:
        """Fleet-wide simulation throughput over in-worker busy time.

        Only executed jobs contribute cycles (cache hits and resumes cost
        no simulation), so this is the kernel-throughput number a
        ``repro profile-kernel`` run should roughly reproduce per worker.
        """
        return self.sim_cycles / self.busy_s if self.busy_s > 0 else 0.0

    def note_payload(self, payload: Dict) -> None:
        """Fold one completed job payload into the degradation counters.

        Reads the canonical profile export inside the payload, so cache
        hits and resumed records contribute the same numbers a fresh
        execution would — the counts are properties of the results, not
        of how they were obtained.
        """
        profile = payload.get("profile") if isinstance(payload, dict) else None
        if not isinstance(profile, dict):
            return
        self.lost_messages += int(profile.get("lost_messages", 0) or 0)
        self.trace_gaps += len(profile.get("gaps", ()))
        for entry in profile.get("parameters", {}).values():
            self.degraded_samples += len(entry.get("degraded", ()))

    def note_checkpoint(self, stats: Dict) -> None:
        """Fold one attempt's checkpoint accounting (worker outcome dict)."""
        if not isinstance(stats, dict):
            return
        self.checkpoint_saves += int(stats.get("saves", 0) or 0)
        resumed = int(stats.get("resumed_from_cycle", 0) or 0)
        if resumed > 0:
            self.checkpoint_resumes += 1
            self.cycles_recovered += resumed

    @property
    def mean_job_wall_s(self) -> float:
        if not self.job_walls:
            return 0.0
        return sum(self.job_walls) / len(self.job_walls)

    @property
    def max_job_wall_s(self) -> float:
        return max(self.job_walls) if self.job_walls else 0.0

    def summary_table(self) -> str:
        rows = [
            ("jobs total", f"{self.total_jobs}"),
            ("executed", f"{self.executed}"),
            ("cache hits", f"{self.cache_hits}"
                           f" ({100 * self.cache_hit_rate:.0f}%)"),
            ("resumed", f"{self.resumed}"),
            ("quarantined", f"{self.quarantined}"),
            ("retries", f"{self.retries}"),
            ("workers", f"{self.workers}"),
            ("campaign wall", f"{self.wall_s:.2f} s"),
            ("throughput", f"{self.jobs_per_sec:.2f} jobs/s"),
            ("worker utilization", f"{100 * self.worker_utilization:.0f}%"),
            ("sim throughput", f"{self.sim_cycles_per_sec:,.0f} cycles/s"
                               f" ({self.sim_cycles:,} cycles)"),
            ("job wall mean/max", f"{self.mean_job_wall_s:.2f} s"
                                  f" / {self.max_job_wall_s:.2f} s"),
            ("degradation", f"{self.lost_messages} lost msgs / "
                            f"{self.trace_gaps} gaps / "
                            f"{self.degraded_samples} degraded samples"),
        ]
        if self.checkpoint_saves or self.checkpoint_resumes:
            rows.append(
                ("crash recovery",
                 f"{self.checkpoint_saves} checkpoints / "
                 f"{self.checkpoint_resumes} resumes / "
                 f"{self.cycles_recovered:,} cycles recovered"))
        width = max(len(label) for label, _ in rows) + 2
        return "\n".join(f"{label:<{width}}{value}"
                         for label, value in rows)
