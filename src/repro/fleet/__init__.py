"""repro.fleet — parallel profiling-campaign subsystem.

The paper's architect optimizes for a *population* of customers
(Section 4); this package runs that population as a campaign: a matrix of
(customer x device config x parameter set x cycle budget) jobs fanned out
over a fault-tolerant process pool, with deterministic sharding, a
content-addressed result cache, retry-with-backoff plus poison-job
quarantine, a JSONL result store with resume, and campaign metrics.

Results are bit-identical to the sequential path regardless of worker
count — parallelism changes the wall clock, never the science.
"""

from .aggregate import (campaign_matrix, matrix_table, profile_of,
                        rank_portfolio, volume_weights)
# run_campaign is the polymorphic api entry point (spec dict | CampaignSpec
# | job list); the orchestrator's job-list helper stays importable as
# repro.fleet.orchestrator.run_campaign for anyone who bound to it
from .api import CampaignSpec, jobs_for, run_campaign
from .cache import ResultCache
from .metrics import CampaignMetrics
from .orchestrator import CampaignReport, CampaignRunner
from .spec import (CampaignJob, assign_shards, build_matrix, canonical_json,
                   job_digest)
from .store import ResultStore
from .worker import execute_job, run_shard

__all__ = [
    "CampaignJob", "CampaignMetrics", "CampaignReport", "CampaignRunner",
    "CampaignSpec", "ResultCache", "ResultStore", "assign_shards",
    "build_matrix", "campaign_matrix", "canonical_json", "execute_job",
    "job_digest", "jobs_for", "matrix_table", "profile_of",
    "rank_portfolio", "run_campaign", "run_shard", "volume_weights",
]
