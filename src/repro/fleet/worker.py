"""Fleet worker: executes campaign jobs inside a worker process.

:func:`run_shard` is the function shipped to the ``ProcessPoolExecutor``
— a module-level callable taking only plain dictionaries, so it pickles
under any start method.  Each job rebuilds its scenario and emulation
device from the declarative spec, runs one profiling session, and returns
the result as the canonical JSON payload produced by
:func:`repro.core.profiling.export.result_to_json`.  Because every job
builds a fresh device from a fixed seed, a job's payload is bit-identical
no matter which process (or how many processes) ran it — the determinism
the orchestrator's ``--workers N`` equivalence guarantee rests on.

Faults raised by a job are caught *per job* and returned as structured
error outcomes; one poisoned job never takes down its shard-mates.  (A
worker process dying outright — the ``exit`` drill — is the orchestrator's
problem; it shows up there as a broken pool.)
"""

from __future__ import annotations

import json
import os
import time
import traceback
from typing import Callable, Dict, List, Optional

from ..checkpoint import (PREV_SUFFIX, CheckpointError,
                          load_latest_checkpoint, save_checkpoint)
from ..core.profiling.export import result_to_json
from ..core.profiling.session import ProfilingSession
from ..core.profiling import spec as pspec
from ..errors import (CampaignPreempted, ConfigurationError,
                      DeadlineExceeded, FaultInjected)
from ..faults import (FaultInjector, FaultPlan, SimulationWatchdog,
                      active_injector, fault_point)
from ..obs import bridge as _obs_bridge
from ..obs import runtime as _obs
from ..soc.config import tc1767_config, tc1797_config
from .spec import CampaignJob
from ..workloads.body import BodyGatewayScenario
from ..workloads.engine import EngineControlScenario
from ..workloads.rtos import RtosScenario
from ..workloads.transmission import TransmissionScenario

SCENARIOS = {
    "engine": EngineControlScenario,
    "transmission": TransmissionScenario,
    "body": BodyGatewayScenario,
    "rtos": RtosScenario,
}

CONFIGS = {
    "tc1797": tc1797_config,
    "tc1767": tc1767_config,
}


class JobFault(FaultInjected):
    """Raised by a job's fault-drill mode (see ``CampaignJob.fault``)."""


def _apply_fault(fault: Optional[str], attempt: int) -> None:
    if not fault:
        return
    if fault == "crash":
        raise JobFault("fault drill: unconditional crash")
    if fault.startswith("flaky:"):
        threshold = int(fault.split(":", 1)[1])
        if attempt < threshold:
            raise JobFault(
                f"fault drill: flaky failure on attempt {attempt}")
        return
    if fault == "exit":
        os._exit(17)           # hard process death, not an exception
    if fault.startswith("hang:"):
        time.sleep(float(fault.split(":", 1)[1]))
        return
    raise ConfigurationError(f"unknown fault mode {fault!r}")


def checkpoint_path(checkpoint_dir: str, job: Dict) -> str:
    """Where a job's periodic checkpoint lives (content-addressed name)."""
    return os.path.join(checkpoint_dir,
                        CampaignJob.from_dict(job).job_id + ".ckpt")


def _discard_checkpoints(path: str) -> None:
    """Remove a finished job's checkpoint (and its rotated fallback)."""
    for candidate in (path, path + PREV_SUFFIX):
        try:
            os.unlink(candidate)
        except FileNotFoundError:
            pass


def _try_restore(device, job: Dict, path: str) -> int:
    """Resume ``device`` from the job's latest usable checkpoint.

    Returns the cycle the device resumed at, or 0 when no checkpoint
    exists, none passes its CRC, the digest belongs to a different job
    spec, or the body does not fit this device — every rejection falls
    back cleanly (ultimately to cycle 0) instead of raising.
    """
    loaded = load_latest_checkpoint(path)
    if loaded is None:
        return 0
    body, meta, used = loaded
    tel = _obs._active
    digest = CampaignJob.from_dict(job).digest
    if meta.get("digest") != digest:
        if tel is not None:
            tel.checkpoint_restored(
                "rejected", used,
                error="digest mismatch: checkpoint was written by a "
                      "different job spec or package version")
        return 0
    try:
        device.soc.sim.restore_state(body["sim"])
    except CheckpointError as exc:
        # restore_state validates before mutating, so the device is
        # still pristine — run from cycle 0
        if tel is not None:
            tel.checkpoint_restored("rejected", used, error=str(exc))
        return 0
    injector = active_injector()
    if injector is not None and body.get("injector") is not None:
        injector.restore_state(body["injector"])
    if tel is not None:
        tel.checkpoint_restored("success", used, cycle=device.cycle)
    return device.cycle


def _run_checkpointed(job: Dict, device, checkpoint: Dict,
                      stats: Dict, attempt: int = 0,
                      should_yield: Optional[Callable[[], bool]] = None,
                      deadline_at: Optional[float] = None) -> None:
    """Run the job's cycle budget in checkpoint-sized chunks.

    After every full chunk an atomic checkpoint (simulator state plus
    the fault injector's decision state) is written, then the
    ``worker.crash`` site is evaluated at ``phase="checkpoint"`` so chaos
    plans can kill the worker at the exact point a real crash would be
    recovered from.  A retry finds the file and resumes mid-run — the
    retry budget is measured in lost cycles, not lost jobs.

    ``should_yield`` is the cooperative-preemption hook: it is consulted
    right after each checkpoint lands on disk, the one point where
    stopping loses nothing — raising :class:`CampaignPreempted` here
    leaves the checkpoint in place (completion is what discards it), so
    a later resume continues from this exact cycle byte-identically.

    ``deadline_at`` (absolute ``time.time()``) is the campaign's
    wall-clock watchdog at the same granularity: checked at every
    checkpoint boundary, raising :class:`DeadlineExceeded` instead of
    letting a stale job keep simulating.  The checkpoint cadence bounds
    how far past the deadline a job can overshoot.
    """
    every = int(checkpoint["every"])
    if every < 1:
        raise ConfigurationError("checkpoint interval must be >= 1 cycle")
    path = checkpoint_path(checkpoint["dir"], job)
    stats["resumed_from_cycle"] = _try_restore(device, job, path)
    stats.setdefault("saves", 0)
    target = int(job["cycles"])
    digest = CampaignJob.from_dict(job).digest
    while device.cycle < target:
        device.run(min(every, target - device.cycle))
        if device.cycle >= target:
            break
        injector = active_injector()
        save_checkpoint(path, {
            "sim": device.soc.sim.snapshot_state(),
            "injector": injector.snapshot_state()
            if injector is not None else None,
        }, meta={"kind": "worker", "job_id": CampaignJob.from_dict(job).job_id,
                 "digest": digest, "cycle": device.cycle})
        stats["saves"] += 1
        action = fault_point("worker.crash", job=job["name"],
                             attempt=attempt, phase="checkpoint",
                             cycle=device.cycle)
        if action is not None:
            raise FaultInjected(
                f"injected worker crash after checkpoint at cycle "
                f"{device.cycle} in job {job['name']!r}")
        if should_yield is not None and should_yield():
            raise CampaignPreempted(
                f"preempted at checkpoint boundary: cycle {device.cycle} "
                f"of {target} in job {job['name']!r}")
        if deadline_at is not None and time.time() > deadline_at:
            raise DeadlineExceeded(
                f"campaign deadline passed at checkpoint boundary: cycle "
                f"{device.cycle} of {target} in job {job['name']!r}")
    _discard_checkpoints(path)


def _execute(job: Dict, watchdog_spec: Optional[Dict] = None,
             checkpoint: Optional[Dict] = None,
             stats: Optional[Dict] = None, attempt: int = 0,
             should_yield: Optional[Callable[[], bool]] = None,
             deadline_at: Optional[float] = None) -> Dict:
    """Build the device, run the session, serialise the payload."""
    tel = _obs._active
    if tel is not None:
        # only reached with in-process execution (workers=0) or inside a
        # worker that installed its own telemetry; pool workers inherit
        # nothing and skip straight to the bare path
        with tel.span("job.execute", cat="fleet", job=job["name"],
                      domain=job["domain"], device=job["device"]):
            return _execute_bare(job, watchdog_spec, checkpoint, stats,
                                 attempt, should_yield, deadline_at)
    return _execute_bare(job, watchdog_spec, checkpoint, stats, attempt,
                         should_yield, deadline_at)


def _execute_bare(job: Dict, watchdog_spec: Optional[Dict] = None,
                  checkpoint: Optional[Dict] = None,
                  stats: Optional[Dict] = None,
                  attempt: int = 0,
                  should_yield: Optional[Callable[[], bool]] = None,
                  deadline_at: Optional[float] = None) -> Dict:
    try:
        scenario = SCENARIOS[job["domain"]]()
    except KeyError:
        raise ConfigurationError(
            f"unknown workload domain {job['domain']!r}")
    try:
        config = CONFIGS[job["device"]]()
    except KeyError:
        raise ConfigurationError(f"unknown device config {job['device']!r}")
    device = scenario.build(config, dict(job["params"]), seed=job["seed"])
    session = ProfilingSession(
        device, pspec.engine_parameter_set(
            ipc_resolution=job["ipc_resolution"],
            rate_per=job["rate_per"]))
    if checkpoint:
        # the roster must be final before a restore can be attempted, and
        # the watchdog must be guarded *around* the restore so a resumed
        # roster matches the one the checkpoint captured
        device.soc._ensure_order()
        if stats is None:
            stats = {}
        if watchdog_spec:
            with SimulationWatchdog(**watchdog_spec).guard(device):
                _run_checkpointed(job, device, checkpoint, stats, attempt,
                                  should_yield, deadline_at)
        else:
            _run_checkpointed(job, device, checkpoint, stats, attempt,
                              should_yield, deadline_at)
        result = session.result()
    elif watchdog_spec:
        with SimulationWatchdog(**watchdog_spec).guard(device):
            result = session.run(job["cycles"])
    else:
        result = session.run(job["cycles"])
    tel = _obs._active
    if tel is not None:
        # snapshot device-level stats into the registry while the device
        # still exists; metrics only, so payload bytes are unaffected
        _obs_bridge.record_device_stats(tel.registry, device)
    return {
        "name": job["name"],
        "domain": job["domain"],
        "device": job["device"],
        "cycles": job["cycles"],
        # cycles actually simulated (deterministic, unlike wall time, so it
        # may live in the payload); campaign metrics divide the sum by
        # in-worker busy time for fleet-wide simulation throughput
        "sim_cycles": device.soc.sim.cycle,
        "profile": json.loads(result_to_json(result, compact=True)),
    }


def execute_job(job: Dict, attempt: int = 0,
                fault_plan: Optional[Dict] = None,
                checkpoint: Optional[Dict] = None,
                stats: Optional[Dict] = None,
                should_yield: Optional[Callable[[], bool]] = None,
                deadline_at: Optional[float] = None) -> Dict:
    """Run one campaign job spec (a ``CampaignJob.to_dict()`` dict).

    Returns the deterministic result payload: the parsed canonical-JSON
    profile plus the identity fields aggregation needs.  With a
    ``fault_plan`` (a :class:`~repro.faults.FaultPlan` or its dict form),
    the whole job runs under an installed injector scoped to the job name,
    so injection decisions are reproducible regardless of which worker or
    shard picked the job up.

    ``checkpoint`` (``{"dir": str, "every": int}``) turns on periodic
    mid-run checkpoints: the run is chunked every ``every`` cycles and a
    retry of a crashed attempt resumes from the last intact checkpoint
    instead of cycle 0.  ``stats`` (a caller-owned dict) receives the
    non-deterministic checkpoint accounting — resumed cycle, save count —
    which must stay *out* of the payload to preserve its byte-identity.

    ``should_yield`` (in-process callers only — a callback cannot cross
    the pool's pickle boundary) requests cooperative preemption: checked
    at every checkpoint boundary, raising
    :class:`~repro.errors.CampaignPreempted` with the job's checkpoint
    left on disk for a byte-identical resume.

    ``deadline_at`` (absolute ``time.time()``, a plain float so it *does*
    cross the pickle boundary) is the campaign wall-clock deadline:
    checked at every checkpoint boundary, raising
    :class:`~repro.errors.DeadlineExceeded`.
    """
    _apply_fault(job.get("fault"), attempt)
    if fault_plan is None:
        return _execute(job, checkpoint=checkpoint, stats=stats,
                        attempt=attempt, should_yield=should_yield,
                        deadline_at=deadline_at)
    plan = fault_plan if isinstance(fault_plan, FaultPlan) \
        else FaultPlan.from_dict(fault_plan)
    with FaultInjector(plan, scope=job["name"]):
        action = fault_point("worker.crash", job=job["name"],
                             attempt=attempt)
        if action is not None:
            raise FaultInjected(
                f"injected worker crash in job {job['name']!r} "
                f"(attempt {attempt})")
        action = fault_point("worker.hang", job=job["name"],
                             attempt=attempt)
        if action is not None:
            time.sleep(float(action.params.get("seconds", 0.05)))
        return _execute(job, plan.watchdog, checkpoint, stats, attempt,
                        should_yield, deadline_at)


def run_shard(jobs: List[Dict], attempt: int = 0,
              fault_plan: Optional[Dict] = None,
              checkpoint: Optional[Dict] = None,
              should_yield: Optional[Callable[[], bool]] = None,
              deadline_at: Optional[float] = None) -> List[Dict]:
    """Execute a shard of job specs, isolating failures per job.

    Returns one outcome dict per job, in shard order::

        {"job": <spec>, "status": "ok"|"error"|"preempted",
         "payload"|"error": ...,
         "retryable": bool, "wall_s": float, "attempt": int, "pid": int,
         "checkpoint": {...}}                # only when checkpointing

    ``retryable`` comes from the exception taxonomy: deterministic model
    errors (:class:`~repro.errors.ConfigurationError`, a cycle-deadline
    :class:`~repro.errors.WatchdogExpired`, ...) can never succeed on a
    retry, while transient injected faults and unknown exceptions keep the
    default retry/backoff treatment.

    ``should_yield`` (in-process callers only) turns on cooperative
    preemption: consulted before each job and — via the checkpoint loop —
    at every checkpoint boundary.  A fired yield ends the shard early
    with a single ``"preempted"`` outcome for the interrupted job;
    outcomes for jobs that already completed are returned normally, so
    nothing finished is lost.

    ``deadline_at`` is the campaign wall-clock deadline (absolute
    ``time.time()``; pool-safe): checked before each job and at every
    checkpoint boundary.  An expired deadline ends the shard with a
    single ``"deadline"`` outcome — completed jobs are still returned,
    but the campaign is terminal (``deadline_exceeded``), never resumed.
    """
    outcomes: List[Dict] = []
    for job in jobs:
        if should_yield is not None and should_yield():
            outcomes.append({
                "job": job, "status": "preempted", "wall_s": 0.0,
                "attempt": attempt, "pid": os.getpid(),
            })
            break
        if deadline_at is not None and time.time() > deadline_at:
            outcomes.append({
                "job": job, "status": "deadline", "wall_s": 0.0,
                "attempt": attempt, "pid": os.getpid(),
            })
            break
        start = time.perf_counter()
        stats: Dict = {}
        try:
            payload = execute_job(job, attempt, fault_plan, checkpoint,
                                  stats, should_yield, deadline_at)
            outcome = {
                "job": job,
                "status": "ok",
                "payload": payload,
                "wall_s": time.perf_counter() - start,
                "attempt": attempt,
                "pid": os.getpid(),
            }
        except CampaignPreempted:
            outcome = {
                "job": job,
                "status": "preempted",
                "wall_s": time.perf_counter() - start,
                "attempt": attempt,
                "pid": os.getpid(),
            }
            if checkpoint:
                outcome["checkpoint"] = stats
            outcomes.append(outcome)
            break
        except DeadlineExceeded:
            outcome = {
                "job": job,
                "status": "deadline",
                "wall_s": time.perf_counter() - start,
                "attempt": attempt,
                "pid": os.getpid(),
            }
            if checkpoint:
                outcome["checkpoint"] = stats
            outcomes.append(outcome)
            break
        except Exception as exc:
            outcome = {
                "job": job,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "trace": traceback.format_exc(),
                "retryable": bool(getattr(exc, "retryable", True)),
                "wall_s": time.perf_counter() - start,
                "attempt": attempt,
                "pid": os.getpid(),
            }
        if checkpoint:
            # accounting lives in the outcome, never the payload: a
            # resumed payload must stay byte-identical to an
            # uninterrupted one
            outcome["checkpoint"] = stats
        outcomes.append(outcome)
    return outcomes


def _stop_outcome(job: Dict, status: str, wall_s: float,
                  attempt: int) -> Dict:
    return {"job": job, "status": status, "wall_s": wall_s,
            "attempt": attempt, "pid": os.getpid()}


def _note_batch_group(tel, group: List[Dict], wall_s: float) -> None:
    """Record a completed lane group: counters plus one ``job.execute``
    span per lane, all covering the group's wall-clock interval.

    Lanes run interleaved inside the sweep, so the honest span for any
    one lane *is* the whole group interval; the ``backend: "batch"`` arg
    is how trace queries tell these spans from scalar ones.
    """
    reg = tel.registry
    reg.get("repro_batch_groups_total").labels("ok").inc()
    reg.get("repro_batch_lanes_total").inc(len(group))
    now_us = tel.tracer.now_us()
    wall_us = wall_s * 1e6
    t0 = max(0.0, now_us - wall_us)
    for job in group:
        tel.tracer.complete(
            "job.execute", t0, now_us - t0, "fleet",
            args={"job": job["name"], "domain": job["domain"],
                  "device": job["device"], "backend": "batch",
                  "lanes": len(group)})


def _note_batch_fallback(tel, reason: str) -> None:
    reg = tel.registry
    reg.get("repro_batch_fallbacks_total").labels(reason).inc()
    reg.get("repro_batch_groups_total").labels("fallback").inc()


def run_batch_shard(jobs: List[Dict], attempt: int = 0,
                    fault_plan: Optional[Dict] = None,
                    checkpoint: Optional[Dict] = None,
                    should_yield: Optional[Callable[[], bool]] = None,
                    deadline_at: Optional[float] = None) -> List[Dict]:
    """:func:`run_shard` on the batch-lane backend.

    Jobs are grouped by :func:`repro.batch.group_key` (same SoC config,
    seed, cycle budget, and measurement grid) and each group executes as
    one :class:`~repro.batch.LaneSimulator` — N portfolio customers per
    invocation instead of N invocations.  Everything the lanes cannot
    model falls back to the scalar path with unchanged semantics:

    * a ``fault_plan`` or ``checkpoint`` request routes the whole shard
      to :func:`run_shard` (injection and mid-run checkpoints are scalar
      features by contract);
    * a group the lanes refuse (:class:`~repro.batch.BatchUnsupported`:
      fault-drill jobs, would-be EMEM overflow, counter saturation) or
      one that raises mid-sweep re-runs scalar per job, so a poisoned
      job is isolated exactly as on the scalar path.

    Outcome dicts are shaped exactly like :func:`run_shard`'s, and —
    the backend's whole contract — an ``"ok"`` payload is byte-identical
    to the one the scalar worker would have produced.  ``wall_s`` is the
    group wall clock split evenly across its lanes (wall time never
    enters payloads, so the split only feeds busy-time metrics).
    """
    if fault_plan is not None or checkpoint is not None:
        return run_shard(jobs, attempt, fault_plan, checkpoint,
                         should_yield, deadline_at)
    from ..batch import (BatchUnsupported, group_key, require_numpy,
                         run_lane_group)
    require_numpy()
    groups: Dict[tuple, List[Dict]] = {}
    for job in jobs:
        groups.setdefault(group_key(job), []).append(job)

    outcomes: List[Dict] = []
    for group in groups.values():       # first-seen job order
        if should_yield is not None and should_yield():
            outcomes.append(_stop_outcome(group[0], "preempted", 0.0,
                                          attempt))
            break
        if deadline_at is not None and time.time() > deadline_at:
            outcomes.append(_stop_outcome(group[0], "deadline", 0.0,
                                          attempt))
            break
        start = time.perf_counter()
        try:
            payloads = run_lane_group(group, should_yield=should_yield,
                                      deadline_at=deadline_at)
        except CampaignPreempted:
            outcomes.append(_stop_outcome(
                group[0], "preempted", time.perf_counter() - start,
                attempt))
            break
        except DeadlineExceeded:
            outcomes.append(_stop_outcome(
                group[0], "deadline", time.perf_counter() - start,
                attempt))
            break
        except BatchUnsupported:
            # the lanes refused the group up front — nothing ran; the
            # scalar path models whatever they could not
            tel = _obs._active
            if tel is not None:
                _note_batch_fallback(tel, "unsupported")
            outcomes.extend(run_shard(group, attempt, fault_plan,
                                      checkpoint, should_yield,
                                      deadline_at))
            if outcomes and outcomes[-1]["status"] in ("preempted",
                                                       "deadline"):
                break
            continue
        except Exception:
            # a group failing mid-sweep re-runs scalar per job: the
            # offending job gets its structured error outcome and its
            # group-mates still complete
            tel = _obs._active
            if tel is not None:
                _note_batch_fallback(tel, "error")
            outcomes.extend(run_shard(group, attempt, fault_plan,
                                      checkpoint, should_yield,
                                      deadline_at))
            if outcomes and outcomes[-1]["status"] in ("preempted",
                                                       "deadline"):
                break
            continue
        group_wall = time.perf_counter() - start
        tel = _obs._active
        if tel is not None:
            _note_batch_group(tel, group, group_wall)
        wall = group_wall / len(group)
        for job, payload in zip(group, payloads):
            outcomes.append({
                "job": job,
                "status": "ok",
                "payload": payload,
                "wall_s": wall,
                "attempt": attempt,
                "pid": os.getpid(),
            })
    return outcomes
