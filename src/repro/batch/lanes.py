"""Lane execution: N same-config portfolio customers per invocation.

A :class:`LaneSimulator` owns one simulation lane per campaign job —
every lane the same SoC configuration, seed, cycle budget, and
measurement resolution (that is what :func:`group_key` groups by), each
lane its own customer program.  Lanes advance together in fixed strides
with a numpy activity mask: a finished lane drops out of the sweep, a
quiescent lane fast-forwards inside its own kernel (the PR3 sleep-heap
machinery), and the sweep loop is where group-level cooperative
preemption and deadlines are honoured — the same contract the scalar
worker implements at job boundaries.

No lane carries the live measurement plane.  Each lane records its raw
emission stream and the profile is reconstructed afterwards as array
math (:mod:`repro.batch.measure`), byte-identical to what a scalar
:class:`~repro.core.profiling.ProfilingSession` would have decoded.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:          # pragma: no cover - guarded by require_numpy
    np = None

from ..core.profiling import spec as pspec
from ..core.profiling.export import result_to_json  # noqa: F401  (tests)
from ..core.profiling.session import ProfileResult
from ..errors import CampaignPreempted, ConfigurationError, DeadlineExceeded
from ..faults import injector as _fi
from ..obs import runtime as _obs
from .measure import EmissionLog, reconstruct_result, watched_signals

#: default sweep stride in cycles — small enough that preemption and
#: deadline checks stay responsive, large enough to amortize the sweep
STRIDE = 8192


def group_key(job: Dict) -> Tuple:
    """The lane-compatibility key: jobs sharing it may ride one group.

    Everything that shapes the simulated SoC and the measurement grid is
    in the key; the customer program (domain + params) is per-lane.
    """
    return (job["device"], job["cycles"], job["seed"],
            job["ipc_resolution"], job["rate_per"])


def _check_supported(jobs: Sequence[Dict]) -> None:
    from . import BatchUnsupported
    if not jobs:
        raise ConfigurationError("empty lane group")
    if _fi._active is not None:
        raise BatchUnsupported(
            "a fault injector is active; fault drills must run on the "
            "scalar kernel, which models the degradation they cause")
    keys = {group_key(job) for job in jobs}
    if len(keys) != 1:
        raise ConfigurationError(
            f"lane group mixes {len(keys)} incompatible configurations; "
            f"group jobs by group_key() first")
    for job in jobs:
        if job.get("fault"):
            raise BatchUnsupported(
                f"job {job['name']!r} carries a fault drill "
                f"({job['fault']!r}); run it on the scalar backend")


class LaneSimulator:
    """N lockstep simulation lanes over one SoC configuration."""

    def __init__(self, jobs: Sequence[Dict], stride: int = STRIDE) -> None:
        from . import BatchUnsupported, require_numpy
        require_numpy()
        _check_supported(jobs)
        if stride < 1:
            raise ConfigurationError("stride must be >= 1")
        from ..fleet.worker import CONFIGS, SCENARIOS
        self.jobs = [dict(job) for job in jobs]
        self.stride = stride
        self.specs = pspec.engine_parameter_set(
            ipc_resolution=self.jobs[0]["ipc_resolution"],
            rate_per=self.jobs[0]["rate_per"])
        signals = watched_signals(self.specs)
        self.devices = []
        self.logs: List[EmissionLog] = []
        self.start_cycles: List[int] = []
        for job in self.jobs:
            try:
                scenario = SCENARIOS[job["domain"]]()
            except KeyError:
                raise ConfigurationError(
                    f"unknown workload domain {job['domain']!r}")
            try:
                config = CONFIGS[job["device"]]()
            except KeyError:
                raise ConfigurationError(
                    f"unknown device config {job['device']!r}")
            device = scenario.build(config, dict(job["params"]),
                                    seed=job["seed"])
            if device.mcds.total_messages:
                raise BatchUnsupported(
                    f"scenario {job['domain']!r} emits trace messages "
                    f"during build; the shared-timestamp stream must be "
                    f"modelled by the scalar kernel")
            self.devices.append(device)
            self.logs.append(EmissionLog(device.soc.hub, signals))
            self.start_cycles.append(device.cycle)
        self.remaining = np.asarray([job["cycles"] for job in self.jobs],
                                    dtype=np.int64)

    @property
    def lanes(self) -> int:
        return len(self.jobs)

    def active_mask(self):
        """Boolean mask of lanes still short of their cycle budget."""
        return self.remaining > 0

    def sweep(self) -> int:
        """Advance every active lane one stride; returns lanes still active.

        Each lane's own kernel handles quiescence inside the stride
        (sleeping components are skipped, empty hot sets fast-forward), so
        an idle lane costs almost nothing to keep in the sweep.
        """
        tel = _obs._active
        active = np.flatnonzero(self.remaining)
        steps = np.minimum(self.remaining[active], self.stride)
        t0 = tel.tracer.now_us() if tel is not None else 0.0
        for lane, step in zip(active.tolist(), steps.tolist()):
            self.devices[lane].run(step)
        self.remaining[active] -= steps
        if tel is not None:
            cycles = int(steps.sum())
            tel.tracer.complete(
                "batch.stride", t0, tel.tracer.now_us() - t0, "batch",
                args={"lanes": int(active.size), "cycles": cycles,
                      "stride": self.stride})
            reg = tel.registry
            reg.get("repro_batch_strides_total").inc()
            reg.get("repro_batch_sweep_cycles_total").inc(cycles)
        return int(np.count_nonzero(self.remaining))

    def run(self, should_yield: Optional[Callable[[], bool]] = None,
            deadline_at: Optional[float] = None) -> None:
        """Sweep all lanes to completion, honouring preemption/deadlines."""
        while True:
            if should_yield is not None and should_yield():
                raise CampaignPreempted(
                    "lane group preempted at a sweep boundary")
            if deadline_at is not None and time.time() >= deadline_at:
                raise DeadlineExceeded(
                    "campaign deadline expired during a lane sweep")
            if self.sweep() == 0:
                return

    # -- results -------------------------------------------------------------
    def result(self, lane: int) -> ProfileResult:
        device = self.devices[lane]
        return reconstruct_result(
            self.specs, self.logs[lane], self.start_cycles[lane],
            device.cycle - self.start_cycles[lane],
            device.config.soc.cpu.frequency_mhz,
            capacity_bits=device.emem.capacity_bits)

    def payload(self, lane: int) -> Dict:
        """The scalar worker's payload dict, reconstructed for one lane."""
        job = self.jobs[lane]
        tel = _obs._active
        if tel is not None:
            # telemetry reads lane state, never writes: the payload is
            # byte-identical with the span on or off
            with tel.span("batch.reconstruct", cat="batch",
                          job=job["name"], device=job["device"]):
                result = self.result(lane)
        else:
            result = self.result(lane)
        return {
            "name": job["name"],
            "domain": job["domain"],
            "device": job["device"],
            "cycles": job["cycles"],
            "sim_cycles": self.devices[lane].soc.sim.cycle,
            "profile": profile_payload(result),
        }

    def payloads(self) -> List[Dict]:
        return [self.payload(lane) for lane in range(self.lanes)]


def profile_payload(result: ProfileResult) -> Dict:
    """``json.loads(result_to_json(result, compact=True))`` without the
    serialisation round trip.

    Equality holds because canonical JSON round-trips every value here
    exactly (ints, shortest-repr floats, lists of ints); the property
    tests assert it against the real exporter.
    """
    payload: Dict = {
        "cycles_run": result.cycles_run,
        "frequency_mhz": result.frequency_mhz,
        "trace_bits": result.trace_bits,
        "bandwidth_mbps": result.bandwidth_mbps(),
        "lost_messages": result.lost_messages,
        "parameters": {},
    }
    if result.gaps:
        payload["gaps"] = [gap.to_list() for gap in result.gaps]
    for name, data in result.series.items():
        # the series lists are shared, not copied: both sides are
        # freshly reconstructed per lane and immediately serialised
        entry: Dict = {
            "events": list(data.spec.events),
            "basis": data.spec.basis,
            "resolution": data.spec.resolution,
            "samples": len(data),
            "mean_rate": data.mean_rate(),
            "cycles": data.cycle_list(),
            "values": data.value_list(),
        }
        if data.degraded_count:
            entry["degraded"] = data.degraded_indices()
        payload["parameters"][name] = entry
    return payload


def run_lane_group(jobs: Sequence[Dict],
                   should_yield: Optional[Callable[[], bool]] = None,
                   deadline_at: Optional[float] = None,
                   stride: int = STRIDE) -> List[Dict]:
    """Execute one compatible job group on lanes; payloads in job order."""
    lanes = LaneSimulator(jobs, stride=stride)
    lanes.run(should_yield=should_yield, deadline_at=deadline_at)
    return lanes.payloads()
