"""Analytic reconstruction of a profiling capture from an emission log.

The scalar measurement plane is event-driven hardware emulation: counter
structures subscribe to hub signals, cross their resolution windows, emit
rate-sample messages through the :class:`~repro.mcds.messages.MessageFactory`
into the EMEM, and a session decodes the stored stream back into series.
For a passive, fault-free capture all of that is a *pure function* of the
ordered emission stream — so the batch backend records the stream once
(:class:`EmissionLog`) and replays the arithmetic as numpy array math:

* window crossings are ``searchsorted`` over cumulative basis counts;
* counted values are differences of cumulative event counts at the
  crossing positions;
* message sizes (header + varlen value + shared-timestamp varlen delta)
  are vectorized over the *globally ordered* sample stream, which is
  reconstructed with the same intra-cycle ordering the kernel produces
  (all component emissions of a cycle precede the MCDS tick that closes
  cycle-basis windows).

Byte-identity with the scalar kernel is the contract, not an aspiration:
E17 and the property tests assert it payload-for-payload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:
    import numpy as np
except ImportError:          # pragma: no cover - guarded by require_numpy
    np = None

from ..core.profiling.session import ProfileResult, SeriesData
from ..core.profiling.spec import ParameterSpec
from ..mcds.counters import CYCLES
from ..mcds.messages import _HEADER_BITS, _SOURCE_BITS

#: sample stream positions are scaled by 2 so that the MCDS tick that
#: closes cycle-basis windows can sit *between* the last emission row of
#: its cycle (2*row) and the first row of the next cycle
_ROW = 2


class EmissionLog:
    """Ordered (cycle, signal, count) record of one lane's watched emits."""

    __slots__ = ("signals", "_sids", "cycles", "sids", "counts")

    def __init__(self, hub, signal_names: Sequence[str]) -> None:
        self.signals = tuple(signal_names)
        self.cycles: List[int] = []
        self.sids: List[int] = []
        self.counts: List[int] = []
        self._sids = {}
        for name in self.signals:
            sid = hub.register(name)
            self._sids[name] = sid
            hub.subscribe(name, self._recorder(hub, sid))

    def _recorder(self, hub, sid):
        append_cycle = self.cycles.append
        append_sid = self.sids.append
        append_count = self.counts.append

        def record(count, _hub=hub, _sid=sid):
            append_cycle(_hub.cycle)
            append_sid(_sid)
            append_count(count)

        return record

    def sid(self, name: str) -> int:
        return self._sids[name]

    def __len__(self) -> int:
        return len(self.cycles)


def watched_signals(specs: Sequence[ParameterSpec]) -> List[str]:
    """Every hub signal the reconstruction needs, in stable order."""
    names: List[str] = []
    for spec in specs:
        for event in spec.events:
            if event not in names:
                names.append(event)
        if spec.basis != CYCLES and spec.basis not in names:
            names.append(spec.basis)
    return names


def _varlen_bits_array(values):
    """Vectorized :func:`repro.mcds.messages._varlen_bits` (8-bit groups)."""
    groups = np.ones(len(values), dtype=np.int64)
    for j in range(1, 8):
        groups += values >= (1 << (8 * j))
    return groups * 8


def reconstruct_result(specs: Sequence[ParameterSpec], log: EmissionLog,
                       start_cycle: int, cycles_run: int,
                       frequency_mhz: int,
                       capacity_bits: Optional[int] = None) -> ProfileResult:
    """Rebuild the :class:`ProfileResult` a scalar session would decode.

    ``capacity_bits`` is the EMEM trace share; when the reconstructed
    message volume would not have fit (the ring would have wrapped and
    degraded the capture), :class:`BatchUnsupported` is raised so the
    caller can fall back to the scalar kernel instead of diverging.
    """
    from . import BatchUnsupported

    cyc = np.asarray(log.cycles, dtype=np.int64)
    sid = np.asarray(log.sids, dtype=np.int64)
    cnt = np.asarray(log.counts, dtype=np.int64)
    nrows = len(cyc)

    # cumulative per-signal counts, prefixed with 0: cum[sid][i] = counts
    # of that signal in rows [0, i)
    cum_by_sid: Dict[int, "np.ndarray"] = {}

    def cum(signal_id):
        arr = cum_by_sid.get(signal_id)
        if arr is None:
            arr = np.zeros(nrows + 1, dtype=np.int64)
            np.cumsum(np.where(sid == signal_id, cnt, 0), out=arr[1:])
            cum_by_sid[signal_id] = arr
        return arr

    rows_by_basis: Dict[int, "np.ndarray"] = {}

    def basis_rows(signal_id):
        rows = rows_by_basis.get(signal_id)
        if rows is None:
            rows = np.flatnonzero(sid == signal_id)
            rows_by_basis[signal_id] = rows
        return rows

    series: Dict[str, SeriesData] = {}
    pos_parts, sub_parts, k_parts, cyc_parts, val_parts = [], [], [], [], []
    cycle_basis_index = 0
    for index, spec in enumerate(specs):
        cum_events = cum(log.sid(spec.events[0]))
        if len(spec.events) > 1:
            cum_events = cum_events.copy()
            for event in spec.events[1:]:
                cum_events += cum(log.sid(event))
        if spec.basis == CYCLES:
            # the MCDS ticks every cycle while a cycle-basis structure is
            # armed, so window k closes at the MCDS tick of cycle
            # start + k*resolution - 1; every emission of that cycle has
            # already happened when the tick runs
            count = cycles_run // spec.resolution
            sample_cycles = (start_cycle - 1
                             + np.arange(1, count + 1, dtype=np.int64)
                             * spec.resolution)
            row_end = np.searchsorted(cyc, sample_cycles, side="right")
            events_at = cum_events[row_end]
            order_pos = row_end * _ROW - 1
            order_sub = cycle_basis_index
            cycle_basis_index += 1
        else:
            rows = basis_rows(log.sid(spec.basis))
            cum_basis = np.cumsum(cnt[rows])
            total = int(cum_basis[-1]) if len(cum_basis) else 0
            count = total // spec.resolution
            thresholds = (np.arange(1, count + 1, dtype=np.int64)
                          * spec.resolution)
            crossing = rows[np.searchsorted(cum_basis, thresholds,
                                            side="left")]
            sample_cycles = cyc[crossing]
            # events logged before the crossing row belong to this window;
            # the basis signal and the event signals are distinct rows
            events_at = cum_events[crossing]
            order_pos = crossing * _ROW
            order_sub = index
        values = np.diff(events_at, prepend=0)
        data = SeriesData(spec)
        data._cycles = sample_cycles.tolist()
        data._values = values.tolist()
        data._degraded = [False] * count
        series[spec.name] = data
        pos_parts.append(order_pos)
        sub_parts.append(np.full(count, order_sub, dtype=np.int64))
        k_parts.append(np.arange(count, dtype=np.int64))
        cyc_parts.append(sample_cycles)
        val_parts.append(values)

    if pos_parts:
        pos_all = np.concatenate(pos_parts)
        sub_all = np.concatenate(sub_parts)
        k_all = np.concatenate(k_parts)
        cyc_all = np.concatenate(cyc_parts)
        val_all = np.concatenate(val_parts)
        # emission order: stream position, then subscription order at the
        # same position, then crossing order within one structure's emit
        order = np.lexsort((k_all, sub_all, pos_all))
        ordered_cycles = cyc_all[order]
        ordered_values = val_all[order]
        deltas = np.diff(ordered_cycles, prepend=0)
        bits = (_HEADER_BITS + _SOURCE_BITS
                + _varlen_bits_array(ordered_values)
                + _varlen_bits_array(deltas))
        trace_bits = int(bits.sum())
        if np.any(ordered_values >= (1 << 32)):
            raise BatchUnsupported(
                "a counter window would have saturated its 32-bit "
                "hardware counter; the scalar kernel must model it")
    else:
        trace_bits = 0
    if capacity_bits is not None and trace_bits > capacity_bits:
        raise BatchUnsupported(
            f"capture needs {trace_bits} bits but the EMEM trace share "
            f"holds {capacity_bits}; the ring would wrap and degrade the "
            f"capture, which only the scalar kernel models")
    return ProfileResult(series, cycles_run=cycles_run,
                         trace_bits=trace_bits,
                         frequency_mhz=frequency_mhz,
                         lost_messages=0, gaps=[])
