"""Simulation watchdog: bound runaway kernel runs.

A hung or runaway simulation (a fault drill, a degenerate workload, a bug)
must not stall a whole campaign.  :class:`SimulationWatchdog` is a clocked
component that raises :class:`~repro.errors.WatchdogExpired` when a run
exceeds a cycle budget (deterministic — never retried) or a wall-clock
budget (host-dependent — retryable).

Use :meth:`guard` to bound one run of an already-built device::

    watchdog = SimulationWatchdog(max_cycles=1_000_000, max_wall_s=30.0)
    with watchdog.guard(device):
        session.run(cycles)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Optional

from ..errors import ConfigurationError, WatchdogExpired
from ..obs import runtime as _obs
from ..soc.kernel.simulator import Component


class SimulationWatchdog(Component):
    """Cycle/wall-clock deadline enforcement for simulation runs."""

    name = "watchdog"

    def __init__(self, max_cycles: Optional[int] = None,
                 max_wall_s: Optional[float] = None,
                 check_interval: int = 1024) -> None:
        if max_cycles is None and max_wall_s is None:
            raise ConfigurationError(
                "watchdog needs max_cycles and/or max_wall_s")
        if max_cycles is not None and max_cycles < 1:
            raise ConfigurationError("max_cycles must be >= 1")
        if max_wall_s is not None and max_wall_s <= 0:
            raise ConfigurationError("max_wall_s must be positive")
        if check_interval < 1:
            raise ConfigurationError("check_interval must be >= 1")
        self.max_cycles = max_cycles
        self.max_wall_s = max_wall_s
        self.check_interval = check_interval
        self.expirations = 0
        self._start_cycle = 0
        self._wall_deadline: Optional[float] = None

    def idle_until(self, cycle: int) -> int:
        """Skipped spans still count against the budgets.

        The watchdog sleeps, but only up to its own deadlines: the cycle
        budget expires at an absolute cycle the kernel may not fast-forward
        past without ticking us, and wall-clock sampling keeps its
        ``check_interval`` grid.  A runaway simulation therefore cannot
        dodge the watchdog by being quiescent.
        """
        wake_at = None
        if self.max_cycles is not None:
            wake_at = self._start_cycle + self.max_cycles
        if self.max_wall_s is not None:
            interval = self.check_interval
            elapsed = cycle - self._start_cycle
            next_check = cycle + (-elapsed) % interval
            if wake_at is None or next_check < wake_at:
                wake_at = next_check
        return wake_at if wake_at > cycle else cycle

    def arm(self, cycle: int = 0) -> None:
        """Start the deadlines from ``cycle`` / now."""
        self._start_cycle = cycle
        if self.max_wall_s is not None:
            self._wall_deadline = time.monotonic() + self.max_wall_s

    def _trip(self, kind: str, cycle: int) -> None:
        self.expirations += 1
        tel = _obs._active
        if tel is not None:
            tel.watchdog_trip(kind, cycle)

    def tick(self, cycle: int) -> None:
        if self.max_cycles is not None and \
                cycle - self._start_cycle >= self.max_cycles:
            self._trip("cycle", cycle)
            raise WatchdogExpired(
                f"watchdog: run exceeded {self.max_cycles} cycles",
                retryable=False)
        # the wall clock is sampled sparsely: a syscall every cycle would
        # dominate the simulation itself
        if self._wall_deadline is not None and \
                (cycle - self._start_cycle) % self.check_interval == 0 and \
                time.monotonic() > self._wall_deadline:
            self._trip("wall", cycle)
            raise WatchdogExpired(
                f"watchdog: run exceeded {self.max_wall_s} s wall clock",
                retryable=True)

    @contextmanager
    def guard(self, device):
        """Bound every cycle simulated inside the ``with`` block.

        ``device`` is an :class:`~repro.ed.device.EmulationDevice` or a
        bare :class:`~repro.soc.device.Soc`.  The watchdog is inserted
        directly into the simulator's component list (observers cannot be
        added through ``Soc.add_observer`` once a device has run) and
        removed again on exit, so guarding leaves no trace.
        """
        soc = device.soc if hasattr(device, "soc") else device
        sim = soc.sim
        self.arm(sim.cycle)
        sim.components.append(self)
        try:
            yield self
        finally:
            sim.components.remove(self)

    def reset(self) -> None:
        self._start_cycle = 0
        self._wall_deadline = None

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> dict:
        # the wall deadline is host time and cannot round-trip; restore
        # re-arms it from "now", which is the useful semantics anyway
        return {"start_cycle": self._start_cycle,
                "expirations": self.expirations,
                "armed": self._wall_deadline is not None}

    def restore_state(self, state: dict) -> None:
        self._start_cycle = state["start_cycle"]
        self.expirations = state["expirations"]
        if state["armed"] and self.max_wall_s is not None:
            self._wall_deadline = time.monotonic() + self.max_wall_s
