"""Deterministic, seedable fault injection for the trace/profiling pipeline.

The hardening argument of the paper is quantitative only if the failure
modes can be *produced on demand*: EMEM overrun, DAP saturation, counter
wrap, trigger loss.  This module provides the injection half — consumers
call :func:`fault_point` at named sites, and a :class:`FaultInjector`
built from a :class:`FaultPlan` decides, deterministically, which hits
fault.

Design constraints:

* **Zero-cost when disabled.**  ``fault_point`` is a single global check
  when no injector is installed; hot paths additionally guard on the
  module attribute ``_active`` so the happy path stays byte-identical to
  a build without any fault hooks.
* **Deterministic given a seed.**  Every (scope, site) pair draws from
  its own ``random.Random`` stream, so decisions depend only on the plan
  seed, the scope (e.g. the campaign job name), the site, and the hit
  index — never on thread timing, worker count, or interleaving between
  unrelated sites.
* **Declarative plans.**  A plan is plain JSON (``seed``, ``rules``,
  optional ``watchdog``), shippable to worker processes and storable next
  to a campaign for replay.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError, FormatError
from ..obs import runtime as _obs

#: every named injection site in the pipeline, with what faulting there
#: means.  Plans are validated against this catalogue; the test suite
#: asserts every entry can actually be made to fire.
SITE_CATALOGUE: Dict[str, str] = {
    "emem.drop": "discard the incoming trace message before storage",
    "emem.overflow": "force an EMEM overrun: evict buffered messages "
                     "as if capacity had been exceeded",
    "trace.corrupt": "flip payload bits in flight; the EMEM's CRC check "
                     "detects and drops the message",
    "dap.saturate": "stall the DAP wire: no drain credit accrues for "
                    "params['cycles'] cycles",
    "dap.drop": "lose a message on the wire after it left the EMEM",
    "counter.wrap": "wrap a rate counter's sample value as if the "
                    "hardware counter had overflowed",
    "trigger.lost": "suppress a trigger that should have fired",
    "trigger.spurious": "fire a trigger whose condition is false",
    "worker.crash": "raise FaultInjected inside a fleet worker job",
    "worker.hang": "stall a fleet worker job for params['seconds']",
    "checkpoint.corrupt": "flip a byte in a checkpoint file as it is "
                          "written; restore must reject the CRC mismatch",
    "checkpoint.truncated": "cut a checkpoint file short mid-write, as a "
                            "crash between write and rename would",
}


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, how often, and with what parameters.

    A site *hit* is one ``fault_point`` evaluation.  The rule is eligible
    for hits in ``[start_hit, stop_hit)``; among eligible hits it fires
    with ``probability``, at most ``max_faults`` times, and only when
    every key in ``match`` equals the corresponding ``fault_point``
    context value (e.g. ``{"attempt": 0}`` faults first attempts only).
    """

    site: str
    probability: float = 1.0
    start_hit: int = 0
    stop_hit: Optional[int] = None
    max_faults: Optional[int] = None
    match: Optional[Dict] = None
    params: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.site not in SITE_CATALOGUE:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(SITE_CATALOGUE)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be within [0, 1]")
        if self.start_hit < 0:
            raise ConfigurationError("start_hit must be >= 0")

    def eligible(self, hit: int, context: Dict) -> bool:
        if hit < self.start_hit:
            return False
        if self.stop_hit is not None and hit >= self.stop_hit:
            return False
        if self.match:
            for key, expected in self.match.items():
                if context.get(key) != expected:
                    return False
        return True

    def to_dict(self) -> Dict:
        body: Dict = {"site": self.site}
        if self.probability != 1.0:
            body["probability"] = self.probability
        if self.start_hit:
            body["start_hit"] = self.start_hit
        if self.stop_hit is not None:
            body["stop_hit"] = self.stop_hit
        if self.max_faults is not None:
            body["max_faults"] = self.max_faults
        if self.match:
            body["match"] = dict(self.match)
        if self.params:
            body["params"] = dict(self.params)
        return body

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultRule":
        known = {"site", "probability", "start_hit", "stop_hit",
                 "max_faults", "match", "params"}
        unknown = set(payload) - known
        if unknown:
            raise FormatError(f"unknown fault-rule keys: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """A seed, a rule set, and an optional watchdog bound — pure data."""

    seed: int = 2008
    rules: tuple = ()
    watchdog: Optional[Dict] = None     # SimulationWatchdog kwargs
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in self.rules))

    def to_dict(self) -> Dict:
        body: Dict = {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        if self.watchdog:
            body["watchdog"] = dict(self.watchdog)
        if self.description:
            body["description"] = self.description
        return body

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict) or "rules" not in payload:
            raise FormatError("not a fault plan: expected an object with "
                              "a 'rules' list")
        known = {"seed", "rules", "watchdog", "description"}
        unknown = set(payload) - known
        if unknown:
            raise FormatError(f"unknown fault-plan keys: {sorted(unknown)}")
        return cls(seed=payload.get("seed", 2008),
                   rules=tuple(payload["rules"]),
                   watchdog=payload.get("watchdog"),
                   description=payload.get("description", ""))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FormatError(f"fault plan is not valid JSON: {exc}")
        return cls.from_dict(payload)


def load_fault_plan(path: str) -> FaultPlan:
    """Read a fault plan from a JSON file."""
    with open(path, "r") as handle:
        return FaultPlan.from_json(handle.read())


class FaultAction:
    """What :func:`fault_point` returns when a site faults."""

    __slots__ = ("site", "rule", "params", "hit")

    def __init__(self, site: str, rule: FaultRule, hit: int) -> None:
        self.site = site
        self.rule = rule
        self.params = rule.params
        self.hit = hit

    def __repr__(self) -> str:
        return f"FaultAction({self.site!r}, hit={self.hit})"


class FaultInjector:
    """Evaluates a plan's rules at every fault-point hit.

    Use as a context manager to install into the process-wide slot::

        with FaultInjector(plan, scope=job_id) as injector:
            run_the_workload()
        assert injector.injected["emem.drop"] == 3

    ``scope`` isolates random streams between campaign jobs: the same
    plan injected into two different jobs makes independent (but each
    individually reproducible) decisions.
    """

    def __init__(self, plan: FaultPlan, scope: str = "") -> None:
        self.plan = plan
        self.scope = scope
        self._rules_by_site: Dict[str, List[FaultRule]] = {}
        for rule in plan.rules:
            self._rules_by_site.setdefault(rule.site, []).append(rule)
        self._hits: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}          # id(rule) -> fire count
        self._rngs: Dict[str, random.Random] = {}
        #: per-site injected-fault counts
        self.injected: Dict[str, int] = {}
        #: chronological record of every injected fault (site, hit, params)
        self.log: List[Dict] = []
        self._previous: Optional["FaultInjector"] = None

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}/{self.scope}/{site}")
            self._rngs[site] = rng
        return rng

    def check(self, site: str, context: Dict) -> Optional[FaultAction]:
        hit = self._hits.get(site, 0)
        self._hits[site] = hit + 1
        for rule in self._rules_by_site.get(site, ()):
            key = id(rule)
            if rule.max_faults is not None and \
                    self._fired.get(key, 0) >= rule.max_faults:
                continue
            if not rule.eligible(hit, context):
                continue
            if rule.probability < 1.0 and \
                    self._rng(site).random() >= rule.probability:
                continue
            self._fired[key] = self._fired.get(key, 0) + 1
            self.injected[site] = self.injected.get(site, 0) + 1
            self.log.append({"site": site, "hit": hit,
                             "params": dict(rule.params)})
            tel = _obs._active
            if tel is not None:
                tel.fault_injected(site, hit, self.scope)
            return FaultAction(site, rule, hit)
        return None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- checkpoint ----------------------------------------------------------
    def snapshot_state(self) -> Dict:
        """Serialize decision state so a restored job replays identically.

        Fire counts are keyed by rule *index* in the plan (``id(rule)`` is
        process-local); RNG streams round-trip via ``getstate``.
        """
        index_of = {id(rule): i for i, rule in enumerate(self.plan.rules)}
        return {
            "hits": dict(self._hits),
            "fired": {index_of[key]: count
                      for key, count in self._fired.items()},
            "rngs": {site: rng.getstate()
                     for site, rng in sorted(self._rngs.items())},
            "injected": dict(self.injected),
            "log": [dict(entry) for entry in self.log],
        }

    def restore_state(self, state: Dict) -> None:
        self._hits = dict(state["hits"])
        self._fired = {id(self.plan.rules[index]): count
                       for index, count in state["fired"].items()}
        self._rngs = {}
        for site, rng_state in state["rngs"].items():
            rng = random.Random()
            rng.setstate(rng_state)
            self._rngs[site] = rng
        self.injected = dict(state["injected"])
        self.log = [dict(entry) for entry in state["log"]]

    # -- installation --------------------------------------------------------
    def install(self) -> "FaultInjector":
        global _active
        self._previous = _active
        _active = self
        return self

    def uninstall(self) -> None:
        global _active
        _active = self._previous
        self._previous = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


#: the process-wide injector slot; ``None`` means injection is disabled
#: and every fault point is a no-op.
_active: Optional[FaultInjector] = None


def fault_point(site: str, **context) -> Optional[FaultAction]:
    """Evaluate a named injection site; ``None`` means carry on normally.

    Hot paths may pre-check ``injector._active is not None`` to skip even
    this call; the two are equivalent.
    """
    if _active is None:
        return None
    return _active.check(site, context)


def active_injector() -> Optional[FaultInjector]:
    """The currently-installed injector, if any (for tests/diagnostics)."""
    return _active
