"""repro.faults — fault injection and graceful-degradation hardening.

The paper's profiling methodology exists to stay trustworthy under
pressure: hard-real-time runs "cannot be repeated identically", so a
measurement corrupted by an EMEM overrun or a saturated DAP must be
*marked*, never silently wrong.  This package provides:

* a deterministic, seedable :class:`FaultInjector` driven by declarative
  :class:`FaultPlan` JSON, injecting at named ``fault_point`` sites across
  the EMEM, DAP, counters, triggers, and fleet workers (zero-cost when
  disabled — see :data:`SITE_CATALOGUE` for the full list);
* a :class:`SimulationWatchdog` bounding runaway kernel runs by cycle or
  wall-clock deadline;
* the unified exception taxonomy (re-exported from :mod:`repro.errors`)
  whose ``retryable`` attribute tells the fleet which failures can never
  succeed on retry.

The degradation plumbing these faults exercise lives with the consumers:
gap accounting in :mod:`repro.ed.emem` / :mod:`repro.ed.dap`, saturation
semantics in :mod:`repro.mcds.counters`, and degraded-window marking in
:mod:`repro.core.profiling`.
"""

from ..errors import (BandwidthExceededError, ConfigurationError,
                      CounterSaturationError, FaultInjected, FormatError,
                      ReproError, ResourceExhaustedError, TraceOverrunError,
                      WatchdogExpired)
from .injector import (SITE_CATALOGUE, FaultAction, FaultInjector, FaultPlan,
                       FaultRule, active_injector, fault_point,
                       load_fault_plan)
from .watchdog import SimulationWatchdog

__all__ = [
    "BandwidthExceededError", "ConfigurationError", "CounterSaturationError",
    "FaultAction", "FaultInjected", "FaultInjector", "FaultPlan", "FaultRule",
    "FormatError", "ReproError", "ResourceExhaustedError",
    "SITE_CATALOGUE", "SimulationWatchdog", "TraceOverrunError",
    "WatchdogExpired", "active_injector", "fault_point", "load_fault_plan",
]
