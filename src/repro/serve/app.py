"""Minimal asyncio HTTP/1.1 front end for :class:`CampaignService`.

Hand-rolled on ``asyncio.start_server`` — the repo's no-new-dependencies
rule applies to the service too, and the API surface is small enough
that a framework would be mostly dead weight:

====== ================================== ================================
Method Path                               Purpose
====== ================================== ================================
GET    ``/healthz``                       liveness + uptime
GET    ``/metrics``                       Prometheus text exposition
GET    ``/v1/catalog``                    build-time campaign catalog
POST   ``/v1/campaigns``                  submit a spec (``X-Tenant``)
GET    ``/v1/campaigns``                  list campaigns + queue state
GET    ``/v1/campaigns/{id}``             one campaign's status
GET    ``/v1/campaigns/{id}/results``     incremental JSONL page
GET    ``/v1/campaigns/{id}/aggregate``   final aggregate.json bytes
GET    ``/v1/campaigns/{id}/events``      live SSE stream
====== ================================== ================================

Error mapping: spec problems → 400, unknown campaign → 404, tenant
quota → 429 with ``Retry-After``, service-wide unavailability (drain,
circuit breaker shedding) → 503 with ``Retry-After``.  A repeated
``Idempotency-Key`` header returns the original campaign instead of
admitting a duplicate.  SSE reconnects honour ``Last-Event-ID`` (or
``?last_event_id=N``) by replaying the campaign's buffered history.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..errors import (ConfigurationError, FormatError, QuotaExceeded,
                      ServiceUnavailable)
from .service import CampaignService
from .stream import encode_comment, encode_frame

#: request body cap — campaign specs are small documents
MAX_BODY = 1 << 20
#: SSE keepalive interval while a campaign is quiet
KEEPALIVE_S = 15.0
#: ceiling for Retry-After — an unbounded back-off hint (a zero-refill
#: quota bucket reports ``inf``) still has to serialise as a header
MAX_RETRY_AFTER_S = 3600

REASONS = {200: "OK", 204: "No Content", 400: "Bad Request",
           404: "Not Found", 405: "Method Not Allowed",
           413: "Payload Too Large", 429: "Too Many Requests",
           500: "Internal Server Error", 503: "Service Unavailable"}


def retry_after_header(retry_after_s: float) -> str:
    """Serialise a back-off hint as an RFC-compliant ``Retry-After``.

    Fractional seconds round *up* (``math.ceil``, not the old
    ``int(x + 0.999)`` trick, which under-rounded values like 2.0005
    and overflowed on ``inf``); the result is clamped to
    ``[1, MAX_RETRY_AFTER_S]`` so zero, negative, and infinite hints
    all serialise sanely.
    """
    if not retry_after_s == retry_after_s:        # NaN guard
        return "1"
    seconds = min(float(MAX_RETRY_AFTER_S), max(1.0, retry_after_s))
    return str(int(math.ceil(seconds)))


class HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def _response(status: int, body: bytes,
              content_type: str = "application/json",
              extra: Optional[Dict[str, str]] = None) -> bytes:
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Server: repro-serve/{__version__}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    for name, value in (extra or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, document,
                   extra: Optional[Dict[str, str]] = None) -> bytes:
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, extra=extra)


class ServeApp:
    """Routes HTTP requests onto one :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    # -- server lifecycle ----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0
                    ) -> Tuple[str, int]:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # -- request plumbing ----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        route = "?"
        method = "?"
        try:
            method, target, headers, body = await self._read_request(reader)
            path = urlsplit(target).path
            query = parse_qs(urlsplit(target).query)
            route, payload = await self._dispatch(
                method, path, query, headers, body, writer)
            if payload is not None:       # SSE handlers write themselves
                self._count(method, route, 200)
                writer.write(payload)
                await writer.drain()
        except HttpError as exc:
            self._count(method, route, exc.status)
            try:
                writer.write(_json_response(
                    exc.status, {"error": str(exc)}, extra=exc.headers))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError, asyncio.CancelledError):
            pass                           # client went away mid-request
        except Exception as exc:           # pragma: no cover - last resort
            self._count(method, route, 500)
            try:
                writer.write(_json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        raw = await reader.readuntil(b"\r\n\r\n")
        head = raw.decode("latin-1").split("\r\n")
        try:
            method, target, _version = head[0].split(" ", 2)
        except ValueError:
            raise HttpError(400, f"malformed request line {head[0]!r}")
        headers: Dict[str, str] = {}
        for line in head[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise HttpError(413, f"body of {length} bytes exceeds "
                                 f"{MAX_BODY}")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _count(self, method: str, route: str, status: int) -> None:
        self.service.registry.get("repro_serve_requests_total") \
            .labels(method, route, str(status)).inc()

    # -- routing -------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, query: Dict,
                        headers: Dict[str, str], body: bytes,
                        writer: asyncio.StreamWriter):
        """Returns ``(route_template, response_bytes_or_None)``."""
        if path == "/healthz" and method == "GET":
            return "/healthz", _json_response(200, {
                "status": "ok",
                "version": __version__,
                "slots": self.service.slots,
                "campaigns": len(self.service.campaigns),
            })
        if path == "/metrics" and method == "GET":
            # breaker gauges are point-in-time: fold a fresh snapshot so
            # a scrape sees the state *now*, not at the last transition
            from ..obs.bridge import record_breaker_state
            record_breaker_state(self.service.registry,
                                 self.service.breaker)
            text = self.service.registry.to_prometheus()
            return "/metrics", _response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        if path == "/v1/catalog" and method == "GET":
            return "/v1/catalog", _json_response(200, self.service.catalog)
        if path == "/v1/campaigns":
            if method == "POST":
                return "/v1/campaigns", self._submit(headers, body)
            if method == "GET":
                return "/v1/campaigns", _json_response(
                    200, self.service.overview())
            raise HttpError(405, f"{method} not allowed on {path}")

        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "campaigns":
            campaign_id = parts[2] if len(parts) > 2 else ""
            campaign = self.service.get(campaign_id)
            if campaign is None:
                raise HttpError(404, f"no campaign {campaign_id!r}")
            tail = parts[3] if len(parts) > 3 else ""
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            if tail == "":
                return "/v1/campaigns/{id}", _json_response(
                    200, campaign.status())
            if tail == "results":
                offset = self._int_param(query, "offset", 0)
                return "/v1/campaigns/{id}/results", _json_response(
                    200, self.service.results_page(campaign, offset))
            if tail == "aggregate":
                text = self.service.aggregate_text(campaign)
                if text is None:
                    raise HttpError(404, f"campaign {campaign_id!r} has "
                                         f"no aggregate yet")
                return "/v1/campaigns/{id}/aggregate", _response(
                    200, text.encode("utf-8"))
            if tail == "events":
                last_id = int(headers.get(
                    "last-event-id",
                    str(self._int_param(query, "last_event_id", 0))))
                await self._stream_events(campaign, last_id, writer)
                return "/v1/campaigns/{id}/events", None
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _int_param(query: Dict, name: str, default: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be an "
                                 f"integer, got {values[0]!r}")

    # -- handlers ------------------------------------------------------------
    def _submit(self, headers: Dict[str, str], body: bytes) -> bytes:
        tenant = headers.get("x-tenant", "anonymous")
        idempotency_key = headers.get("idempotency-key") or None
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        try:
            campaign = self.service.submit(
                tenant, payload, idempotency_key=idempotency_key)
        except QuotaExceeded as exc:          # this tenant is over quota
            raise HttpError(429, str(exc), headers={
                "Retry-After": retry_after_header(exc.retry_after_s)})
        except ServiceUnavailable as exc:     # the service itself is not well
            raise HttpError(503, str(exc), headers={
                "Retry-After": retry_after_header(exc.retry_after_s)})
        except (ConfigurationError, FormatError) as exc:
            raise HttpError(400, str(exc))
        return _json_response(200, campaign.status(), extra={
            "Location": f"/v1/campaigns/{campaign.campaign_id}"})

    async def _stream_events(self, campaign, last_id: int,
                             writer: asyncio.StreamWriter) -> None:
        """Long-lived SSE response: replay after ``last_id``, then live."""
        self._count("GET", "/v1/campaigns/{id}/events", 200)
        gauge = self.service.registry.get("repro_serve_sse_clients")
        gauge.inc(1)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n")
            writer.write(encode_frame(
                json.dumps({"campaign": campaign.campaign_id,
                            "state": campaign.state}, sort_keys=True),
                event="stream.open", retry_ms=1000))
            await writer.drain()
            cursor = last_id
            while True:
                events, closed = campaign.buffer.since(cursor)
                for event_id, name, data in events:
                    writer.write(encode_frame(
                        data, event=name, event_id=event_id))
                    cursor = event_id
                await writer.drain()
                if closed and cursor >= campaign.buffer.last_id:
                    writer.write(encode_frame(
                        json.dumps({"state": campaign.state},
                                   sort_keys=True),
                        event="stream.close"))
                    await writer.drain()
                    return
                fresh = await campaign.buffer.wait(
                    cursor, timeout=KEEPALIVE_S)
                if not fresh:
                    writer.write(encode_comment())
                    await writer.drain()
        finally:
            gauge.inc(-1)


async def serve(service: CampaignService, host: str = "127.0.0.1",
                port: int = 8787) -> None:
    """Run the service until cancelled (the ``repro serve`` entry point).

    Prints the bound address on startup — with ``port=0`` the OS picks a
    free port and the printed line is how scripts (and the CI smoke
    lane) discover it.
    """
    app = ServeApp(service)
    bound_host, bound_port = await app.start(host, port)
    print(f"repro serve: listening on http://{bound_host}:{bound_port}",
          flush=True)
    try:
        await asyncio.Event().wait()       # until cancelled from outside
    finally:
        await app.stop()
