"""Priority queue with weighted-fair interleaving across tenants.

Two-level discipline, mirroring how the paper's coupled counters separate
*urgency* from *share*:

1. **Strict priority** — a campaign submitted at a higher ``priority``
   always dispatches before any lower-priority campaign, and (via the
   service) may evict a running lower-priority campaign at its next
   checkpoint boundary.
2. **Weighted-fair within a priority** — start-time fair queuing (SFQ):
   each entry gets a virtual *finish tag* ``start + cost / weight`` where
   ``start`` chains along the tenant's own backlog but never falls below
   the queue's virtual clock.  Backlogged tenants therefore interleave in
   proportion to their weights (weight 2 dispatches twice per weight-1
   dispatch), while a tenant returning from idle starts at the current
   virtual clock — no banked credit, no starvation.

The queue is plain data structures and an injectable weight function;
no clocks, no threads — the asyncio service above it provides both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError


@dataclass
class QueueEntry:
    """One queued campaign: identity plus scheduling tags."""

    campaign_id: str
    tenant: str
    priority: int = 0             # higher = more urgent, strict
    cost: float = 1.0             # relative size (e.g. job count)
    seq: int = 0                  # FIFO tiebreak, assigned by the queue
    finish: float = 0.0           # SFQ virtual finish tag
    start: float = 0.0            # SFQ virtual start tag

    @property
    def sort_key(self):
        return (-self.priority, self.finish, self.seq)


class FairQueue:
    """Priority-then-SFQ campaign queue.

    ``weight_of`` maps a tenant to its fair share (usually
    :meth:`repro.serve.quota.QuotaManager.weight`); it is consulted at
    push time, so a policy change applies to subsequent submissions.
    """

    def __init__(self,
                 weight_of: Callable[[str], float] = lambda tenant: 1.0
                 ) -> None:
        self._weight_of = weight_of
        self._entries: List[QueueEntry] = []
        self._seq = 0
        self._vclock = 0.0
        self._tenant_finish: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, campaign_id: str, tenant: str, priority: int = 0,
             cost: float = 1.0) -> QueueEntry:
        """Enqueue one campaign and assign its scheduling tags."""
        if cost <= 0:
            raise ConfigurationError("queue cost must be > 0")
        weight = float(self._weight_of(tenant))
        if weight <= 0:
            raise ConfigurationError(
                f"tenant {tenant!r} has non-positive weight {weight}")
        # SFQ start tag: chain along the tenant's backlog, but an idle
        # tenant re-enters at the current virtual time — it neither banks
        # credit while away nor pays for work it never queued
        start = max(self._vclock, self._tenant_finish.get(tenant, 0.0))
        entry = QueueEntry(campaign_id=campaign_id, tenant=tenant,
                           priority=int(priority), cost=float(cost),
                           seq=self._seq, start=start,
                           finish=start + float(cost) / weight)
        self._seq += 1
        self._tenant_finish[tenant] = entry.finish
        self._entries.append(entry)
        return entry

    def pop(self) -> Optional[QueueEntry]:
        """Dispatch the next campaign (or ``None`` on an empty queue)."""
        if not self._entries:
            return None
        best = min(self._entries, key=lambda e: e.sort_key)
        self._entries.remove(best)
        # the virtual clock follows the start tag of the entry in
        # service, so newly arriving idle tenants line up behind work
        # already dispatched, not behind work merely queued
        self._vclock = max(self._vclock, best.start)
        return best

    def peek(self) -> Optional[QueueEntry]:
        if not self._entries:
            return None
        return min(self._entries, key=lambda e: e.sort_key)

    def best_priority(self) -> Optional[int]:
        """Highest priority currently waiting (service eviction check)."""
        if not self._entries:
            return None
        return max(entry.priority for entry in self._entries)

    def remove(self, campaign_id: str) -> bool:
        """Withdraw a queued campaign (cancellation); True if found."""
        for index, entry in enumerate(self._entries):
            if entry.campaign_id == campaign_id:
                del self._entries[index]
                return True
        return False

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is None:
            return len(self._entries)
        return sum(1 for e in self._entries if e.tenant == tenant)

    def tenants(self) -> List[str]:
        return sorted({e.tenant for e in self._entries})

    def entries(self) -> List[QueueEntry]:
        """Snapshot in dispatch order (introspection / status endpoint)."""
        return sorted(self._entries, key=lambda e: e.sort_key)
