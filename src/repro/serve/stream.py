"""Server-Sent Events plumbing: frames, replayable buffers, obs bridge.

Results stream out *while the campaign is still running* — the
fast-trace-generation insight (PAPERS.md) applied to the fleet: don't
make the architect wait for the batch to finish to see the first
customer's profile.  Three pieces:

* :func:`encode_frame` — the SSE wire format (``id:``/``event:``/
  ``data:`` lines, blank-line terminator, multiline data split per spec);
* :class:`EventBuffer` — a per-campaign, replayable event history with
  monotonically increasing ids.  A client reconnecting with
  ``Last-Event-ID: N`` replays everything after ``N`` — eviction,
  reconnects, and slow consumers all reduce to "replay from id";
* :class:`EventLogBridge` — a write-only text sink that plugs into
  :class:`repro.obs.events.EventLog` as its live ``stream``, so every
  structured record the obs layer emits for a campaign lands in the SSE
  buffer with its event name intact.  The service's event stream *is*
  the obs event log, framed for HTTP.

Pushes may come from worker threads (the campaign executes in an
executor); waiters live on the asyncio loop.  ``EventBuffer`` is locked
for pushers and wakes async waiters with ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import List, Optional, Tuple

#: (id, event name, data payload) — data is one JSON document per event
BufferedEvent = Tuple[int, str, str]


def encode_frame(data: str, event: Optional[str] = None,
                 event_id: Optional[int] = None,
                 retry_ms: Optional[int] = None) -> bytes:
    """Render one SSE frame.

    Multiline ``data`` becomes one ``data:`` line per source line (the
    browser EventSource API joins them back with newlines); the frame
    ends with the mandatory blank line.
    """
    lines: List[str] = []
    if retry_ms is not None:
        lines.append(f"retry: {int(retry_ms)}")
    if event_id is not None:
        lines.append(f"id: {int(event_id)}")
    if event:
        lines.append(f"event: {event}")
    for part in data.split("\n"):
        lines.append(f"data: {part}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def encode_comment(text: str = "keepalive") -> bytes:
    """An SSE comment frame — ignored by clients, keeps proxies awake."""
    return f": {text}\n\n".encode("utf-8")


class EventBuffer:
    """Thread-safe, replayable event history for one campaign stream.

    Ids start at 1 and never repeat, so ``since(last_id)`` is an exact
    reconnect contract.  ``close()`` marks the stream complete: readers
    drain whatever remains and stop instead of waiting forever.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        self._events: List[BufferedEvent] = []
        self._next_id = 1
        self._closed = False
        self.dropped = 0
        self.max_events = max_events
        self._lock = threading.Lock()
        self._waiters: List[Tuple[asyncio.AbstractEventLoop,
                                  asyncio.Event]] = []

    # -- producer side (any thread) ------------------------------------------
    def push(self, event: str, data: str) -> int:
        """Append one event; returns its id.  Wakes every async waiter."""
        with self._lock:
            event_id = self._next_id
            self._next_id += 1
            if len(self._events) < self.max_events:
                self._events.append((event_id, event, data))
            else:
                self.dropped += 1
            waiters, self._waiters = self._waiters, []
        self._wake(waiters)
        return event_id

    def close(self) -> None:
        with self._lock:
            self._closed = True
            waiters, self._waiters = self._waiters, []
        self._wake(waiters)

    @staticmethod
    def _wake(waiters) -> None:
        for loop, flag in waiters:
            try:
                loop.call_soon_threadsafe(flag.set)
            except RuntimeError:
                pass               # loop already closed — nothing to wake

    # -- consumer side (asyncio loop, or sync tests) -------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def last_id(self) -> int:
        with self._lock:
            return self._next_id - 1

    def since(self, last_id: int) -> Tuple[List[BufferedEvent], bool]:
        """Events with id > ``last_id``, plus the closed flag."""
        with self._lock:
            events = [e for e in self._events if e[0] > last_id]
            return events, self._closed

    async def wait(self, after_id: int, timeout: Optional[float] = None
                   ) -> bool:
        """Wait until an event with id > ``after_id`` exists or the
        buffer closes; True if there is something new to read, False on
        timeout (callers send a keepalive and wait again)."""
        with self._lock:
            if self._next_id - 1 > after_id or self._closed:
                return True
            flag = asyncio.Event()
            self._waiters.append((asyncio.get_running_loop(), flag))
        try:
            await asyncio.wait_for(flag.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            with self._lock:
                try:
                    self._waiters.remove(
                        next(w for w in self._waiters if w[1] is flag))
                except StopIteration:
                    pass
            return False


class EventLogBridge:
    """File-like sink adapting ``EventLog(stream=...)`` to a buffer.

    The obs event log serialises each record as one JSON line and writes
    it to its live stream; this bridge parses the event name back out
    and pushes the line into the SSE buffer, so subscribers receive
    frames like::

        id: 7
        event: job.result
        data: {"event": "job.result", "run_id": "cmp-000001", ...}
    """

    def __init__(self, buffer: EventBuffer) -> None:
        self.buffer = buffer

    def write(self, text: str) -> int:
        line = text.strip()
        if line:
            try:
                name = json.loads(line).get("event", "message")
            except json.JSONDecodeError:
                name = "message"
            self.buffer.push(name, line)
        return len(text)

    def flush(self) -> None:                       # TextIO protocol
        pass
