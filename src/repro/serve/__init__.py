"""repro.serve — always-on asynchronous campaign service.

A long-running HTTP front end over the fleet orchestrator: tenants
submit campaign specs to a priority queue with weighted-fair scheduling
and token-bucket quotas; workers execute them through the ordinary
campaign machinery (checkpointed, resumable, byte-identical); results
and lifecycle events stream back live over Server-Sent Events.

Layering::

    app.py      HTTP/1.1 + SSE framing            (asyncio, stdlib only)
    service.py  admission / scheduling / slots    (the state machine)
    queue.py    priority + start-time fair queue  (pure data structures)
    quota.py    token buckets + tenant policies   (injectable clock)
    stream.py   SSE frames + replayable buffers   (thread -> loop bridge)
    catalog.py  build-time capability catalog     (static artifact)

Durability and overload protection (write-ahead admission journal,
crash recovery on start, circuit-breaker shedding, deadlines) come from
:mod:`repro.resilience` — see ``docs/serve.md`` for the API reference
and scheduling semantics, ``docs/resilience.md`` for the failure story.
"""

from .app import ServeApp, retry_after_header, serve
from .catalog import build_catalog, load_catalog, write_catalog
from .queue import FairQueue, QueueEntry
from .quota import QuotaManager, TenantPolicy, TokenBucket
from .service import Campaign, CampaignService
from .stream import EventBuffer, EventLogBridge, encode_comment, \
    encode_frame

__all__ = [
    "Campaign",
    "CampaignService",
    "EventBuffer",
    "EventLogBridge",
    "FairQueue",
    "QueueEntry",
    "QuotaManager",
    "ServeApp",
    "TenantPolicy",
    "TokenBucket",
    "build_catalog",
    "encode_comment",
    "encode_frame",
    "load_catalog",
    "retry_after_header",
    "serve",
    "write_catalog",
]
