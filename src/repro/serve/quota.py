"""Per-tenant admission control: token buckets, queue caps, weights.

The paper's fleet serves *populations* of customers; the service in
front of it serves *tenants* — architecture teams submitting campaign
specs concurrently.  Admission control keeps one noisy tenant from
starving the rest:

* a **token bucket** per tenant bounds sustained submission rate while
  allowing bursts (capacity = burst size, refilled continuously at
  ``refill_per_s``);
* a **queue-depth cap** bounds how much work a tenant may have waiting;
* a **weight** feeds the fair queue (:mod:`repro.serve.queue`) so paying
  twice buys twice the interleaving share, not twice the priority.

Every clock read goes through an injectable ``clock`` callable so refill
timing is testable with a fake clock — the same discipline the obs event
log uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError, QuotaExceeded


class TokenBucket:
    """Continuous-refill token bucket on an injectable clock."""

    def __init__(self, capacity: float, refill_per_s: float,
                 clock: Callable[[], float] = time.monotonic,
                 tokens: Optional[float] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError("bucket capacity must be > 0")
        if refill_per_s < 0:
            raise ConfigurationError("refill rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = self.capacity if tokens is None else float(tokens)
        self._last = clock()

    def _advance(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        if self.refill_per_s > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.refill_per_s)

    def level(self) -> float:
        """Current token count (after refill)."""
        self._advance()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        self._advance()
        if self._tokens + 1e-12 < n:
            return False
        self._tokens -= n
        return True

    def seconds_until(self, n: float = 1.0) -> float:
        """How long until ``n`` tokens will be available (Retry-After)."""
        self._advance()
        missing = n - self._tokens
        if missing <= 0:
            return 0.0
        if self.refill_per_s <= 0:
            return float("inf")
        return missing / self.refill_per_s


@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy for one tenant (or the default for everyone)."""

    weight: float = 1.0           # fair-queue share
    burst: float = 4.0            # token-bucket capacity
    refill_per_s: float = 0.5     # sustained campaigns per second
    max_queued: int = 8           # campaigns waiting at once

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("tenant weight must be > 0")
        if self.max_queued < 1:
            raise ConfigurationError("max_queued must be >= 1")


class QuotaManager:
    """Admission decisions and fair-queue weights for every tenant.

    Unknown tenants get the ``default`` policy; per-tenant overrides are
    how a deployment grants a release team more burst or a scratch
    tenant less.  State (the buckets) is created lazily on first touch.
    """

    def __init__(self, default: TenantPolicy = TenantPolicy(),
                 overrides: Optional[Dict[str, TenantPolicy]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.default = default
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def policy(self, tenant: str) -> TenantPolicy:
        return self.overrides.get(tenant, self.default)

    def weight(self, tenant: str) -> float:
        return self.policy(tenant).weight

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy(tenant)
            bucket = TokenBucket(policy.burst, policy.refill_per_s,
                                 self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def tokens(self, tenant: str) -> float:
        return self.bucket(tenant).level()

    def admit(self, tenant: str, queued_now: int) -> None:
        """Admit one campaign submission or raise :class:`QuotaExceeded`.

        ``queued_now`` is the tenant's current queued+running campaign
        count.  The queue-depth check runs *before* the bucket draw so a
        rejected-for-depth submission doesn't also burn a token.
        """
        policy = self.policy(tenant)
        if queued_now >= policy.max_queued:
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {queued_now} campaigns "
                f"queued or running (limit {policy.max_queued})",
                retry_after_s=1.0)
        bucket = self.bucket(tenant)
        if not bucket.try_take(1.0):
            raise QuotaExceeded(
                f"tenant {tenant!r} is over its submission rate "
                f"({policy.refill_per_s}/s, burst {policy.burst})",
                retry_after_s=bucket.seconds_until(1.0))
