"""The always-on campaign service: admission, scheduling, execution.

:class:`CampaignService` is the standing measurement infrastructure the
MCDS/ED substrate models in hardware (PAPERS.md): clients submit
statistical customer profiles at any time, a priority queue with
weighted-fair tenant interleaving feeds execution slots, and results
stream back while simulation is still running.

Execution model
---------------

* Each campaign runs through the ordinary fleet orchestrator
  (:func:`repro.fleet.api.run_campaign`) with ``workers=0`` inside a
  dedicated executor thread — one slot, one thread, one campaign at a
  time per slot.  Nothing about the science changes: the service is a
  scheduler wrapped around the exact computation ``repro campaign`` runs.
* **Preemption**: when a strictly higher-priority campaign is waiting
  and no slot is free, the lowest-priority running campaign is asked to
  yield.  The orchestrator honors the request at the next checkpoint
  boundary (or job boundary), leaving the store prefix and the in-flight
  job's checkpoint on disk; the evicted campaign re-enters the queue and
  later *resumes* — completed jobs replayed from the store, the
  interrupted job continued from its checkpoint, final artifacts
  byte-identical to an uninterrupted run (the PR5 guarantee, now a
  graceful-degradation story).
* **Streaming**: every lifecycle event and per-job result is emitted
  through a per-campaign :class:`repro.obs.events.EventLog` bridged into
  a replayable SSE buffer; results are discovered by *tailing the
  campaign's JSONL store while the runner appends to it*
  (:meth:`repro.fleet.store.ResultStore.tail`).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import (ConfigurationError, QuotaExceeded,
                      ServiceUnavailable)
from ..fleet.api import CampaignSpec, run_campaign
from ..fleet.spec import canonical_json
from ..fleet.store import ResultStore
from ..obs import bridge as _obs_bridge
from ..obs.events import EventLog
from ..obs.registry import MetricsRegistry
from ..obs.runtime import _register_core_families
from ..resilience import (AdmissionJournal, CircuitBreaker,
                          compaction_records, fold_journal)
from .catalog import build_catalog, load_catalog
from .queue import FairQueue
from .quota import QuotaManager
from .stream import EventBuffer, EventLogBridge

#: campaign lifecycle states
QUEUED = "queued"
RUNNING = "running"
EVICTING = "evicting"            # yield requested, waiting for the boundary
COMPLETED = "completed"
FAILED = "failed"
DEADLINE_EXCEEDED = "deadline_exceeded"

TERMINAL = (COMPLETED, FAILED, DEADLINE_EXCEEDED)

#: how often the result tailer polls a running campaign's store
TAIL_INTERVAL_S = 0.05


@dataclass
class Campaign:
    """One submitted campaign and everything the service tracks for it."""

    campaign_id: str
    tenant: str
    priority: int
    spec: CampaignSpec
    directory: str
    state: str = QUEUED
    jobs_total: int = 0
    attempts: int = 0             # scheduling attempts (1 + evictions)
    evictions: int = 0
    idempotency_key: Optional[str] = None
    deadline_at: Optional[float] = None   # absolute wall clock (time.time)
    recovered: bool = False       # rebuilt from the journal after a crash
    error: Optional[str] = None
    aggregate_path: Optional[str] = None
    trace_path: Optional[str] = None      # sealed .rtrace segment, if any
    quarantined: List[str] = field(default_factory=list)
    buffer: EventBuffer = field(default_factory=EventBuffer)
    log: EventLog = field(init=False)
    yield_flag: threading.Event = field(default_factory=threading.Event)
    store: ResultStore = field(init=False)
    tail_offset: int = 0
    streamed_jobs: Set[str] = field(default_factory=set)
    results_streamed: int = 0

    def __post_init__(self) -> None:
        self.log = EventLog(self.campaign_id,
                            stream=EventLogBridge(self.buffer))
        self.store = ResultStore(self.directory)

    def emit(self, event: str, **fields_) -> None:
        """Emit one structured event into the obs log → SSE buffer."""
        self.log.emit(event, **fields_)

    def status(self) -> Dict:
        return {
            "id": self.campaign_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "jobs_total": self.jobs_total,
            "results_streamed": self.results_streamed,
            "attempts": self.attempts,
            "evictions": self.evictions,
            "error": self.error,
            "quarantined": list(self.quarantined),
            "deadline_at": self.deadline_at,
            "recovered": self.recovered,
            "trace_path": self.trace_path,
            "spec": self.spec.to_dict(),
        }


class CampaignService:
    """Queue + quota + slots around the fleet orchestrator.

    Create, ``await start()``, submit via :meth:`submit` (the HTTP layer
    calls it), ``await stop()``.  All scheduling runs on the asyncio
    loop; campaign execution runs in ``slots`` executor threads.
    """

    def __init__(self, root: str,
                 quota: Optional[QuotaManager] = None,
                 slots: int = 1,
                 checkpoint_every: int = 5_000,
                 max_retries: int = 1,
                 cache_dir: Optional[str] = None,
                 catalog_path: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Callable[[], float] = time.time,
                 trace_store: Optional[str] = None,
                 cluster_nodes: int = 0) -> None:
        if slots < 1:
            raise ConfigurationError("service needs at least one slot")
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if cluster_nodes < 0:
            raise ConfigurationError("cluster_nodes must be >= 0 "
                                     "(0 = in-process orchestrator)")
        #: >0 routes each campaign through repro.cluster: N worker node
        #: subprocesses over the campaign directory, surviving node death
        self.cluster_nodes = cluster_nodes
        self.root = root
        os.makedirs(os.path.join(root, "campaigns"), exist_ok=True)
        self.quota = quota if quota is not None else QuotaManager()
        self.queue = FairQueue(weight_of=self.quota.weight)
        self.slots = slots
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.cache_dir = cache_dir
        self.trace_store = trace_store
        if trace_store:
            os.makedirs(trace_store, exist_ok=True)
        # the telemetry slot is process-global, so at most one slot thread
        # records a trace at a time; the lock is taken non-blocking and a
        # loser simply runs untraced (science unchanged either way)
        self._trace_lock = threading.Lock()
        self.catalog = (load_catalog(catalog_path) if catalog_path
                        else build_catalog())
        if registry is None:
            registry = MetricsRegistry()
            _register_core_families(registry)
        self.registry = registry
        self.campaigns: Dict[str, Campaign] = {}
        self.started_at = time.time()
        self._clock = clock
        self._seq = 0
        self._running_campaigns: Dict[str, Campaign] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._wake = asyncio.Event()
        self._scheduler_task: Optional[asyncio.Task] = None
        self._stopping = False
        # resilience: write-ahead journal + admission circuit breaker.
        # The seq watermark and idempotency map are rebuilt eagerly so
        # even a pre-start() submit can never mint a colliding cmp id;
        # queue/campaign *reconstruction* waits for start() (needs the
        # loop).
        self.events = EventLog("serve")
        self.journal = AdmissionJournal(root)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.breaker._on_transition = self._on_breaker_transition
        self._idempotency: Dict[Tuple[str, str], str] = {}
        self._recovered_state = fold_journal(self.journal.replay())
        self._seq = self._recovered_state.max_seq
        self._idempotency.update(self._recovered_state.idempotency)
        _obs_bridge.record_breaker_state(self.registry, self.breaker)

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._scheduler_task is not None:
            return
        self._stopping = False
        self._recover()
        self._pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-serve")
        self._scheduler_task = asyncio.ensure_future(self._scheduler())
        self._wake.set()

    # -- crash recovery ------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild campaigns, queue, and accounting from the journal.

        Terminal campaigns come back as terminal records (their on-disk
        aggregate re-attached when it survived); queued *and previously
        running* campaigns re-enter the queue — a recovered running
        campaign keeps its journaled attempt count, so its next dispatch
        resumes from the store prefix + checkpoint exactly like an
        eviction would, and the resumed artifacts stay byte-identical.
        """
        state, self._recovered_state = self._recovered_state, None
        if state is None or not state.campaigns:
            return
        requeued = terminal = unrecoverable = 0
        for entry in sorted(state.campaigns.values(),
                            key=lambda e: e.order):
            if entry.campaign_id in self.campaigns:
                continue             # admitted pre-start in this process
            try:
                spec = CampaignSpec.from_dict(entry.spec)
            except Exception as exc:
                unrecoverable += 1
                warnings.warn(
                    f"recovery: journaled spec for {entry.campaign_id} "
                    f"no longer builds ({exc}); leaving its directory "
                    f"for inspection", RuntimeWarning)
                self._count_recovered("unrecoverable")
                continue
            directory = os.path.join(self.root, "campaigns",
                                     entry.campaign_id)
            os.makedirs(directory, exist_ok=True)
            campaign = Campaign(
                campaign_id=entry.campaign_id, tenant=entry.tenant,
                priority=entry.priority, spec=spec, directory=directory,
                idempotency_key=entry.idempotency_key,
                deadline_at=entry.deadline_at, recovered=True)
            campaign.jobs_total = len(spec.build_jobs())
            campaign.attempts = entry.attempts
            self.campaigns[entry.campaign_id] = campaign
            if entry.state in TERMINAL:
                campaign.state = entry.state
                if entry.state == COMPLETED and \
                        os.path.exists(campaign.store.aggregate_path):
                    campaign.aggregate_path = campaign.store.aggregate_path
                campaign.buffer.close()
                terminal += 1
                self._count_recovered("terminal")
                continue
            # queued / running / evicting at crash time → queued again.
            # attempts >= 1 marks "has dispatched before": the next run
            # goes down the resume path instead of clearing the store.
            if entry.state in (RUNNING, EVICTING):
                campaign.attempts = max(1, entry.attempts)
            campaign.state = QUEUED
            self.queue.push(entry.campaign_id, entry.tenant,
                            entry.priority,
                            cost=max(1.0, float(campaign.jobs_total)))
            campaign.emit("campaign.recovered",
                          prior_state=entry.state,
                          attempts=campaign.attempts)
            requeued += 1
            self._count_recovered("requeued")
        # compact: the journal now needs one admit (+ maybe one state)
        # per campaign, not the full transition history since epoch.
        # Re-fold from the live file, not the __init__-time snapshot —
        # submissions admitted before start() must survive the rewrite.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            self.journal.rewrite(
                compaction_records(fold_journal(self.journal.replay())))
        self._gauge_queue()
        if requeued or terminal or unrecoverable:
            self.events.emit("service.recovered", requeued=requeued,
                             terminal=terminal,
                             unrecoverable=unrecoverable,
                             seq_watermark=self._seq)

    # -- breaker wiring ------------------------------------------------------
    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.registry.get("repro_resilience_breaker_transitions_total") \
            .labels(new).inc()
        _obs_bridge.record_breaker_state(self.registry, self.breaker)
        self.events.emit("breaker.transition", old=old, new=new,
                         failure_rate=round(self.breaker.failure_rate(), 4))

    def _count_recovered(self, disposition: str) -> None:
        self.registry.get("repro_resilience_recovered_total") \
            .labels(disposition).inc()

    def _journal_state(self, campaign: Campaign, state: str) -> None:
        """Durably record a transition *before* it takes effect."""
        self.journal.state(campaign.campaign_id, state,
                           attempts=campaign.attempts)
        self.registry.get("repro_resilience_journal_records_total") \
            .labels("state").inc()

    async def stop(self) -> None:
        """Graceful shutdown: evict running work at safe boundaries."""
        self._stopping = True
        for campaign in list(self._running_campaigns.values()):
            campaign.yield_flag.set()
        self._wake.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        for task in list(self._tasks):
            try:
                await asyncio.wait_for(task, timeout=60)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- admission -----------------------------------------------------------
    def submit(self, tenant: str, payload: Dict,
               idempotency_key: Optional[str] = None) -> Campaign:
        """Admit one campaign submission (raises on quota/spec errors).

        A repeated ``idempotency_key`` for the same tenant returns the
        *original* campaign — no quota draw, no new admission — so a
        client that lost the response to a network blip can retry
        ``POST /v1/campaigns`` safely, even across a service restart
        (the key map is journaled).
        """
        if self._stopping:
            # a drain is an availability condition, not a quota verdict:
            # 503, retryable against the replacement process
            raise ServiceUnavailable("service is shutting down",
                                     retry_after_s=5.0)
        if idempotency_key is not None:
            known = self._idempotency.get((tenant, idempotency_key))
            if known is not None and known in self.campaigns:
                self.registry.get(
                    "repro_resilience_idempotent_replays_total").inc()
                self.events.emit("admission.replayed", tenant=tenant,
                                 campaign_id=known)
                return self.campaigns[known]
        if not self.breaker.allow():
            self._count_campaign(tenant, "shed")
            self.registry.get("repro_resilience_shed_total").inc()
            self.events.emit("admission.shed", tenant=tenant,
                             breaker_state=self.breaker.state)
            raise ServiceUnavailable(
                f"service is shedding load "
                f"(circuit breaker {self.breaker.state}, recent failure "
                f"rate {self.breaker.failure_rate():.0%})",
                retry_after_s=self.breaker.retry_after_s())
        body = dict(payload)
        priority = body.pop("priority", 0)
        try:
            priority = int(priority)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"priority must be an integer, got {priority!r}")
        spec = CampaignSpec.from_dict(body)
        active = sum(1 for c in self.campaigns.values()
                     if c.tenant == tenant and c.state not in TERMINAL)
        try:
            self.quota.admit(tenant, active)
        except QuotaExceeded:
            self._count_campaign(tenant, "rejected")
            self._gauge_tokens(tenant)
            raise
        self._gauge_tokens(tenant)
        self._seq += 1
        campaign_id = f"cmp-{self._seq:06d}"
        directory = os.path.join(self.root, "campaigns", campaign_id)
        os.makedirs(directory, exist_ok=True)
        deadline_at = None
        if spec.deadline_s is not None:
            deadline_at = self._clock() + spec.deadline_s
        # write-ahead: the admission is durable before it is visible
        self.journal.admit(campaign_id, tenant, priority, spec.to_dict(),
                           idempotency_key=idempotency_key,
                           deadline_at=deadline_at)
        self.registry.get("repro_resilience_journal_records_total") \
            .labels("admit").inc()
        campaign = Campaign(campaign_id=campaign_id, tenant=tenant,
                            priority=priority, spec=spec,
                            directory=directory,
                            idempotency_key=idempotency_key,
                            deadline_at=deadline_at)
        campaign.jobs_total = len(spec.build_jobs())
        self.campaigns[campaign_id] = campaign
        if idempotency_key is not None:
            self._idempotency[(tenant, idempotency_key)] = campaign_id
        self.queue.push(campaign_id, tenant, priority,
                        cost=max(1.0, float(campaign.jobs_total)))
        self._count_campaign(tenant, "admitted")
        self._gauge_queue()
        campaign.emit("campaign.queued", tenant=tenant, priority=priority,
                      jobs_total=campaign.jobs_total,
                      deadline_at=deadline_at)
        self._wake.set()
        if deadline_at is not None:
            self._arm_deadline_wakeup(deadline_at)
        return campaign

    def _arm_deadline_wakeup(self, deadline_at: float) -> None:
        """Schedule a scheduler pass just after a deadline lapses, so a
        queued campaign expires on time even on an otherwise idle loop."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return                   # no loop yet — the sweep will catch it
        delay = max(0.0, deadline_at - self._clock()) + 0.01
        loop.call_later(delay, self._wake.set)

    def get(self, campaign_id: str) -> Optional[Campaign]:
        return self.campaigns.get(campaign_id)

    def overview(self) -> Dict:
        return {
            "campaigns": [c.status() for c in self.campaigns.values()],
            "queue_depth": len(self.queue),
            "running": sorted(self._running_campaigns),
            "slots": self.slots,
            "breaker": self.breaker.snapshot(),
        }

    # -- metrics helpers -----------------------------------------------------
    def _count_campaign(self, tenant: str, outcome: str) -> None:
        self.registry.get("repro_serve_campaigns_total") \
            .labels(tenant, outcome).inc()

    def _gauge_queue(self) -> None:
        gauge = self.registry.get("repro_serve_queue_depth")
        tenants = {c.tenant for c in self.campaigns.values()}
        for tenant in tenants:
            gauge.labels(tenant).set(self.queue.depth(tenant))
        self.registry.get("repro_serve_running_campaigns") \
            .set(len(self._running_campaigns))

    def _gauge_tokens(self, tenant: str) -> None:
        self.registry.get("repro_serve_tenant_tokens") \
            .labels(tenant).set(self.quota.tokens(tenant))

    # -- scheduling ----------------------------------------------------------
    async def _scheduler(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._stopping:
                continue
            # expire queued work whose deadline lapsed before dispatch
            for campaign in list(self.campaigns.values()):
                if campaign.state == QUEUED and \
                        campaign.deadline_at is not None and \
                        self._clock() > campaign.deadline_at:
                    if self.queue.remove(campaign.campaign_id):
                        self._expire_deadline(campaign, phase="queued")
            # fill free slots in fair-queue order
            while len(self._running_campaigns) < self.slots:
                entry = self.queue.pop()
                if entry is None:
                    break
                campaign = self.campaigns[entry.campaign_id]
                # claim the slot synchronously — the task body runs a
                # tick later, and the loop must not dispatch twice
                self._running_campaigns[campaign.campaign_id] = campaign
                task = asyncio.ensure_future(self._run(campaign))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            # eviction: strictly higher-priority work waiting, no free slot
            best = self.queue.best_priority()
            if best is not None and \
                    len(self._running_campaigns) >= self.slots:
                victims = [c for c in self._running_campaigns.values()
                           if c.state == RUNNING and c.priority < best]
                if victims:
                    victim = min(victims, key=lambda c: c.priority)
                    victim.state = EVICTING
                    victim.emit("campaign.evicting",
                                displaced_by_priority=best)
                    victim.yield_flag.set()
            self._gauge_queue()

    def _run_blocking(self, campaign: Campaign):
        """Executed on a slot thread: one orchestrator run."""
        deadline_s = None
        if campaign.deadline_at is not None:
            # pass the *remaining* budget; if it is already spent the
            # runner expires before round 0 and reports deadline_exceeded
            deadline_s = max(1e-6, campaign.deadline_at - self._clock())

        def execute():
            if self.cluster_nodes:
                return self._run_clustered_blocking(campaign, deadline_s)
            return run_campaign(
                campaign.spec,
                workers=0,
                campaign_dir=campaign.directory,
                cache_dir=self.cache_dir,
                max_retries=self.max_retries,
                backoff_s=0.05,
                checkpoint_every=self.checkpoint_every,
                resume=campaign.attempts > 1,
                should_yield=campaign.yield_flag.is_set,
                deadline_s=deadline_s)

        if self.trace_store and self._trace_lock.acquire(blocking=False):
            try:
                from .. import traces
                from ..obs import telemetry
                # one segment per dispatch attempt: an evicted campaign's
                # re-dispatch gets its own file instead of clobbering the
                # sealed one
                path = os.path.join(
                    self.trace_store,
                    f"{campaign.campaign_id}-a{campaign.attempts}.rtrace")
                with telemetry(run_id=campaign.campaign_id) as tel:
                    with traces.recording(tel, path):
                        report = execute()
                # plain attribute write, thread-safe; the asyncio side
                # only reads it for status()
                campaign.trace_path = path
                return report
            finally:
                self._trace_lock.release()
        return execute()

    def _run_clustered_blocking(self, campaign: Campaign,
                                deadline_s: Optional[float]):
        """One campaign attempt over ``cluster_nodes`` worker processes.

        The campaign directory doubles as the cluster directory, so the
        result tailer streams the shared store exactly as in the
        in-process path.  The first attempt submits the manifest; a
        re-dispatch after an eviction reuses it — the nodes' resume
        scan plus the per-job checkpoints make the continuation
        byte-identical, same contract as ``resume=True``.  The service's
        ``yield_flag`` is bridged to the cluster STOP file by a watcher
        thread, so an eviction reaches the node subprocesses too.
        """
        from ..cluster import run_clustered
        from ..cluster.coordinator import (MANIFEST_NAME, clear_stop,
                                           request_stop)
        from ..fleet import jobs_for
        directory = campaign.directory
        jobs = None
        if not os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            jobs = jobs_for(campaign.spec)
        clear_stop(directory)
        done = threading.Event()

        def bridge_stop() -> None:
            while not done.is_set():
                if campaign.yield_flag.wait(0.1):
                    request_stop(directory)
                    return

        watcher = threading.Thread(target=bridge_stop, daemon=True,
                                   name="repro-serve-cluster-stop")
        watcher.start()
        try:
            return run_clustered(jobs, directory, nodes=self.cluster_nodes,
                                 checkpoint_every=self.checkpoint_every,
                                 max_retries=self.max_retries,
                                 deadline_s=deadline_s)
        finally:
            done.set()
            watcher.join(timeout=1.0)

    async def _run(self, campaign: Campaign) -> None:
        campaign.attempts += 1
        self._journal_state(campaign, RUNNING)
        campaign.state = RUNNING
        campaign.yield_flag.clear()
        # the store is cleared and completed records re-appended on every
        # attempt, so the tailer restarts from byte 0 and dedups by job id
        campaign.tail_offset = 0
        self._gauge_queue()
        campaign.emit("campaign.started", attempt=campaign.attempts,
                      resumed=campaign.attempts > 1)
        # re-run the scheduler's eviction check now that this campaign
        # is visibly RUNNING (a high-priority submission may have landed
        # in the gap between slot claim and task start)
        self._wake.set()
        loop = asyncio.get_running_loop()
        tailer = asyncio.ensure_future(self._tail(campaign))
        try:
            report = await loop.run_in_executor(
                self._pool, self._run_blocking, campaign)
            error = None
        except Exception as exc:             # orchestrator-level failure
            report, error = None, f"{type(exc).__name__}: {exc}"
        finally:
            tailer.cancel()
            try:
                await tailer
            except asyncio.CancelledError:
                pass
            self._drain_results(campaign)    # final, complete pass
            self._running_campaigns.pop(campaign.campaign_id, None)

        if error is not None:
            self._journal_state(campaign, FAILED)
            campaign.state = FAILED
            campaign.error = error
            self._count_campaign(campaign.tenant, "failed")
            self.breaker.record_failure()
            campaign.emit("campaign.failed", error=error)
            campaign.buffer.close()
        elif report.deadline_exceeded:
            self._expire_deadline(campaign, phase="running")
        elif report.preempted:
            campaign.evictions += 1
            self._journal_state(campaign, QUEUED)
            campaign.state = QUEUED
            self.registry.get("repro_serve_evictions_total").inc()
            self._count_campaign(campaign.tenant, "evicted")
            campaign.emit("campaign.evicted",
                          completed_jobs=len(report.records),
                          evictions=campaign.evictions)
            # back of its tenant's line, same priority — a later
            # dispatch resumes from the store + checkpoint
            self.queue.push(campaign.campaign_id, campaign.tenant,
                            campaign.priority,
                            cost=max(1.0, float(
                                campaign.jobs_total - len(report.records))))
        else:
            self._journal_state(campaign, COMPLETED)
            campaign.state = COMPLETED
            campaign.aggregate_path = report.aggregate_path
            campaign.quarantined = [r["job_id"] for r in report.quarantined]
            # breaker diet: each quarantined job is one failure sample,
            # a clean completion one success — a crash storm trips it,
            # a stray flake does not
            for _ in campaign.quarantined:
                self.breaker.record_failure()
            if not campaign.quarantined:
                self.breaker.record_success()
            self._count_campaign(campaign.tenant, "completed")
            campaign.emit(
                "campaign.completed",
                executed=report.metrics.executed,
                resumed=report.metrics.resumed,
                cache_hits=report.metrics.cache_hits,
                quarantined=campaign.quarantined,
                checkpoint_resumes=report.metrics.checkpoint_resumes,
                cycles_recovered=report.metrics.cycles_recovered,
                evictions=campaign.evictions)
            campaign.buffer.close()
        _obs_bridge.record_breaker_state(self.registry, self.breaker)
        self._gauge_queue()
        self._wake.set()

    def _expire_deadline(self, campaign: Campaign, phase: str) -> None:
        """Terminal expiry: the deadline is a property of the *request*,
        so unlike an eviction there is nothing to resume later."""
        self._journal_state(campaign, DEADLINE_EXCEEDED)
        campaign.state = DEADLINE_EXCEEDED
        campaign.error = (
            f"deadline exceeded while {phase} "
            f"(deadline_s={campaign.spec.deadline_s})")
        self.registry.get("repro_resilience_deadline_exceeded_total") \
            .labels(phase).inc()
        self._count_campaign(campaign.tenant, "deadline_exceeded")
        campaign.emit("campaign.deadline_exceeded", phase=phase,
                      deadline_at=campaign.deadline_at)
        campaign.buffer.close()
        self._gauge_queue()

    # -- live result streaming ----------------------------------------------
    async def _tail(self, campaign: Campaign) -> None:
        """Poll the campaign's store while the runner appends to it."""
        while True:
            self._drain_results(campaign)
            await asyncio.sleep(TAIL_INTERVAL_S)

    def _drain_results(self, campaign: Campaign) -> None:
        records, campaign.tail_offset = campaign.store.tail(
            campaign.tail_offset)
        for record in records:
            job_id = record.get("job_id")
            if job_id is None or job_id in campaign.streamed_jobs:
                continue           # replayed on resume — already streamed
            campaign.streamed_jobs.add(job_id)
            campaign.results_streamed += 1
            self.registry.get("repro_serve_results_streamed_total").inc()
            campaign.emit("job.result", job_id=job_id,
                          status=record.get("status"),
                          source=record.get("source"),
                          digest=record.get("digest"),
                          payload=record.get("payload"))

    # -- result serving ------------------------------------------------------
    def results_page(self, campaign: Campaign, offset: int) -> Dict:
        """Incremental page of the campaign's JSONL store from ``offset``."""
        records, next_offset = campaign.store.tail(offset)
        return {
            "id": campaign.campaign_id,
            "state": campaign.state,
            "records": records,
            "next_offset": next_offset,
            "complete": campaign.state in TERMINAL,
        }

    def aggregate_text(self, campaign: Campaign) -> Optional[str]:
        if campaign.aggregate_path is None:
            return None
        with open(campaign.aggregate_path) as handle:
            return handle.read()


def spec_digest(spec: CampaignSpec) -> str:
    """Content digest of a spec document (client-side dedupe aid)."""
    import hashlib
    return hashlib.sha256(
        canonical_json(spec.to_dict()).encode("utf-8")).hexdigest()
