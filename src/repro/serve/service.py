"""The always-on campaign service: admission, scheduling, execution.

:class:`CampaignService` is the standing measurement infrastructure the
MCDS/ED substrate models in hardware (PAPERS.md): clients submit
statistical customer profiles at any time, a priority queue with
weighted-fair tenant interleaving feeds execution slots, and results
stream back while simulation is still running.

Execution model
---------------

* Each campaign runs through the ordinary fleet orchestrator
  (:func:`repro.fleet.api.run_campaign`) with ``workers=0`` inside a
  dedicated executor thread — one slot, one thread, one campaign at a
  time per slot.  Nothing about the science changes: the service is a
  scheduler wrapped around the exact computation ``repro campaign`` runs.
* **Preemption**: when a strictly higher-priority campaign is waiting
  and no slot is free, the lowest-priority running campaign is asked to
  yield.  The orchestrator honors the request at the next checkpoint
  boundary (or job boundary), leaving the store prefix and the in-flight
  job's checkpoint on disk; the evicted campaign re-enters the queue and
  later *resumes* — completed jobs replayed from the store, the
  interrupted job continued from its checkpoint, final artifacts
  byte-identical to an uninterrupted run (the PR5 guarantee, now a
  graceful-degradation story).
* **Streaming**: every lifecycle event and per-job result is emitted
  through a per-campaign :class:`repro.obs.events.EventLog` bridged into
  a replayable SSE buffer; results are discovered by *tailing the
  campaign's JSONL store while the runner appends to it*
  (:meth:`repro.fleet.store.ResultStore.tail`).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import ConfigurationError, QuotaExceeded
from ..fleet.api import CampaignSpec, run_campaign
from ..fleet.spec import canonical_json
from ..fleet.store import ResultStore
from ..obs.events import EventLog
from ..obs.registry import MetricsRegistry
from ..obs.runtime import _register_core_families
from .catalog import build_catalog, load_catalog
from .queue import FairQueue
from .quota import QuotaManager
from .stream import EventBuffer, EventLogBridge

#: campaign lifecycle states
QUEUED = "queued"
RUNNING = "running"
EVICTING = "evicting"            # yield requested, waiting for the boundary
COMPLETED = "completed"
FAILED = "failed"

TERMINAL = (COMPLETED, FAILED)

#: how often the result tailer polls a running campaign's store
TAIL_INTERVAL_S = 0.05


@dataclass
class Campaign:
    """One submitted campaign and everything the service tracks for it."""

    campaign_id: str
    tenant: str
    priority: int
    spec: CampaignSpec
    directory: str
    state: str = QUEUED
    jobs_total: int = 0
    attempts: int = 0             # scheduling attempts (1 + evictions)
    evictions: int = 0
    error: Optional[str] = None
    aggregate_path: Optional[str] = None
    quarantined: List[str] = field(default_factory=list)
    buffer: EventBuffer = field(default_factory=EventBuffer)
    log: EventLog = field(init=False)
    yield_flag: threading.Event = field(default_factory=threading.Event)
    store: ResultStore = field(init=False)
    tail_offset: int = 0
    streamed_jobs: Set[str] = field(default_factory=set)
    results_streamed: int = 0

    def __post_init__(self) -> None:
        self.log = EventLog(self.campaign_id,
                            stream=EventLogBridge(self.buffer))
        self.store = ResultStore(self.directory)

    def emit(self, event: str, **fields_) -> None:
        """Emit one structured event into the obs log → SSE buffer."""
        self.log.emit(event, **fields_)

    def status(self) -> Dict:
        return {
            "id": self.campaign_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "jobs_total": self.jobs_total,
            "results_streamed": self.results_streamed,
            "attempts": self.attempts,
            "evictions": self.evictions,
            "error": self.error,
            "quarantined": list(self.quarantined),
            "spec": self.spec.to_dict(),
        }


class CampaignService:
    """Queue + quota + slots around the fleet orchestrator.

    Create, ``await start()``, submit via :meth:`submit` (the HTTP layer
    calls it), ``await stop()``.  All scheduling runs on the asyncio
    loop; campaign execution runs in ``slots`` executor threads.
    """

    def __init__(self, root: str,
                 quota: Optional[QuotaManager] = None,
                 slots: int = 1,
                 checkpoint_every: int = 5_000,
                 max_retries: int = 1,
                 cache_dir: Optional[str] = None,
                 catalog_path: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if slots < 1:
            raise ConfigurationError("service needs at least one slot")
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        self.root = root
        os.makedirs(os.path.join(root, "campaigns"), exist_ok=True)
        self.quota = quota if quota is not None else QuotaManager()
        self.queue = FairQueue(weight_of=self.quota.weight)
        self.slots = slots
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.cache_dir = cache_dir
        self.catalog = (load_catalog(catalog_path) if catalog_path
                        else build_catalog())
        if registry is None:
            registry = MetricsRegistry()
            _register_core_families(registry)
        self.registry = registry
        self.campaigns: Dict[str, Campaign] = {}
        self.started_at = time.time()
        self._seq = 0
        self._running_campaigns: Dict[str, Campaign] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._wake = asyncio.Event()
        self._scheduler_task: Optional[asyncio.Task] = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._scheduler_task is not None:
            return
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-serve")
        self._scheduler_task = asyncio.ensure_future(self._scheduler())

    async def stop(self) -> None:
        """Graceful shutdown: evict running work at safe boundaries."""
        self._stopping = True
        for campaign in list(self._running_campaigns.values()):
            campaign.yield_flag.set()
        self._wake.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        for task in list(self._tasks):
            try:
                await asyncio.wait_for(task, timeout=60)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- admission -----------------------------------------------------------
    def submit(self, tenant: str, payload: Dict) -> Campaign:
        """Admit one campaign submission (raises on quota/spec errors)."""
        if self._stopping:
            raise QuotaExceeded("service is shutting down",
                                retry_after_s=5.0)
        body = dict(payload)
        priority = body.pop("priority", 0)
        try:
            priority = int(priority)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"priority must be an integer, got {priority!r}")
        spec = CampaignSpec.from_dict(body)
        active = sum(1 for c in self.campaigns.values()
                     if c.tenant == tenant and c.state not in TERMINAL)
        try:
            self.quota.admit(tenant, active)
        except QuotaExceeded:
            self._count_campaign(tenant, "rejected")
            self._gauge_tokens(tenant)
            raise
        self._gauge_tokens(tenant)
        self._seq += 1
        campaign_id = f"cmp-{self._seq:06d}"
        directory = os.path.join(self.root, "campaigns", campaign_id)
        os.makedirs(directory, exist_ok=True)
        campaign = Campaign(campaign_id=campaign_id, tenant=tenant,
                            priority=priority, spec=spec,
                            directory=directory)
        campaign.jobs_total = len(spec.build_jobs())
        self.campaigns[campaign_id] = campaign
        self.queue.push(campaign_id, tenant, priority,
                        cost=max(1.0, float(campaign.jobs_total)))
        self._count_campaign(tenant, "admitted")
        self._gauge_queue()
        campaign.emit("campaign.queued", tenant=tenant, priority=priority,
                      jobs_total=campaign.jobs_total)
        self._wake.set()
        return campaign

    def get(self, campaign_id: str) -> Optional[Campaign]:
        return self.campaigns.get(campaign_id)

    def overview(self) -> Dict:
        return {
            "campaigns": [c.status() for c in self.campaigns.values()],
            "queue_depth": len(self.queue),
            "running": sorted(self._running_campaigns),
            "slots": self.slots,
        }

    # -- metrics helpers -----------------------------------------------------
    def _count_campaign(self, tenant: str, outcome: str) -> None:
        self.registry.get("repro_serve_campaigns_total") \
            .labels(tenant, outcome).inc()

    def _gauge_queue(self) -> None:
        gauge = self.registry.get("repro_serve_queue_depth")
        tenants = {c.tenant for c in self.campaigns.values()}
        for tenant in tenants:
            gauge.labels(tenant).set(self.queue.depth(tenant))
        self.registry.get("repro_serve_running_campaigns") \
            .set(len(self._running_campaigns))

    def _gauge_tokens(self, tenant: str) -> None:
        self.registry.get("repro_serve_tenant_tokens") \
            .labels(tenant).set(self.quota.tokens(tenant))

    # -- scheduling ----------------------------------------------------------
    async def _scheduler(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._stopping:
                continue
            # fill free slots in fair-queue order
            while len(self._running_campaigns) < self.slots:
                entry = self.queue.pop()
                if entry is None:
                    break
                campaign = self.campaigns[entry.campaign_id]
                # claim the slot synchronously — the task body runs a
                # tick later, and the loop must not dispatch twice
                self._running_campaigns[campaign.campaign_id] = campaign
                task = asyncio.ensure_future(self._run(campaign))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            # eviction: strictly higher-priority work waiting, no free slot
            best = self.queue.best_priority()
            if best is not None and \
                    len(self._running_campaigns) >= self.slots:
                victims = [c for c in self._running_campaigns.values()
                           if c.state == RUNNING and c.priority < best]
                if victims:
                    victim = min(victims, key=lambda c: c.priority)
                    victim.state = EVICTING
                    victim.emit("campaign.evicting",
                                displaced_by_priority=best)
                    victim.yield_flag.set()
            self._gauge_queue()

    def _run_blocking(self, campaign: Campaign):
        """Executed on a slot thread: one orchestrator run."""
        return run_campaign(
            campaign.spec,
            workers=0,
            campaign_dir=campaign.directory,
            cache_dir=self.cache_dir,
            max_retries=self.max_retries,
            backoff_s=0.05,
            checkpoint_every=self.checkpoint_every,
            resume=campaign.attempts > 1,
            should_yield=campaign.yield_flag.is_set)

    async def _run(self, campaign: Campaign) -> None:
        campaign.state = RUNNING
        campaign.attempts += 1
        campaign.yield_flag.clear()
        # the store is cleared and completed records re-appended on every
        # attempt, so the tailer restarts from byte 0 and dedups by job id
        campaign.tail_offset = 0
        self._gauge_queue()
        campaign.emit("campaign.started", attempt=campaign.attempts,
                      resumed=campaign.attempts > 1)
        # re-run the scheduler's eviction check now that this campaign
        # is visibly RUNNING (a high-priority submission may have landed
        # in the gap between slot claim and task start)
        self._wake.set()
        loop = asyncio.get_running_loop()
        tailer = asyncio.ensure_future(self._tail(campaign))
        try:
            report = await loop.run_in_executor(
                self._pool, self._run_blocking, campaign)
            error = None
        except Exception as exc:             # orchestrator-level failure
            report, error = None, f"{type(exc).__name__}: {exc}"
        finally:
            tailer.cancel()
            try:
                await tailer
            except asyncio.CancelledError:
                pass
            self._drain_results(campaign)    # final, complete pass
            self._running_campaigns.pop(campaign.campaign_id, None)

        if error is not None:
            campaign.state = FAILED
            campaign.error = error
            self._count_campaign(campaign.tenant, "failed")
            campaign.emit("campaign.failed", error=error)
            campaign.buffer.close()
        elif report.preempted:
            campaign.evictions += 1
            campaign.state = QUEUED
            self.registry.get("repro_serve_evictions_total").inc()
            self._count_campaign(campaign.tenant, "evicted")
            campaign.emit("campaign.evicted",
                          completed_jobs=len(report.records),
                          evictions=campaign.evictions)
            # back of its tenant's line, same priority — a later
            # dispatch resumes from the store + checkpoint
            self.queue.push(campaign.campaign_id, campaign.tenant,
                            campaign.priority,
                            cost=max(1.0, float(
                                campaign.jobs_total - len(report.records))))
        else:
            campaign.state = COMPLETED
            campaign.aggregate_path = report.aggregate_path
            campaign.quarantined = [r["job_id"] for r in report.quarantined]
            self._count_campaign(campaign.tenant, "completed")
            campaign.emit(
                "campaign.completed",
                executed=report.metrics.executed,
                resumed=report.metrics.resumed,
                cache_hits=report.metrics.cache_hits,
                quarantined=campaign.quarantined,
                checkpoint_resumes=report.metrics.checkpoint_resumes,
                cycles_recovered=report.metrics.cycles_recovered,
                evictions=campaign.evictions)
            campaign.buffer.close()
        self._gauge_queue()
        self._wake.set()

    # -- live result streaming ----------------------------------------------
    async def _tail(self, campaign: Campaign) -> None:
        """Poll the campaign's store while the runner appends to it."""
        while True:
            self._drain_results(campaign)
            await asyncio.sleep(TAIL_INTERVAL_S)

    def _drain_results(self, campaign: Campaign) -> None:
        records, campaign.tail_offset = campaign.store.tail(
            campaign.tail_offset)
        for record in records:
            job_id = record.get("job_id")
            if job_id is None or job_id in campaign.streamed_jobs:
                continue           # replayed on resume — already streamed
            campaign.streamed_jobs.add(job_id)
            campaign.results_streamed += 1
            self.registry.get("repro_serve_results_streamed_total").inc()
            campaign.emit("job.result", job_id=job_id,
                          status=record.get("status"),
                          source=record.get("source"),
                          digest=record.get("digest"),
                          payload=record.get("payload"))

    # -- result serving ------------------------------------------------------
    def results_page(self, campaign: Campaign, offset: int) -> Dict:
        """Incremental page of the campaign's JSONL store from ``offset``."""
        records, next_offset = campaign.store.tail(offset)
        return {
            "id": campaign.campaign_id,
            "state": campaign.state,
            "records": records,
            "next_offset": next_offset,
            "complete": campaign.state in TERMINAL,
        }

    def aggregate_text(self, campaign: Campaign) -> Optional[str]:
        if campaign.aggregate_path is None:
            return None
        with open(campaign.aggregate_path) as handle:
            return handle.read()


def spec_digest(spec: CampaignSpec) -> str:
    """Content digest of a spec document (client-side dedupe aid)."""
    import hashlib
    return hashlib.sha256(
        canonical_json(spec.to_dict()).encode("utf-8")).hexdigest()
