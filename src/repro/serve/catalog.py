"""Build-time campaign-spec catalog: what the service can run.

The snippet-1 idiom (SNIPPETS.md): a *build-time* tool compiles a static,
versioned catalog artifact; the *runtime* service only reads it.  The
catalog describes every dimension a campaign spec may vary — workload
domains, device configs, spec fields with their defaults and bounds,
fault-drill modes — so a client can discover what to submit without
reading source, and an operator can pin a deployment to a reviewed
catalog file instead of whatever the code of the day exposes.

``repro catalog --out catalog.json`` builds the artifact;
``repro serve --catalog catalog.json`` serves a pinned copy at
``GET /v1/catalog`` (without the flag the service builds one at startup,
which is the same document by construction).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict

from .. import __version__
from ..errors import FormatError
from ..fleet.api import CampaignSpec
from ..fleet.spec import FAULT_MODES, SCHEMA_VERSION, canonical_json

#: bump when the catalog document layout changes
CATALOG_SCHEMA = 1


def _scenario_entries() -> Dict[str, Dict]:
    from ..fleet.worker import SCENARIOS
    entries: Dict[str, Dict] = {}
    for key in sorted(SCENARIOS):
        cls = SCENARIOS[key]
        doc = (cls.__doc__ or "").strip().split("\n")[0]
        entries[key] = {"scenario": cls.__name__, "summary": doc}
    return entries


def _device_entries() -> Dict[str, Dict]:
    from ..fleet.worker import CONFIGS
    entries: Dict[str, Dict] = {}
    for key in sorted(CONFIGS):
        config = CONFIGS[key]()
        entries[key] = {
            "cpu_frequency_mhz": config.cpu.frequency_mhz,
            "issue_width": config.cpu.issue_width,
            "icache_bytes": config.icache.size_bytes,
            "flash_kb": config.flash.size_kb,
        }
    return entries


def _spec_fields() -> Dict[str, Dict]:
    entries: Dict[str, Dict] = {}
    for f in dataclasses.fields(CampaignSpec):
        default = f.default
        if isinstance(default, dataclasses._MISSING_TYPE):
            default = None
        entries[f.name] = {"default": default}
    entries["count"]["max"] = CampaignSpec.MAX_COUNT
    entries["cycles"]["max"] = CampaignSpec.MAX_CYCLES
    entries["jobs"]["note"] = ("explicit CampaignJob dicts; mutually "
                               "exclusive with the generated population")
    return entries


def build_catalog() -> Dict:
    """Compile the catalog document (pure: same code → same bytes)."""
    return {
        "catalog_schema": CATALOG_SCHEMA,
        "package_version": __version__,
        "payload_schema": SCHEMA_VERSION,
        "domains": _scenario_entries(),
        "devices": _device_entries(),
        "spec_fields": _spec_fields(),
        "fault_modes": list(FAULT_MODES),
        "endpoints": {
            "submit": "POST /v1/campaigns",
            "status": "GET /v1/campaigns/{id}",
            "results": "GET /v1/campaigns/{id}/results?offset=N",
            "events": "GET /v1/campaigns/{id}/events  (SSE)",
            "metrics": "GET /metrics",
        },
    }


def write_catalog(path: str) -> str:
    """Write the canonical-JSON catalog artifact; returns the path."""
    with open(path, "w") as handle:
        handle.write(canonical_json(build_catalog()))
        handle.write("\n")
    return path


def load_catalog(path: str) -> Dict:
    """Load and sanity-check a pinned catalog file."""
    try:
        with open(path) as handle:
            body = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise FormatError(f"cannot load catalog {path!r}: {exc}")
    if not isinstance(body, dict) or "catalog_schema" not in body:
        raise FormatError(f"{path!r} is not a campaign catalog")
    if body["catalog_schema"] != CATALOG_SCHEMA:
        raise FormatError(
            f"catalog schema {body['catalog_schema']} unsupported "
            f"(this build reads schema {CATALOG_SCHEMA})")
    return body
