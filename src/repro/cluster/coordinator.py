"""Campaign coordination artifacts: manifest, plan, batches, final.

Everything multi-node execution agrees on lives as CRC-guarded files in
the shared cluster directory — there is no network protocol, only
atomic writes and the lease layer:

``manifest.json``
    What to run: the fully-resolved job dicts plus execution knobs
    (batch count, checkpoint cadence, retries, optional fault plan and
    absolute deadline).  Written once by :func:`submit`; nodes never
    mutate it.
``batches/batch-NNNN.json``
    One claim file per job batch — the unit of lease-based claiming and
    of migration.  Batching is :func:`repro.fleet.spec.assign_shards`:
    a pure function of job content, so every elected coordinator
    publishes byte-identical batch files (a coordinator dying
    mid-publish is harmless — its successor rewrites the same bytes and
    the plan file, written last, is what announces completion).
``plan.json``
    The publication commit point: lists the batch file names.  Nodes
    poll for it before working.
``done/batch-NNNN.done``
    Completion marker, written under the cluster lock only while the
    writer still holds the batch lease.
``final.json``
    Campaign completion: written by whichever node wins the
    ``finalize`` lease once every batch is done, alongside the
    deterministic ``aggregate.json`` (byte-identical to a single-node
    run's — the cluster's acceptance criterion).

The coordinator is *elected*, not configured: publishing and finalizing
are one-shot jobs guarded by ordinary leases, so any node can do them
and any node's death during them is survivable.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from ..errors import ClusterError, ConfigurationError
from ..fleet.spec import CampaignJob, assign_shards
from ..fleet.store import ResultStore, seal_record, unseal_record
from .lease import _atomic_write

MANIFEST_NAME = "manifest.json"
PLAN_NAME = "plan.json"
FINAL_NAME = "final.json"
STOP_NAME = "STOP"
BATCH_DIR = "batches"
DONE_DIR = "done"
NODE_DIR = "nodes"
CHECKPOINT_DIR = "checkpoints"
CACHE_DIR = "cache"

#: cluster event journal (resilience journal format, different file)
CLUSTER_JOURNAL_NAME = "cluster.jsonl"


def _read_sealed(path: str, what: str) -> Dict:
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except FileNotFoundError:
        raise ClusterError(f"missing {what}: {path}")
    try:
        return unseal_record(text.strip())
    except (ValueError, KeyError) as exc:
        raise ClusterError(f"damaged {what} at {path}: {exc}")


def submit(cluster_dir: str, jobs: List[CampaignJob],
           batches: Optional[int] = None,
           checkpoint_every: int = 5_000,
           max_retries: int = 2,
           fault_plan: Optional[Dict] = None,
           deadline_s: Optional[float] = None,
           cache: bool = True) -> str:
    """Publish a campaign manifest into ``cluster_dir``; returns its path.

    Refuses a directory that already holds a manifest (a cluster dir is
    one campaign — resubmitting into live coordination state would be
    split-brain by construction).  ``fault='exit'`` drill jobs are
    rejected: in cluster mode the job *is* the node process, and a job
    that kills every node it migrates to can never complete.
    """
    os.makedirs(cluster_dir, exist_ok=True)
    path = os.path.join(cluster_dir, MANIFEST_NAME)
    if os.path.exists(path):
        raise ConfigurationError(
            f"cluster dir {cluster_dir!r} already holds a campaign "
            f"manifest; one cluster directory runs one campaign")
    if not jobs:
        raise ConfigurationError("cluster campaign needs at least one job")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("duplicate jobs in campaign matrix")
    if any(job.fault == "exit" for job in jobs):
        raise ConfigurationError(
            "fault='exit' drills cannot run on a cluster: the job would "
            "kill every node that claims it")
    if checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be >= 1 cycle")
    if batches is None:
        batches = min(len(jobs), 8)
    if batches < 1:
        raise ConfigurationError("batches must be >= 1")
    if fault_plan is not None:
        from ..faults import FaultPlan
        fault_plan = FaultPlan.from_dict(fault_plan).to_dict() \
            if not isinstance(fault_plan, FaultPlan) else fault_plan.to_dict()
    record = {
        "kind": "manifest",
        "jobs": [job.to_dict() for job in sorted(jobs,
                                                 key=lambda j: j.job_id)],
        "batches": int(batches),
        "checkpoint_every": int(checkpoint_every),
        "max_retries": int(max_retries),
        "fault_plan": fault_plan,
        # absolute wall clock, like the orchestrator's deadline_at: it
        # must mean the same thing on every node sharing the directory
        "deadline_at": (time.time() + float(deadline_s)
                        if deadline_s is not None else None),
        # a fault plan disables the shared cache wholesale, same rule as
        # the single-node orchestrator: injected payloads must never
        # poison (or be served from) the content-addressed store
        "cache": bool(cache) and fault_plan is None,
    }
    _atomic_write(path, seal_record(record) + "\n")
    return path


def load_manifest(cluster_dir: str) -> Dict:
    manifest = _read_sealed(os.path.join(cluster_dir, MANIFEST_NAME),
                            "cluster manifest")
    if manifest.get("kind") != "manifest" or "jobs" not in manifest:
        raise ClusterError(
            f"not a cluster manifest: {cluster_dir}/{MANIFEST_NAME}")
    return manifest


def batch_name(index: int) -> str:
    return f"batch-{index:04d}"


def publish_plan(cluster_dir: str, manifest: Dict) -> Dict:
    """Shard the manifest's jobs into batch claim files + the plan.

    Deterministic: batch membership is ``assign_shards`` over job
    digests, so a re-publish (after a coordinator death mid-way)
    rewrites identical bytes.  The plan file is written *last* — its
    presence is the publication commit point.
    """
    jobs = [CampaignJob.from_dict(job) for job in manifest["jobs"]]
    shards = assign_shards(jobs, int(manifest["batches"]))
    batch_root = os.path.join(cluster_dir, BATCH_DIR)
    os.makedirs(batch_root, exist_ok=True)
    names = []
    for index, shard in enumerate(shards):
        name = batch_name(index)
        names.append(name)
        _atomic_write(
            os.path.join(batch_root, name + ".json"),
            seal_record({"kind": "batch", "name": name,
                         "jobs": [job.to_dict() for job in shard]}) + "\n")
    plan = {"kind": "plan", "batches": names,
            "total_jobs": len(manifest["jobs"])}
    _atomic_write(os.path.join(cluster_dir, PLAN_NAME),
                  seal_record(plan) + "\n")
    return plan


def load_plan(cluster_dir: str) -> Optional[Dict]:
    try:
        return _read_sealed(os.path.join(cluster_dir, PLAN_NAME),
                            "cluster plan")
    except ClusterError:
        return None


def load_batch(cluster_dir: str, name: str) -> List[Dict]:
    record = _read_sealed(
        os.path.join(cluster_dir, BATCH_DIR, name + ".json"),
        f"batch claim file {name}")
    return list(record["jobs"])


def done_path(cluster_dir: str, name: str) -> str:
    return os.path.join(cluster_dir, DONE_DIR, name + ".done")


def is_done(cluster_dir: str, name: str) -> bool:
    return os.path.exists(done_path(cluster_dir, name))


def mark_done(cluster_dir: str, name: str, node: str, token: int) -> None:
    os.makedirs(os.path.join(cluster_dir, DONE_DIR), exist_ok=True)
    _atomic_write(done_path(cluster_dir, name),
                  seal_record({"kind": "done", "batch": name,
                               "node": node, "token": token}) + "\n")


def final_path(cluster_dir: str) -> str:
    return os.path.join(cluster_dir, FINAL_NAME)


def is_final(cluster_dir: str) -> bool:
    return os.path.exists(final_path(cluster_dir))


def dedupe_records(records: List[Dict]) -> List[Dict]:
    """First committed record per job wins, sorted by job id.

    Cross-node appends interleave in wall-clock order; fencing makes a
    *completed-then-migrated* double commit impossible, but an append
    landing in the benign race window (expired-but-unclaimed lease) can
    coexist with the migrated re-execution's record.  Payloads are
    deterministic, so duplicates are byte-identical and first-wins is
    merely a tiebreak on metadata (attempts, wall_s).
    """
    seen: Dict[str, Dict] = {}
    for record in records:
        job_id = record.get("job_id")
        if job_id and job_id not in seen:
            seen[job_id] = record
    return [seen[job_id] for job_id in sorted(seen)]


def finalize(cluster_dir: str, node: str) -> str:
    """Write the deterministic aggregate + the final marker.

    Call only with the ``finalize`` lease held.  The aggregate is the
    byte-identity artifact: ok records (deduped, sorted by job id) and
    quarantined ids, exactly what a single-node
    :class:`~repro.fleet.orchestrator.CampaignRunner` writes — which is
    what the chaos drill byte-compares.
    """
    store = ResultStore(cluster_dir)
    records = dedupe_records(store.load())
    ok = [r for r in records if r.get("status") == "ok"]
    quarantined = [r for r in records if r.get("status") == "quarantined"]
    # the store itself is rewritten sorted + deduped, mirroring the
    # single-node orchestrator's end-of-campaign rewrite
    store.rewrite(records)
    aggregate = store.write_aggregate(ok, quarantined)
    _atomic_write(final_path(cluster_dir),
                  seal_record({"kind": "final", "node": node,
                               "ok": len(ok),
                               "quarantined": len(quarantined)}) + "\n")
    return aggregate


def request_stop(cluster_dir: str) -> None:
    """Ask every node to stop at its next safe boundary (preemption)."""
    _atomic_write(os.path.join(cluster_dir, STOP_NAME), "stop\n")


def clear_stop(cluster_dir: str) -> None:
    try:
        os.unlink(os.path.join(cluster_dir, STOP_NAME))
    except FileNotFoundError:
        pass


def stop_requested(cluster_dir: str) -> bool:
    return os.path.exists(os.path.join(cluster_dir, STOP_NAME))


def cluster_status(cluster_dir: str,
                   liveness_s: Optional[float] = None) -> Dict:
    """One structured snapshot of the shared directory (CLI + tests).

    ``liveness_s`` is the heartbeat horizon for counting a node alive;
    default three lease TTLs' worth of the freshest node record, or 30 s
    when no node ever registered.
    """
    from .lease import LEASE_DIR, LEASE_SUFFIX, Lease
    status: Dict = {"cluster_dir": cluster_dir}
    try:
        manifest = load_manifest(cluster_dir)
    except ClusterError:
        return dict(status, state="empty")
    plan = load_plan(cluster_dir)
    now = time.time()
    status.update({
        "total_jobs": len(manifest["jobs"]),
        # planned batch count when published (empty shards are dropped),
        # the manifest's requested shard count before that
        "batches": len(plan["batches"]) if plan else manifest["batches"],
        "deadline_at": manifest.get("deadline_at"),
        "planned": plan is not None,
        "final": is_final(cluster_dir),
        "stop_requested": stop_requested(cluster_dir),
    })
    done = batch_states = []
    if plan is not None:
        batch_states = []
        for name in plan["batches"]:
            entry = {"name": name, "done": is_done(cluster_dir, name)}
            lease_file = os.path.join(cluster_dir, LEASE_DIR,
                                      name + LEASE_SUFFIX)
            if os.path.exists(lease_file):
                try:
                    record = _read_sealed(lease_file, "lease")
                    lease = Lease.from_record(record)
                    entry["lease"] = {
                        "node": lease.node, "token": lease.token,
                        "expires_in_s": round(lease.expires_at - now, 3),
                        "renewals": lease.renewals,
                    }
                except (ClusterError, KeyError, TypeError):
                    entry["lease"] = {"damaged": True}
            batch_states.append(entry)
        done = [entry for entry in batch_states if entry["done"]]
    status["batch_states"] = batch_states
    status["done_batches"] = len(done)
    # node heartbeat files
    nodes = []
    node_root = os.path.join(cluster_dir, NODE_DIR)
    if os.path.isdir(node_root):
        for name in sorted(os.listdir(node_root)):
            if not name.endswith(".json"):
                continue
            try:
                record = _read_sealed(os.path.join(node_root, name),
                                      "node record")
            except ClusterError:
                continue
            record["heartbeat_age_s"] = round(
                now - float(record.get("updated_at", 0.0)), 3)
            nodes.append(record)
    horizon = liveness_s if liveness_s is not None else max(
        (3 * float(n.get("ttl_s", 10.0)) for n in nodes), default=30.0)
    status["nodes"] = nodes
    status["nodes_alive"] = sum(
        1 for n in nodes if n["heartbeat_age_s"] <= horizon)
    store = ResultStore(cluster_dir)
    records = dedupe_records(store.load())
    status["records"] = {
        "ok": sum(1 for r in records if r.get("status") == "ok"),
        "quarantined": sum(1 for r in records
                           if r.get("status") == "quarantined"),
    }
    return status
