"""Cluster worker node: claim batches, execute jobs, survive peers dying.

A :class:`ClusterNode` is one worker *process* cooperating with its
peers purely through the shared cluster directory:

1.  **Elect**: try the ``coordinator`` lease; the winner publishes the
    batch plan (deterministic, so a coordinator dying mid-publish just
    means the next winner rewrites the same bytes).
2.  **Claim**: walk the plan's batches, skip done ones, and try each
    lease.  Claiming over an expired lease is a *migration* — the node
    inherits the dead peer's per-job checkpoints from the shared
    checkpoint directory and resumes mid-job, byte-identically.
3.  **Execute**: jobs run through the ordinary fleet worker with
    mandatory mid-run checkpoints; the checkpoint boundary doubles as
    the **heartbeat** (the lease is renewed there and between jobs), so
    the lease TTL bounds the time a hung simulation can sit on a batch.
4.  **Commit**: every record lands via the result store's fenced append;
    a node whose lease was claimed away raises
    :class:`~repro.errors.StaleLeaseError` *inside the store lock* and
    abandons the batch without writing a byte.
5.  **Finalize**: when every batch is done, whoever wins the
    ``finalize`` lease writes the deterministic aggregate — byte-
    identical to a single-node run of the same campaign.

Per-job failures feed a node-local circuit breaker: a node whose own
environment is poisoned (every job crashing) backs off claiming instead
of burning through the retry budget of every batch in the plan.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional

from ..errors import (CampaignPreempted, DeadlineExceeded, StaleLeaseError)
from ..fleet.cache import ResultCache
from ..fleet.spec import CampaignJob
from ..fleet.store import ResultStore, seal_record
from ..fleet.worker import checkpoint_path, execute_job
from ..obs import runtime as _obs
from ..resilience.breaker import CircuitBreaker
from ..resilience.journal import AdmissionJournal
from .coordinator import (CACHE_DIR, CHECKPOINT_DIR, CLUSTER_JOURNAL_NAME,
                          NODE_DIR, cluster_status, finalize, is_done,
                          is_final, load_batch, load_manifest, load_plan,
                          mark_done, publish_plan, stop_requested)
from .lease import Lease, LeaseManager, _atomic_write

#: lease resources that are not job batches
COORDINATOR_RESOURCE = "coordinator"
FINALIZE_RESOURCE = "finalize"

#: node exit summaries (``ClusterNode.run`` return value ``state``)
NODE_DONE = "done"          # campaign finalized (by us or a peer)
NODE_STOPPED = "stopped"    # STOP file honoured at a safe boundary
NODE_DEADLINE = "deadline"  # campaign deadline passed


class ClusterNode:
    """One worker process in a shared-directory cluster campaign."""

    def __init__(self, cluster_dir: str, node_id: Optional[str] = None,
                 ttl_s: float = 10.0, poll_s: float = 0.2,
                 clock: Callable[[], float] = time.time,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.cluster_dir = cluster_dir
        self.node_id = node_id or f"node-{os.getpid()}"
        self.poll_s = float(poll_s)
        self.clock = clock
        self.journal = AdmissionJournal(cluster_dir,
                                        name=CLUSTER_JOURNAL_NAME)
        self.leases = LeaseManager(cluster_dir, self.node_id, ttl_s=ttl_s,
                                   clock=clock, journal=self.journal)
        self.store = ResultStore(cluster_dir)
        self.manifest = load_manifest(cluster_dir)
        self.cache = ResultCache(os.path.join(cluster_dir, CACHE_DIR)) \
            if self.manifest.get("cache") else None
        self.checkpoint = {
            "dir": os.path.join(cluster_dir, CHECKPOINT_DIR),
            "every": int(self.manifest["checkpoint_every"]),
        }
        self.deadline_at = self.manifest.get("deadline_at")
        # node-local breaker: generous defaults tuned for "this *node* is
        # sick" (bad mount, poisoned env), not for flaky individual jobs
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            window_s=30.0, min_samples=4, failure_threshold=0.75,
            cooldown_s=0.5, max_cooldown_s=10.0)
        self.jobs_done = 0
        self.batches_done = 0
        self.migrations = 0
        self.fenced = 0
        self._stop_reason: Optional[str] = None

    # -- node heartbeat record ----------------------------------------------
    def _beat(self, state: str) -> None:
        """Publish this node's liveness record (``nodes/<id>.json``)."""
        node_dir = os.path.join(self.cluster_dir, NODE_DIR)
        os.makedirs(node_dir, exist_ok=True)
        _atomic_write(
            os.path.join(node_dir, self.node_id + ".json"),
            seal_record({
                "kind": "node", "node": self.node_id, "pid": os.getpid(),
                "ttl_s": self.leases.ttl_s, "state": state,
                "updated_at": self.clock(),
                "jobs_done": self.jobs_done,
                "batches_done": self.batches_done,
                "migrations": self.migrations,
            }) + "\n")
        tel = _obs._active
        if tel is not None:
            tel.registry.get("repro_cluster_heartbeat_age_seconds") \
                .labels(self.node_id).set(0.0)

    def _count_job(self, status: str) -> None:
        tel = _obs._active
        if tel is not None:
            tel.registry.get("repro_cluster_jobs_total").labels(status).inc()

    def _emit(self, name: str, **fields) -> None:
        tel = _obs._active
        if tel is not None:
            tel.emit(name, node=self.node_id, **fields)

    # -- stopping conditions -------------------------------------------------
    def _should_stop(self) -> Optional[str]:
        if stop_requested(self.cluster_dir):
            return NODE_STOPPED
        if self.deadline_at is not None and time.time() > self.deadline_at:
            return NODE_DEADLINE
        return None

    # -- coordination --------------------------------------------------------
    def _ensure_plan(self) -> Dict:
        """Return the published plan, electing ourselves if needed."""
        while True:
            plan = load_plan(self.cluster_dir)
            if plan is not None:
                return plan
            lease = self.leases.claim(COORDINATOR_RESOURCE)
            if lease is not None:
                try:
                    plan = publish_plan(self.cluster_dir, self.manifest)
                    self._emit("cluster.plan", batches=len(plan["batches"]))
                finally:
                    self.leases.release(lease)
                return plan
            # another node is coordinator — wait for its plan (or its
            # lease to expire, at which point we take over)
            time.sleep(self.poll_s)

    def _completed_ids(self) -> set:
        """Job ids already committed to the shared store.

        Callers that are about to *start work* take the store lock
        around this scan plus the claim decision — that is the other
        half of the fencing linearisation: a commit either happened
        before the scan (we see it and skip) or will be fenced.
        """
        return {record["job_id"] for record in self.store.load()
                if record.get("status") in ("ok", "quarantined")}

    # -- job execution -------------------------------------------------------
    def _heartbeat_factory(self, holder: List[Lease]) -> Callable[[], bool]:
        """The ``should_yield`` hook: renew the lease, yield if fenced.

        Called by the fleet worker at every checkpoint boundary.  A
        failed renewal means the batch migrated — yield immediately (the
        checkpoint just written is exactly what the new holder resumes
        from).  A STOP file or deadline also yields; the caller tells
        the cases apart via :meth:`_should_stop` and lease state.
        """
        def heartbeat() -> bool:
            if self._should_stop() is not None:
                return True
            renewed = self.leases.renew(holder[0])
            if renewed is None:
                return True
            holder[0] = renewed
            self._beat("working")
            return False
        return heartbeat

    def _execute_with_retries(self, job_dict: Dict, holder: List[Lease],
                              heartbeat: Callable[[], bool]) -> Dict:
        """Run one job to a terminal record (ok / quarantined).

        Raises :class:`CampaignPreempted` when the heartbeat yielded
        (fenced or stopping) — the caller inspects which.  Retries stay
        *inside* the lease: each attempt starts by renewing, so a retry
        loop can never outlive the node's claim.
        """
        job = CampaignJob.from_dict(job_dict)
        max_retries = int(self.manifest["max_retries"])
        last_error = "unknown"
        attempts = 0
        start = time.perf_counter()
        for attempt in range(max_retries + 1):
            if heartbeat():
                raise CampaignPreempted(
                    f"node {self.node_id} yielded before attempt "
                    f"{attempt} of job {job.job_id}")
            attempts = attempt + 1
            stats: Dict = {}
            try:
                payload = execute_job(
                    job_dict, attempt, self.manifest.get("fault_plan"),
                    self.checkpoint, stats, should_yield=heartbeat,
                    deadline_at=self.deadline_at)
            except (CampaignPreempted, DeadlineExceeded):
                raise
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                self.breaker.record_failure()
                if not getattr(exc, "retryable", True):
                    break              # deterministic: retries can't help
                continue
            self.breaker.record_success()
            if stats.get("resumed_from_cycle"):
                self._emit("node.job.migrated", job_id=job.job_id,
                           resumed_from_cycle=stats["resumed_from_cycle"])
            return {
                "job_id": job.job_id, "digest": job.digest,
                "job": job.to_dict(), "status": "ok", "source": "executed",
                "attempts": attempts,
                "wall_s": time.perf_counter() - start, "payload": payload,
            }
        return {
            "job_id": job.job_id, "digest": job.digest,
            "job": job.to_dict(), "status": "quarantined",
            "source": "executed", "attempts": attempts,
            "wall_s": time.perf_counter() - start, "error": last_error,
        }

    def _commit(self, record: Dict, lease: Lease) -> None:
        """Fenced append: verify-the-lease-then-write, atomically."""
        self.store.append(record, fence=self.leases.fence_for(lease))

    def _run_batch(self, lease: Lease) -> str:
        """Execute one claimed batch to completion; returns an outcome.

        Outcomes: ``"done"`` (marker written, lease released),
        ``"fenced"`` (lost the lease — a peer migrated the batch away),
        ``"stopped"``/``"deadline"`` (yielded at a safe boundary, lease
        released so a peer — or a later restart — picks the batch up
        without waiting out the TTL).
        """
        holder = [lease]
        heartbeat = self._heartbeat_factory(holder)
        jobs = sorted(load_batch(self.cluster_dir, lease.resource),
                      key=lambda j: CampaignJob.from_dict(j).job_id)
        tel = _obs._active
        t0 = tel.tracer.now_us() if tel is not None else 0.0
        # the resume scan shares the store lock with commits: a record
        # is either visible here or its writer will be fenced
        with self.store.lock():
            done_ids = {record["job_id"] for record in self.store.load()
                        if record.get("status") in ("ok", "quarantined")}
        outcome = "done"
        for job_dict in jobs:
            job = CampaignJob.from_dict(job_dict)
            if job.job_id in done_ids:
                continue
            if not self.breaker.allow():
                # this node looks sick — hand the batch back rather than
                # quarantine jobs a healthy peer would complete
                self._emit("node.breaker.open", batch=lease.resource,
                           retry_after_s=self.breaker.retry_after_s())
                outcome = "stopped" if self._should_stop() else "fenced"
                self.leases.release(holder[0])
                break
            payload = self.cache.lookup(job) if self.cache else None
            if payload is not None:
                record = {
                    "job_id": job.job_id, "digest": job.digest,
                    "job": job.to_dict(), "status": "ok",
                    "source": "cache", "attempts": 0, "wall_s": 0.0,
                    "payload": payload,
                }
            else:
                try:
                    record = self._execute_with_retries(job_dict, holder,
                                                        heartbeat)
                except (CampaignPreempted, DeadlineExceeded):
                    stop = self._should_stop()
                    if stop is not None:
                        # release so a surviving peer need not wait out
                        # the TTL; the checkpoint stays for the resume
                        self.leases.release(holder[0])
                        outcome = stop
                        break
                    self.fenced += 1
                    self._emit("node.fenced", batch=lease.resource,
                               token=holder[0].token)
                    outcome = "fenced"
                    break
            try:
                self._commit(record, holder[0])
            except StaleLeaseError:
                self.fenced += 1
                self._emit("node.fenced", batch=lease.resource,
                           token=holder[0].token, at="commit")
                outcome = "fenced"
                break
            done_ids.add(job.job_id)
            self.jobs_done += 1
            self._count_job(record["status"])
            if record["status"] == "ok" and record["source"] == "executed" \
                    and self.cache is not None:
                self.cache.store(job, record["payload"])
            self._beat("working")
        else:
            # every job committed: mark done while the lease still holds
            renewed = self.leases.renew(holder[0])
            if renewed is None:
                outcome = "fenced"
            else:
                mark_done(self.cluster_dir, lease.resource, self.node_id,
                          renewed.token)
                self.batches_done += 1
                self.leases.release(renewed)
                self._emit("node.batch.done", batch=lease.resource,
                           jobs=len(jobs))
        if tel is not None:
            tel.tracer.complete(
                "cluster.batch", t0, tel.tracer.now_us() - t0, "cluster",
                args={"batch": lease.resource, "node": self.node_id,
                      "outcome": outcome})
        return outcome

    # -- the node loop -------------------------------------------------------
    def run(self) -> Dict:
        """Work until the campaign finalizes (or stop/deadline); returns
        a summary dict (``state``, counters, aggregate path when final).
        """
        self._beat("starting")
        self._emit("node.start", cluster_dir=self.cluster_dir,
                   ttl_s=self.leases.ttl_s)
        plan = self._ensure_plan()
        names: List[str] = list(plan["batches"])
        state = NODE_DONE
        aggregate_path = None
        while True:
            stop = self._should_stop()
            if stop is not None:
                state = stop
                break
            if is_final(self.cluster_dir):
                break
            self._beat("scanning")
            if not self.breaker.allow():
                # this node's own failure rate tripped its breaker:
                # stop claiming (healthy peers keep the campaign moving)
                # until the cooldown lets a probe batch through
                time.sleep(min(max(self.breaker.retry_after_s(), 0.05),
                               1.0))
                continue
            claimed = None
            pending = 0
            for name in names:
                if is_done(self.cluster_dir, name):
                    continue
                pending += 1
                lease = self.leases.claim(name)
                if lease is not None:
                    claimed = lease
                    break
            if claimed is not None:
                self._emit("node.batch.claimed", batch=claimed.resource,
                           token=claimed.token)
                outcome = self._run_batch(claimed)
                if outcome in (NODE_STOPPED, NODE_DEADLINE):
                    state = outcome
                    break
                continue
            if pending == 0:
                # everything done: race for the finalize lease
                final_lease = self.leases.claim(FINALIZE_RESOURCE)
                if final_lease is not None:
                    try:
                        if not is_final(self.cluster_dir):
                            aggregate_path = finalize(self.cluster_dir,
                                                      self.node_id)
                            self._emit("cluster.final",
                                       aggregate=aggregate_path)
                    finally:
                        self.leases.release(final_lease)
                    break
            # batches all leased out (or finalize contended): idle-wait
            time.sleep(self.poll_s)
        if aggregate_path is None and is_final(self.cluster_dir):
            aggregate_path = self.store.aggregate_path
        self._beat(state)
        self._emit("node.stop", state=state, jobs_done=self.jobs_done,
                   batches_done=self.batches_done, fenced=self.fenced)
        tel = _obs._active
        if tel is not None:
            status = cluster_status(self.cluster_dir)
            tel.registry.get("repro_cluster_nodes_alive") \
                .set(status["nodes_alive"])
        return {
            "state": state, "node": self.node_id,
            "jobs_done": self.jobs_done,
            "batches_done": self.batches_done,
            "fenced": self.fenced,
            "aggregate_path": aggregate_path,
        }
