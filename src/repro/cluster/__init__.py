"""repro.cluster — failure-tolerant multi-node campaign execution.

Coordinates N worker processes over a **shared directory** — no network
protocol, no external services: lease files with monotonic fencing
tokens decide who works on what, per-job checkpoints migrate work off
dead nodes, and the result store's fenced append makes a revived stale
node unable to double-commit.  The campaign's ``aggregate.json`` is
byte-identical to a single-node run — including runs where a node was
SIGKILLed mid-campaign (see docs/cluster.md and the cluster-chaos CI
lane).
"""

from .coordinator import (cluster_status, dedupe_records, finalize,
                          is_final, load_manifest, load_plan, publish_plan,
                          request_stop, stop_requested, submit)
from .lease import Lease, LeaseManager
from .local import fold_report, run_clustered, spawn_node
from .node import ClusterNode

__all__ = [
    "ClusterNode", "Lease", "LeaseManager", "cluster_status",
    "dedupe_records", "finalize", "fold_report", "is_final",
    "load_manifest", "load_plan", "publish_plan", "request_stop",
    "run_clustered", "spawn_node", "stop_requested", "submit",
]
