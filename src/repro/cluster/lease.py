"""Lease files with fencing tokens: who may work on what, provably.

The cluster's unit of mutual exclusion is a **lease file** per resource
(one per job batch, plus ``coordinator`` and ``finalize``): a single
CRC-guarded JSON record naming the holder node, an absolute expiry time,
and a **fencing token** — a cluster-wide monotonic counter bumped on
every claim.  The protocol is the classic lease/fencing design:

* **Claim**: under the cluster lock, a resource with no lease (or an
  *expired* one) is claimable; the claimant draws the next fencing
  token and atomically writes a fresh lease record.  Claiming over an
  expired lease held by another node is a **migration** — the dead
  node's work moves, checkpoints and all.
* **Renew (heartbeat)**: under the cluster lock, the holder extends its
  expiry — but only while the on-disk token still matches its own.  A
  lease that was claimed away renews ``False``: the old holder has been
  *fenced* and must abandon the batch.
* **Fence check**: any commit into shared state (the result store)
  re-reads the lease *inside the store's own inter-process lock* and
  raises :class:`~repro.errors.StaleLeaseError` on token mismatch — so
  a node revived after a pause can never double-commit work that
  migrated while it slept.

Expiry is strict: a lease is expired only when ``clock() > expires_at``,
so a renewal arriving *exactly at* expiry still succeeds (the
cluster-lock serialises it against any competing claim).  The clock is
injectable for tests; production uses ``time.time`` because expiry must
be comparable across machines sharing the directory.

Locking uses ``flock`` on a sidecar file.  A SIGKILLed holder's flock
is released by the kernel automatically; its *lease* is not — that is
the point: the lease outliving the process by up to one TTL is exactly
the grace period that distinguishes "slow" from "dead".
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

try:                                   # POSIX advisory file locking
    import fcntl
except ImportError:                    # pragma: no cover - non-POSIX host
    fcntl = None

from ..errors import StaleLeaseError
from ..fleet.store import seal_record, unseal_record
from ..obs import runtime as _obs

LEASE_DIR = "leases"
LEASE_SUFFIX = ".lease"
FENCE_NAME = "fence.json"
CLUSTER_LOCK_NAME = "cluster.lock"


@dataclass(frozen=True)
class Lease:
    """One node's claim on one resource, as read from (or written to) disk."""

    resource: str
    node: str
    token: int
    claimed_at: float
    expires_at: float
    renewals: int = 0

    def to_record(self) -> Dict:
        return {
            "kind": "lease", "resource": self.resource, "node": self.node,
            "token": self.token, "claimed_at": self.claimed_at,
            "expires_at": self.expires_at, "renewals": self.renewals,
        }

    @classmethod
    def from_record(cls, record: Dict) -> "Lease":
        return cls(resource=record["resource"], node=record["node"],
                   token=int(record["token"]),
                   claimed_at=float(record["claimed_at"]),
                   expires_at=float(record["expires_at"]),
                   renewals=int(record.get("renewals", 0)))


def _atomic_write(path: str, text: str) -> None:
    """tmp + fsync + rename: readers see the old record or the new one."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class LeaseManager:
    """Claim / renew / release leases in a shared cluster directory.

    ``ttl_s`` is the liveness contract: a holder must renew within it or
    its work becomes claimable.  It must comfortably exceed the longest
    gap between heartbeats — for a fleet node that is one checkpoint
    chunk's wall clock, which is why cluster manifests mandate
    ``checkpoint_every``.  ``clock`` is injectable for the lease
    lifecycle tests; the journal (when given) receives one CRC-guarded
    line per lifecycle event, in :mod:`repro.resilience` journal format.
    """

    def __init__(self, root: str, node: str, ttl_s: float = 10.0,
                 clock: Callable[[], float] = time.time,
                 journal=None) -> None:
        if ttl_s <= 0:
            raise ValueError("lease ttl_s must be positive")
        self.root = root
        self.node = node
        self.ttl_s = float(ttl_s)
        self.clock = clock
        self.journal = journal
        self.lease_dir = os.path.join(root, LEASE_DIR)
        os.makedirs(self.lease_dir, exist_ok=True)
        self.fence_path = os.path.join(self.lease_dir, FENCE_NAME)
        self.lock_path = os.path.join(root, CLUSTER_LOCK_NAME)

    # -- cluster-wide lock ---------------------------------------------------
    @contextmanager
    def _lock(self):
        if fcntl is None:              # pragma: no cover - non-POSIX host
            yield
            return
        handle = open(self.lock_path, "a")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    # -- record plumbing -----------------------------------------------------
    def _path(self, resource: str) -> str:
        return os.path.join(self.lease_dir, resource + LEASE_SUFFIX)

    def read(self, resource: str) -> Optional[Lease]:
        """The current on-disk lease record, valid or expired, or None.

        A damaged record (bit-flip: writes are atomic, so torn files
        cannot occur) is treated as absent — the resource is claimable,
        which errs on the side of progress; the fencing token keeps the
        error from ever becoming a double-commit.
        """
        try:
            with open(self._path(resource), "r") as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        try:
            return Lease.from_record(unseal_record(text.strip()))
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"cluster lease {resource!r}: damaged record ({exc}); "
                f"treating as expired", RuntimeWarning, stacklevel=2)
            return None

    def expired(self, lease: Lease) -> bool:
        """Strictly past expiry — at exactly ``expires_at`` it still holds."""
        return self.clock() > lease.expires_at

    def _next_token(self, floor: int) -> int:
        """Draw the next fencing token (call only under the lock)."""
        current = 0
        try:
            with open(self.fence_path, "r") as handle:
                current = int(unseal_record(handle.read().strip())["token"])
        except (FileNotFoundError, ValueError, KeyError, TypeError):
            # recover the watermark from whatever leases survived
            for name in os.listdir(self.lease_dir):
                if not name.endswith(LEASE_SUFFIX):
                    continue
                lease = self.read(name[:-len(LEASE_SUFFIX)])
                if lease is not None:
                    current = max(current, lease.token)
        token = max(current, floor) + 1
        _atomic_write(self.fence_path,
                      seal_record({"kind": "fence", "token": token}) + "\n")
        return token

    def _journal(self, op: str, **fields) -> None:
        if self.journal is not None:
            self.journal.append(op, node=self.node, **fields)

    def _count(self, event: str, amount: int = 1) -> None:
        tel = _obs._active
        if tel is not None:
            tel.registry.get("repro_cluster_leases_total") \
                .labels(event).inc(amount)

    # -- lifecycle -----------------------------------------------------------
    def claim(self, resource: str) -> Optional[Lease]:
        """Try to claim ``resource``; None while another holder is live.

        Claiming over an *expired* lease is the migration path: the
        previous holder's token is fenced out (journal op ``takeover``
        and the ``repro_cluster_batches_migrated_total`` counter record
        it) and any commit it attempts afterwards is rejected at the
        result store.
        """
        with self._lock():
            now = self.clock()
            current = self.read(resource)
            if current is not None and not self.expired(current):
                return None
            token = self._next_token(current.token if current else 0)
            lease = Lease(resource=resource, node=self.node, token=token,
                          claimed_at=now, expires_at=now + self.ttl_s)
            _atomic_write(self._path(resource),
                          seal_record(lease.to_record()) + "\n")
            self._count("claimed")
            if current is not None:
                self._count("expired")
                self._journal("takeover", resource=resource, token=token,
                              previous_node=current.node,
                              previous_token=current.token)
                if current.node != self.node:
                    tel = _obs._active
                    if tel is not None:
                        tel.registry.get(
                            "repro_cluster_batches_migrated_total").inc()
            else:
                self._journal("claim", resource=resource, token=token)
            return lease

    def renew(self, lease: Lease) -> Optional[Lease]:
        """Heartbeat: extend the holder's expiry; None when fenced.

        Renewal succeeds only while the on-disk token is still the
        holder's.  A ``None`` return means the lease was claimed away
        (or the record vanished): the holder is fenced and must abandon
        the resource immediately — its next commit would be rejected
        anyway, but abandoning early wastes fewer cycles.
        """
        with self._lock():
            current = self.read(lease.resource)
            if current is None or current.token != lease.token:
                self._count("fenced")
                self._journal("fence_rejected", resource=lease.resource,
                              token=lease.token,
                              holder_token=current.token
                              if current else None)
                return None
            renewed = Lease(resource=lease.resource, node=lease.node,
                            token=lease.token, claimed_at=lease.claimed_at,
                            expires_at=self.clock() + self.ttl_s,
                            renewals=lease.renewals + 1)
            _atomic_write(self._path(lease.resource),
                          seal_record(renewed.to_record()) + "\n")
            self._count("renewed")
            return renewed

    def release(self, lease: Lease) -> bool:
        """Drop a lease we still hold; False if it was already fenced."""
        with self._lock():
            current = self.read(lease.resource)
            if current is None or current.token != lease.token:
                return False
            os.unlink(self._path(lease.resource))
            self._count("released")
            self._journal("release", resource=lease.resource,
                          token=lease.token)
            return True

    # -- fencing -------------------------------------------------------------
    def check(self, lease: Lease) -> None:
        """Raise :class:`StaleLeaseError` unless ``lease`` still holds.

        This is the commit-time fence: the result store calls it inside
        its own inter-process lock (``ResultStore.append(fence=...)``),
        making *verify-then-append* atomic against competing committers.
        A claim by another node always lands either before this check
        (token mismatch → rejected) or after the append completes (the
        new claimant's resume scan, under the same store lock, then sees
        the committed record and skips the job).
        """
        current = self.read(lease.resource)
        if current is None or current.token != lease.token:
            self._count("fenced")
            self._journal("fence_rejected", resource=lease.resource,
                          token=lease.token,
                          holder_token=current.token if current else None)
            raise StaleLeaseError(
                f"lease on {lease.resource!r} is stale: node {lease.node} "
                f"holds token {lease.token}, but the store-side check found "
                f"{'no lease' if current is None else f'token {current.token} (node {current.node})'}"
                f" — the batch has migrated, abandoning the commit")

    def fence_for(self, lease: Lease) -> Callable[[], None]:
        """The ``fence=`` callable for ``ResultStore.append``."""
        return lambda: self.check(lease)

    # -- introspection -------------------------------------------------------
    def leases(self) -> List[Lease]:
        """Every readable lease record, sorted by resource."""
        found = []
        for name in sorted(os.listdir(self.lease_dir)):
            if not name.endswith(LEASE_SUFFIX):
                continue
            lease = self.read(name[:-len(LEASE_SUFFIX)])
            if lease is not None:
                found.append(lease)
        return found
