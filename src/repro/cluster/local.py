"""Run a whole cluster campaign on one machine: N node subprocesses.

:func:`run_clustered` is the convenience entry point (and the backend
``repro.serve`` uses): submit the manifest, spawn N ``repro node``
worker *processes* over the shared directory, wait them out, and fold
the shared store back into an ordinary
:class:`~repro.fleet.orchestrator.CampaignReport` — so callers (CLI,
service, tests) see exactly the single-node result shape, including the
byte-identical ``aggregate.json``.

Real subprocesses, not threads: the whole point of the cluster layer is
surviving *process death*, and the chaos drill SIGKILLs one of these
workers mid-campaign.  Node crashes are therefore non-fatal here — the
fold only checks that the campaign *finalized*, not that every worker
exited cleanly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..errors import ClusterError, ConfigurationError
from ..fleet.metrics import CampaignMetrics
from ..fleet.orchestrator import CampaignReport
from ..fleet.spec import CampaignJob
from ..fleet.store import ResultStore
from .coordinator import (dedupe_records, is_final, load_manifest,
                          request_stop, submit)
from .node import ClusterNode


def _node_env() -> Dict[str, str]:
    """Subprocess environment with this package importable."""
    env = dict(os.environ)
    import repro
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "") \
        if env.get("PYTHONPATH") else src_root
    return env


def node_command(cluster_dir: str, node_id: str,
                 ttl_s: float) -> List[str]:
    """The ``repro node`` argv for one worker subprocess."""
    return [sys.executable, "-m", "repro.cli", "node",
            "--cluster-dir", cluster_dir, "--node-id", node_id,
            "--ttl", str(ttl_s)]


def spawn_node(cluster_dir: str, node_id: str,
               ttl_s: float = 10.0) -> subprocess.Popen:
    """Start one detached worker node over ``cluster_dir``."""
    return subprocess.Popen(
        node_command(cluster_dir, node_id, ttl_s), env=_node_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def fold_report(cluster_dir: str, nodes: int = 1) -> CampaignReport:
    """Reduce the shared store to a single-node-shaped campaign report."""
    manifest = load_manifest(cluster_dir)
    store = ResultStore(cluster_dir)
    records = dedupe_records(store.load())
    metrics = CampaignMetrics(total_jobs=len(manifest["jobs"]),
                              workers=max(1, nodes))
    for record in records:
        if record.get("status") == "quarantined":
            metrics.quarantined += 1
            continue
        source = record.get("source", "executed")
        if source == "cache":
            metrics.cache_hits += 1
        elif source == "resumed":
            metrics.resumed += 1
        else:
            metrics.executed += 1
        metrics.retries += max(0, int(record.get("attempts", 1)) - 1)
        metrics.busy_s += float(record.get("wall_s", 0.0))
        metrics.job_walls.append(float(record.get("wall_s", 0.0)))
        metrics.note_payload(record.get("payload") or {})
    report = CampaignReport(records=records, metrics=metrics,
                            store_path=store.path)
    if is_final(cluster_dir):
        report.aggregate_path = store.aggregate_path
    else:
        # not finalized: either stopped cooperatively or out of time
        deadline_at = manifest.get("deadline_at")
        if deadline_at is not None and time.time() > deadline_at:
            report.deadline_exceeded = True
        else:
            report.preempted = True
    return report


def run_clustered(jobs: Optional[Sequence[CampaignJob]],
                  cluster_dir: str,
                  nodes: int = 2,
                  batches: Optional[int] = None,
                  checkpoint_every: int = 5_000,
                  max_retries: int = 2,
                  fault_plan: Optional[Dict] = None,
                  deadline_s: Optional[float] = None,
                  cache: bool = True,
                  ttl_s: float = 5.0,
                  in_process: bool = False,
                  wait_timeout_s: float = 600.0) -> CampaignReport:
    """Execute a campaign over ``nodes`` worker processes; fold the report.

    ``jobs=None`` reuses a manifest already submitted into
    ``cluster_dir`` (the service pre-submits, then fans out).
    ``in_process=True`` runs a single :class:`ClusterNode` in this
    process instead of spawning — no crash isolation, but deterministic
    and debuggable, and still exercising the full lease/fence protocol
    (tests and ``--nodes 0`` use it).
    """
    if jobs is not None:
        submit(cluster_dir, list(jobs), batches=batches,
               checkpoint_every=checkpoint_every, max_retries=max_retries,
               fault_plan=fault_plan, deadline_s=deadline_s, cache=cache)
    else:
        load_manifest(cluster_dir)     # fail fast on an empty dir
    if in_process or nodes == 0:
        ClusterNode(cluster_dir, node_id="node-local", ttl_s=ttl_s).run()
        return fold_report(cluster_dir, nodes=1)
    if nodes < 1:
        raise ConfigurationError("cluster needs nodes >= 1 (0 = in-process)")
    procs = [spawn_node(cluster_dir, f"node-{index}", ttl_s=ttl_s)
             for index in range(nodes)]
    deadline = time.monotonic() + wait_timeout_s
    try:
        for proc in procs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    f"cluster campaign in {cluster_dir!r} did not finish "
                    f"within {wait_timeout_s:.0f} s")
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                raise ClusterError(
                    f"cluster campaign in {cluster_dir!r} did not finish "
                    f"within {wait_timeout_s:.0f} s")
    except ClusterError:
        request_stop(cluster_dir)
        for proc in procs:
            proc.kill()
        raise
    finally:
        for proc in procs:
            if proc.poll() is None:    # pragma: no cover - defensive
                proc.kill()
    return fold_report(cluster_dir, nodes=nodes)
