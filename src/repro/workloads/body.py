"""Synthetic body/gateway application.

The "completely different purposes" end of the customer spectrum (paper
Section 1): a central gateway routing CAN traffic between several buses.
Dominated by communication and DMA, with very little arithmetic — the
workload whose bottleneck is the peripheral bus rather than the flash
path, which keeps the option-ranking experiments honest across customers.
"""

from __future__ import annotations

from typing import Dict

from ..ed.device import EdConfig, EmulationDevice
from ..soc.config import SoCConfig
from ..soc.cpu import isa
from ..soc.dma.controller import DmaChannelConfig
from ..soc.memory import map as amap
from ..soc.peripherals.basic import CanNode, PeriodicTimer
from .program import ProgramBuilder

DEFAULT_PARAMS: Dict = {
    "can_buses": 3,
    "msgs_per_s": 4000,            # per bus
    "routing_table_entries": 1024,
    "use_dma": True,
    "tables_in_dspr": False,
    "isr_in_pspr": False,
    "background_blocks": 16,
    "table_locality": 0.6,
    "anomaly": False,
    "anomaly_period": 80_000,
}


def _routing_table_base(params: Dict) -> int:
    if params["tables_in_dspr"]:
        return amap.DSPR_BASE + 0x4000
    return amap.PFLASH_BASE + 0x14_0000


def build_body_program(params: Dict):
    builder = ProgramBuilder()
    table_base = _routing_table_base(params)
    isr_base = amap.PSPR_BASE if params["isr_in_pspr"] else None

    main = builder.function("main")
    top = main.label("top")
    main.call("network_mgmt")
    main.call("diag_services")
    main.jump(top)

    mgmt = builder.function("network_mgmt")
    for block in range(params["background_blocks"]):
        mgmt.alu(12)
        mgmt.load(isa.StrideAddr(amap.LMU_BASE + 0x1000 + block * 0x80, 4, 16))
        mgmt.alu(8)
        mgmt.store(isa.FixedAddr(amap.LMU_BASE + 0x3000 + block * 4))
    mgmt.ret()

    diag = builder.function("diag_services")
    for block in range(max(2, params["background_blocks"] // 2)):
        diag.alu(10)
        diag.load(isa.TableAddr(amap.PFLASH_BASE + 0x16_0000 + block * 0x1000,
                                4, 128, locality=0.5))
        diag.alu(6)
        diag.store(isa.StrideAddr(amap.DSPR_BASE + 0x200 + block * 0x20, 4, 8))
    diag.ret()

    # one routing ISR per bus: look up the route, forward or DMA-copy
    for bus in range(params["can_buses"]):
        base = (isr_base + 0x400 * (bus + 1)) if isr_base is not None else None
        isr = builder.function(f"route_isr{bus}", base=base)
        isr.load(isa.FixedAddr(amap.PERIPH_BASE + 0x300 + bus * 0x40))
        isr.alu(4)
        isr.load(isa.TableAddr(table_base, 8,
                               params["routing_table_entries"],
                               locality=params["table_locality"]))
        isr.alu(6)
        if not params["use_dma"]:
            isr.loop(8, lambda f, b=bus: f
                     .load(isa.StrideAddr(amap.PERIPH_BASE + 0x310 + b * 0x40,
                                          4, 8))
                     .store(isa.StrideAddr(amap.PERIPH_BASE + 0x350
                                           + ((b + 1) % params["can_buses"])
                                           * 0x40, 4, 8)))
        isr.store(isa.FixedAddr(amap.LMU_BASE + 0x5000 + bus * 0x10))
        isr.rfe()

    anomaly = builder.function("anomaly_isr")
    anomaly.loop(48, lambda f: f
                 .load(isa.TableAddr(amap.PFLASH_BASE + 0x30_0000, 4, 65536,
                                     locality=0.0))
                 .alu(1))
    anomaly.rfe()

    return builder.assemble()


class BodyGatewayScenario:
    name = "body_gateway"
    default_params = DEFAULT_PARAMS

    def hot_table_ranges(self, params: Dict):
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        if merged["tables_in_dspr"]:
            return ()
        base = _routing_table_base(merged)
        return ((base, base + merged["routing_table_entries"] * 8),)

    def build(self, config: SoCConfig, params: Dict,
              seed: int = 2008) -> EmulationDevice:
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        params = merged
        device = EmulationDevice(EdConfig(soc=config), seed)
        soc = device.soc
        device.load_program(build_body_program(params))

        freq = config.cpu.frequency_mhz
        mean_period = max(1000, int(freq * 1e6 / params["msgs_per_s"]))
        for bus in range(params["can_buses"]):
            srn = soc.icu.add_srn(f"can{bus}", 6 + (bus % 3))
            device.cpu.set_vector(srn.id, f"route_isr{bus}")
            soc.add_peripheral(CanNode(
                f"can{bus}", soc.hub, soc.icu, srn.id,
                mean_period=mean_period, rng=soc.sim.rng(f"can{bus}")))
            if params["use_dma"]:
                dma_srn = soc.icu.add_srn(f"can{bus}_dma", 3, core="dma",
                                          dma_channel=bus)
                soc.dma.configure_channel(bus, DmaChannelConfig(
                    src=amap.PERIPH_BASE + 0x310 + bus * 0x40,
                    dst=amap.LMU_BASE + 0x7000 + bus * 0x100, moves=8))
                # the payload copy triggers alongside the routing interrupt
                soc.add_peripheral(PeriodicTimer(
                    f"dma_kick{bus}", soc.hub, soc.icu, dma_srn.id,
                    period=mean_period, phase=500 + bus * 700))
        if params["anomaly"]:
            anomaly_srn = soc.icu.add_srn("anomaly", 12)
            device.cpu.set_vector(anomaly_srn.id, "anomaly_isr")
            soc.add_peripheral(PeriodicTimer(
                "anomaly_timer", soc.hub, soc.icu, anomaly_srn.id,
                period=params["anomaly_period"],
                phase=params["anomaly_period"] // 3))
        return device
