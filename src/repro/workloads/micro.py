"""Micro-workloads: substrate characterisation kernels.

Single-behaviour kernels that stress exactly one mechanism of the memory
system or pipeline.  Used by tests to pin down substrate timing (every
kernel's throughput is predictable in closed form) and by the ablation
benchmarks to isolate one architectural effect at a time.
"""

from __future__ import annotations

from ..soc.cpu import isa
from ..soc.memory import map as amap
from .program import ProgramBuilder


def alu_kernel(width: int = 64):
    """Pure integer stream from PSPR: 1 instruction per cycle, no stalls."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.alu(width)
    main.jump(top)
    return builder.assemble()


def dual_issue_kernel(pairs: int = 32):
    """Alternating IP/LD from scratchpad: saturates both pipelines."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    for _ in range(pairs):
        main.alu(1)
        main.load(isa.FixedAddr(amap.DSPR_BASE + 0x40))
    main.jump(top)
    return builder.assemble()


def flash_stream_kernel(stride: int = 32, footprint_kb: int = 256):
    """Sequential flash data reads: exercises the data-port read buffer."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    count = footprint_kb * 1024 // stride
    main.load(isa.StrideAddr(amap.PFLASH_BASE + 0x10_0000, stride, count))
    main.alu(1)
    main.jump(top)
    return builder.assemble()


def flash_random_kernel(footprint_kb: int = 1024):
    """Random flash data reads: worst case for every buffer and cache."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    entries = footprint_kb * 1024 // 4
    main.load(isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, entries,
                            locality=0.0))
    main.alu(1)
    main.jump(top)
    return builder.assemble()


def icache_thrash_kernel(footprint_kb: int = 24):
    """Cyclic code walk larger than the I-cache: LRU worst case."""
    builder = ProgramBuilder()
    main = builder.function("main")
    top = main.label("top")
    instructions = footprint_kb * 1024 // isa.INSTR_BYTES - 2
    main.alu(instructions)
    main.jump(top)
    return builder.assemble()


def branchy_kernel(blocks: int = 32, taken_probability: float = 0.5):
    """Unpredictable branches from PSPR: isolates the refill penalty."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    for index in range(blocks):
        main.alu(2)
        main.branch(isa.TakenProbability(taken_probability),
                    "skip%d" % index)
        main.alu(2)
        main.label("skip%d" % index)
    main.jump(top)
    return builder.assemble()


def peripheral_poll_kernel():
    """Back-to-back SPB reads: isolates peripheral-bus latency."""
    builder = ProgramBuilder(code_base=amap.PSPR_BASE)
    main = builder.function("main")
    top = main.label("top")
    main.load(isa.FixedAddr(amap.PERIPH_BASE + 0x100))
    main.alu(1)
    main.jump(top)
    return builder.assemble()
