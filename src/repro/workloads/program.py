"""Program builder: authoring layer for synthetic application software.

Workloads are written as functions composed of ALU bursts, loads/stores
through address generators, hardware loops, calls, and branches with
deterministic behaviour generators.  The builder assembles them into a
:class:`~repro.soc.cpu.isa.Program` with real flash/scratchpad addresses so
the I-cache, prefetch buffers, and flash ports see realistic locality.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..soc.cpu import isa
from ..soc.memory import map as amap

#: align function entries to flash-line boundaries, like a real linker
_FUNC_ALIGN = 32


class FunctionBuilder:
    """Accumulates the instruction sequence of one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instrs: List[isa.Instr] = []
        self._labels: Dict[str, int] = {}
        self._label_counter = 0

    # -- straight-line code -------------------------------------------------
    def alu(self, n: int = 1) -> "FunctionBuilder":
        """Append ``n`` integer-pipeline instructions."""
        for _ in range(n):
            self.instrs.append(isa.Instr(isa.IP))
        return self

    def mac(self, n: int = 1) -> "FunctionBuilder":
        """MAC/DSP operations — integer pipeline from a timing view."""
        return self.alu(n)

    def load(self, gen) -> "FunctionBuilder":
        self.instrs.append(isa.Instr(isa.LD, addr_gen=gen))
        return self

    def store(self, gen) -> "FunctionBuilder":
        self.instrs.append(isa.Instr(isa.ST, addr_gen=gen))
        return self

    # -- control flow -----------------------------------------------------------
    @staticmethod
    def _local(name: str) -> str:
        """Local labels are dot-prefixed so symbol tables can tell them
        apart from function entries."""
        return name if name.startswith(".") else f".{name}"

    def label(self, name: Optional[str] = None) -> str:
        """Mark the current position; returns the (possibly generated) name."""
        if name is None:
            name = f".L{self._label_counter}"
            self._label_counter += 1
        else:
            name = self._local(name)
        self._labels[name] = len(self.instrs)
        return name

    def branch(self, pattern, to: str) -> "FunctionBuilder":
        """Conditional branch to a local label."""
        self.instrs.append(isa.Instr(
            isa.BR, pattern=pattern,
            label=f"{self.name}{self._local(to)}"))
        return self

    def jump(self, to: str) -> "FunctionBuilder":
        self.instrs.append(
            isa.Instr(isa.JUMP, label=f"{self.name}{self._local(to)}"))
        return self

    def loop(self, count: int, body: Callable[["FunctionBuilder"], None]
             ) -> "FunctionBuilder":
        """Hardware loop executing ``body`` ``count`` times."""
        top = self.label()
        body(self)
        self.instrs.append(
            isa.Instr(isa.LOOP, pattern=isa.LoopCount(count),
                      label=f"{self.name}{top}"))
        return self

    def call(self, func_name: str) -> "FunctionBuilder":
        self.instrs.append(isa.Instr(isa.CALL, label=func_name))
        return self

    def ret(self) -> "FunctionBuilder":
        self.instrs.append(isa.Instr(isa.RET))
        return self

    def rfe(self) -> "FunctionBuilder":
        """Return from exception — terminates interrupt handlers."""
        self.instrs.append(isa.Instr(isa.RFE))
        return self

    def halt(self) -> "FunctionBuilder":
        """Idle until the next interrupt (test/idle-loop convenience)."""
        self.instrs.append(isa.Instr("halt"))
        return self

    def resolve_local(self, name: str) -> str:
        """Fully-qualified symbol name of a local label."""
        return f"{self.name}{self._local(name)}"


class ProgramBuilder:
    """Places functions in memory and resolves symbols."""

    def __init__(self, code_base: int = amap.PFLASH_BASE + 0x1000) -> None:
        self.code_base = code_base
        self._functions: List[FunctionBuilder] = []
        self._placements: Dict[str, int] = {}

    def function(self, name: str, base: Optional[int] = None) -> FunctionBuilder:
        """Create a function; ``base`` pins it (e.g. into PSPR)."""
        if any(f.name == name for f in self._functions):
            raise ValueError(f"function {name!r} already defined")
        fb = FunctionBuilder(name)
        self._functions.append(fb)
        if base is not None:
            self._placements[name] = base
        return fb

    def assemble(self, entry: str = "main") -> isa.Program:
        if not self._functions:
            raise ValueError("no functions defined")
        instructions: Dict[int, isa.Instr] = {}
        symbols: Dict[str, int] = {}
        cursor = self.code_base
        # first pass: place functions and their labels
        for fb in self._functions:
            base = self._placements.get(fb.name)
            if base is None:
                base = (cursor + _FUNC_ALIGN - 1) & ~(_FUNC_ALIGN - 1)
            symbols[fb.name] = base
            for label, index in fb._labels.items():
                symbols[f"{fb.name}{label}"] = base + index * isa.INSTR_BYTES
            addr = base
            for instr in fb.instrs:
                if addr in instructions:
                    raise ValueError(
                        f"function {fb.name!r} overlaps existing code at "
                        f"0x{addr:08x}")
                instr.addr = addr
                instructions[addr] = instr
                addr += isa.INSTR_BYTES
            if fb.name not in self._placements:
                cursor = addr
        # second pass: resolve symbolic targets
        for instr in instructions.values():
            if instr.label is not None:
                try:
                    instr.target = symbols[instr.label]
                except KeyError:
                    raise ValueError(
                        f"unresolved symbol {instr.label!r} referenced at "
                        f"0x{instr.addr:08x}") from None
        if entry not in symbols:
            raise ValueError(f"entry function {entry!r} not defined")
        return isa.Program(instructions, symbols[entry], symbols)
