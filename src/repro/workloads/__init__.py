"""Synthetic automotive application software (substitute for proprietary
customer code, per the reproduction rules in DESIGN.md)."""

from .body import BodyGatewayScenario
from .engine import EngineControlScenario
from .generator import Customer, CustomerGenerator
from .program import FunctionBuilder, ProgramBuilder
from . import micro
from .rtos import RtosScenario, TaskSpec
from .transmission import TransmissionScenario

__all__ = ["BodyGatewayScenario", "EngineControlScenario", "Customer",
           "CustomerGenerator", "FunctionBuilder", "ProgramBuilder", "micro",
           "RtosScenario", "TaskSpec", "TransmissionScenario"]
