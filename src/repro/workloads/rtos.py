"""OSEK-style task system: rate-monotonic dispatch on an OS tick.

Production ECU software runs under an OSEK/AUTOSAR OS: a hardware timer
drives the system tick, an alarm table activates periodic tasks, and a
priority scheduler dispatches them.  This module builds that structure out
of the program-builder primitives:

* the **OS tick ISR** walks the alarm table (deterministic
  :class:`~repro.soc.cpu.isa.TakenPeriodic` dividers per task) and calls
  due tasks in priority order — a faithful timing model of a cooperative
  rate-monotonic dispatcher;
* **tasks** are ordinary functions with their own code/data footprint;
* preemption by true interrupts (crank, CAN, ...) composes naturally,
  since the tick ISR itself runs at an interrupt priority.

The scenario gives the customer population a fourth software architecture
("same application problem, completely different algorithms/structure",
paper Section 4): tick-driven instead of event-driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ed.device import EdConfig, EmulationDevice
from ..soc.config import SoCConfig
from ..soc.cpu import isa
from ..soc.memory import map as amap
from ..soc.peripherals.basic import CanNode, PeriodicTimer
from .program import FunctionBuilder, ProgramBuilder


@dataclass
class TaskSpec:
    """One periodic task: name, activation divider, body generator."""

    name: str
    #: task runs every ``divider`` OS ticks (rate-monotonic: smaller =
    #: higher rate = dispatched first)
    divider: int
    body: Callable[[FunctionBuilder], None]


def _default_task_bodies() -> List[TaskSpec]:
    """A representative 1/5/20/100 ms task set (at a 1 ms tick)."""

    def control_1ms(f: FunctionBuilder) -> None:
        f.alu(12)
        f.load(isa.TableAddr(amap.PFLASH_BASE + 0x12_0000, 4, 1024,
                             locality=0.9))
        f.alu(10)
        f.store(isa.FixedAddr(amap.DSPR_BASE + 0x40))

    def control_5ms(f: FunctionBuilder) -> None:
        f.alu(20)
        f.loop(8, lambda g: g
               .load(isa.StrideAddr(amap.DSPR_BASE + 0x200, 4, 32))
               .mac(2))
        f.store(isa.FixedAddr(amap.PERIPH_BASE + 0x180))

    def management_20ms(f: FunctionBuilder) -> None:
        f.alu(40)
        f.load(isa.TableAddr(amap.PFLASH_BASE + 0x13_0000, 4, 512,
                             locality=0.7))
        f.alu(30)
        f.store(isa.StrideAddr(amap.LMU_BASE + 0x4000, 4, 64))

    def diagnosis_100ms(f: FunctionBuilder) -> None:
        f.alu(80)
        f.load(isa.StrideAddr(amap.LMU_BASE + 0x6000, 4, 128))
        f.alu(60)
        f.store(isa.StrideAddr(amap.DFLASH_BASE + 0x400, 4, 128))

    return [
        TaskSpec("task_1ms", 1, control_1ms),
        TaskSpec("task_5ms", 5, control_5ms),
        TaskSpec("task_20ms", 20, management_20ms),
        TaskSpec("task_100ms", 100, diagnosis_100ms),
    ]


DEFAULT_PARAMS: Dict = {
    "tick_us": 250,             # OS tick period (simulation horizons are
                                # short; production systems use 1000 µs)
    "can_msgs_per_s": 1500,
    "idle_blocks": 6,           # background/idle-hook footprint
    "isr_in_pspr": False,
    "tables_in_dspr": False,    # accepted for option compatibility (no-op)
    "idle_halt": False,         # idle hook executes wait-for-interrupt
}


def build_rtos_program(params: Dict,
                       tasks: Optional[List[TaskSpec]] = None):
    tasks = tasks if tasks is not None else _default_task_bodies()
    builder = ProgramBuilder()
    isr_base = amap.PSPR_BASE if params["isr_in_pspr"] else None

    # idle loop: the OS idle hook (low-power wait + housekeeping)
    main = builder.function("main")
    top = main.label("top")
    if params.get("idle_halt"):
        # wait-for-interrupt idle: the core halts until the next service
        # request, re-halting after each RFE (pc parks on the halt)
        main.halt()
    else:
        for block in range(params["idle_blocks"]):
            main.alu(10)
            main.load(isa.StrideAddr(amap.LMU_BASE + 0x1000 + block * 0x80,
                                     4, 16))
            main.alu(6)
    main.jump(top)

    # one function per task
    for task in tasks:
        fb = builder.function(task.name)
        task.body(fb)
        fb.ret()

    # OS tick ISR: alarm table walk + rate-monotonic dispatch
    tick = builder.function("os_tick", base=isr_base)
    tick.alu(6)                      # counter increment, alarm compare
    for task in sorted(tasks, key=lambda t: t.divider):
        if task.divider == 1:
            tick.call(task.name)
        else:
            skip = f"skip_{task.name}"
            # activation: due every `divider` ticks
            tick.branch(isa.TakenPeriodic(task.divider,
                                          phase=task.divider - 1),
                        f"run_{task.name}")
            tick.jump(skip)
            tick.label(f"run_{task.name}")
            tick.call(task.name)
            tick.label(skip)
    tick.alu(4)                      # schedule bookkeeping
    tick.rfe()

    # CAN receive ISR (communication stack entry)
    can = builder.function("can_isr")
    can.load(isa.FixedAddr(amap.PERIPH_BASE + 0x300))
    can.alu(10)
    can.store(isa.FixedAddr(amap.LMU_BASE + 0x5000))
    can.rfe()

    return builder.assemble()


class RtosScenario:
    """Tick-driven OSEK-style application scenario."""

    name = "rtos_powertrain"
    default_params = DEFAULT_PARAMS

    def __init__(self, tasks: Optional[List[TaskSpec]] = None) -> None:
        self.tasks = tasks

    def build(self, config: SoCConfig, params: Dict,
              seed: int = 2008) -> EmulationDevice:
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        params = merged
        device = EmulationDevice(EdConfig(soc=config), seed)
        soc = device.soc
        device.load_program(build_rtos_program(params, self.tasks))

        tick_srn = soc.icu.add_srn("os_tick", 6)
        can_srn = soc.icu.add_srn("can", 4)
        device.cpu.set_vector(tick_srn.id, "os_tick")
        device.cpu.set_vector(can_srn.id, "can_isr")

        freq = config.cpu.frequency_mhz
        soc.add_peripheral(PeriodicTimer(
            "os_timer", soc.hub, soc.icu, tick_srn.id,
            period=max(1000, freq * params["tick_us"])))
        soc.add_peripheral(CanNode(
            "can0", soc.hub, soc.icu, can_srn.id,
            mean_period=max(1000, int(freq * 1e6 / params["can_msgs_per_s"])),
            rng=soc.sim.rng("can0")))
        return device
