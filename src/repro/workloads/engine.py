"""Synthetic engine-control application (powertrain workload).

Stands in for the proprietary customer software the paper profiles.  The
structure follows the canonical engine-management pattern the paper's
domain implies:

* a **crank-angle ISR** (highest priority, period set by RPM and tooth
  count) computing injection/ignition from calibration maps in flash;
* an **ADC ISR** running a knock-sensor FIR filter over a scratchpad delay
  line — optionally offloaded to the PCP (the HW/SW split customers vary);
* a **CAN ISR** parsing network traffic — optionally offloaded to DMA;
* an **EEPROM-emulation task** writing adaptation values to data flash;
* a **background loop** of diagnostics and OBD processing large enough to
  exceed the I-cache (real engine software is megabytes).

Mapping knobs (the software-optimization levers of paper Section 5):
``tables_in_dspr`` moves the hot calibration maps into the data scratchpad;
``isr_in_pspr`` moves the time-critical handlers into the program
scratchpad.  ``anomaly`` injects a sporadic flash-hostile burst task used
by the trigger/multi-resolution experiments.
"""

from __future__ import annotations

from typing import Dict

from ..ed.device import EdConfig, EmulationDevice
from ..soc.config import SoCConfig
from ..soc.cpu import isa
from ..soc.dma.controller import DmaChannelConfig
from ..soc.interrupts.icu import srn_taken_signal
from ..soc.kernel.simulator import FOREVER, Component
from ..soc.memory import map as amap
from ..soc.peripherals.basic import Adc, CanNode, PeriodicTimer
from ..soc.peripherals.timer_cells import TimerCellArray
from .program import ProgramBuilder

#: peripheral register addresses (within the SPB space)
INJECTOR_REG = amap.PERIPH_BASE + 0x0100
IGNITION_REG = amap.PERIPH_BASE + 0x0104
ADC_RESULT_REG = amap.PERIPH_BASE + 0x0200
CAN_RX_REG = amap.PERIPH_BASE + 0x0300
CAN_RX_BUFFER = amap.PERIPH_BASE + 0x0310

DEFAULT_PARAMS: Dict = {
    "rpm": 4500,
    "teeth": 60,
    "adc_khz": 25,
    "can_msgs_per_s": 2000,
    "knock_taps": 16,
    "use_pcp": True,
    "use_dma": True,
    "tables_in_dspr": False,
    "isr_in_pspr": False,
    "anomaly": False,
    "anomaly_period": 60_000,
    "anomaly_len": 300,          # flash-hostile loads per anomaly burst
    "background_blocks": 64,     # background code footprint, ~blocks*75 instr
    "table_locality": 0.9,
    "use_timer_cells": True,     # injector edges scheduled on timer cells
}


class InjectionScheduler(Component):
    """Hardware effect of the crank ISR: programming injector compares.

    The crank ISR's *CPU cost* is modelled in the program (map lookups,
    interpolation, the store to ``INJECTOR_REG``); this glue applies its
    *hardware effect* — arming a timer-cell one-shot for the injection
    edge a data-dependent delay after the crank event.  Matches and late
    programmings are then observable real-time health metrics.
    """

    name = "injection_scheduler"

    def __init__(self, hub, cells: TimerCellArray, channel: int,
                 crank_period: int, rng) -> None:
        self.hub = hub
        self.cells = cells
        self.channel = channel
        self.crank_period = crank_period
        self.rng = rng
        self._pending = False
        hub.subscribe(srn_taken_signal("crank"), self._on_crank_service)

    def _on_crank_service(self, count: int) -> None:
        self._pending = True
        self.wake()

    def idle_until(self, cycle: int):
        # event-driven: the crank-service subscription wakes the scheduler
        return None if self._pending else FOREVER

    def tick(self, cycle: int) -> None:
        if not self._pending:
            return
        self._pending = False
        # injection angle -> delay within the next crank period
        delay = int(self.crank_period * self.rng.uniform(0.2, 0.8))
        self.cells.set_compare(self.channel, cycle + delay)

    def reset(self) -> None:
        self._pending = False


def _crank_period(config: SoCConfig, params: Dict) -> int:
    """Crank-tooth interrupt period in CPU cycles."""
    per_second = params["rpm"] / 60.0 * params["teeth"]
    return max(200, int(config.cpu.frequency_mhz * 1e6 / per_second))


def _table_bases(params: Dict):
    """Placement of the two hot calibration maps and the big scan region."""
    if params["tables_in_dspr"]:
        fuel = amap.DSPR_BASE + 0x4000
        ignition = amap.DSPR_BASE + 0x8000
    else:
        # fuel map in the upper flash bank, ignition map near the code in
        # the lower bank — the latter provokes code/data port conflicts
        fuel = amap.PFLASH_BASE + 0x20_0000
        ignition = amap.PFLASH_BASE + 0x8_0000
    scan = amap.PFLASH_BASE + 0x30_0000
    return fuel, ignition, scan


def build_engine_program(params: Dict):
    """Assemble the application; returns the Program."""
    builder = ProgramBuilder()
    fuel_base, ign_base, scan_base = _table_bases(params)
    locality = params["table_locality"]
    isr_base = amap.PSPR_BASE if params["isr_in_pspr"] else None

    # -- background: diagnostics chain, footprint > I-cache -----------------
    main = builder.function("main")
    top = main.label("top")
    main.call("diagnostics")
    main.call("filter_kernel")
    main.call("obd_task")
    main.call("adaptation")
    main.jump(top)

    diag = builder.function("diagnostics")
    for block in range(params["background_blocks"]):
        block_top = diag.label()
        diag.alu(16)
        diag.load(isa.StrideAddr(amap.LMU_BASE + 0x1000 + block * 0x100, 4, 32))
        diag.alu(10)
        diag.load(isa.TableAddr(amap.PFLASH_BASE + 0x10_0000 + block * 0x2000,
                                4, 512, locality=0.7))
        diag.alu(8)
        diag.load(isa.TableAddr(amap.PFLASH_BASE + 0x18_0000 + block * 0x1000,
                                4, 256, locality=0.8))
        diag.alu(12)
        diag.store(isa.StrideAddr(amap.DSPR_BASE + 0x400 + block * 0x40, 4, 16))
        # occasional block re-execution: data-dependent control flow
        diag.branch(isa.TakenProbability(0.1), block_top)
    diag.ret()

    obd = builder.function("obd_task")
    for block in range(max(2, params["background_blocks"] // 2)):
        obd.alu(22)
        obd.load(isa.StrideAddr(amap.LMU_BASE + 0x8000 + block * 0x200, 4, 64))
        obd.alu(14)
        obd.load(isa.TableAddr(amap.PFLASH_BASE + 0x1C_0000 + block * 0x800,
                               4, 128, locality=0.75))
        obd.alu(8)
        obd.store(isa.FixedAddr(amap.LMU_BASE + 0x9000 + block * 4))
    obd.ret()

    adapt = builder.function("adaptation")
    adapt.alu(40)
    adapt.load(isa.TableAddr(amap.DSPR_BASE + 0x2000, 4, 256, locality=0.95))
    adapt.alu(30)
    adapt.store(isa.StrideAddr(amap.DSPR_BASE + 0x3000, 4, 64))
    adapt.ret()

    # signal conditioning: a scratchpad FIR kernel whose LD+MAC+MAC+LOOP
    # pattern saturates the dual pipelines (IPC ~2 bursts — the dynamics
    # the fine-resolution IPC measurement exists to expose)
    filt = builder.function("filter_kernel")
    filt.loop(24, lambda f: f
              .load(isa.StrideAddr(amap.DSPR_BASE + 0x1000, 4, 64))
              .mac(2))
    filt.store(isa.FixedAddr(amap.DSPR_BASE + 0x1100))
    filt.ret()

    # -- crank-angle ISR: the hard real-time hot path -----------------------
    crank = builder.function("crank_isr", base=isr_base)
    crank.alu(8)    # angle bookkeeping
    crank.load(isa.TableAddr(fuel_base, 4, 4096, locality=locality))
    crank.alu(10)   # bilinear interpolation
    crank.load(isa.TableAddr(fuel_base + 0x4000, 4, 4096, locality=locality))
    crank.alu(10)
    crank.load(isa.TableAddr(ign_base, 4, 4096, locality=locality))
    crank.alu(12)   # ignition angle computation
    crank.store(isa.FixedAddr(INJECTOR_REG))
    crank.store(isa.FixedAddr(IGNITION_REG))
    crank.alu(6)
    crank.store(isa.StrideAddr(amap.LMU_BASE + 0xA000, 8, 128))  # log ring
    crank.rfe()

    # -- knock filter (ADC ISR) — only on TriCore when not offloaded to PCP --
    knock_base = (amap.PSPR_BASE + 0x800) if params["isr_in_pspr"] else None
    knock = builder.function("adc_isr", base=knock_base)
    knock.load(isa.FixedAddr(ADC_RESULT_REG))
    knock.store(isa.StrideAddr(amap.DSPR_BASE + 0x100, 4,
                               params["knock_taps"]))
    knock.loop(params["knock_taps"], lambda f: f
               .load(isa.StrideAddr(amap.DSPR_BASE + 0x100, 4,
                                    params["knock_taps"]))
               .mac(2))
    knock.alu(6)
    knock.store(isa.FixedAddr(amap.DSPR_BASE + 0x80))
    knock.rfe()

    # -- CAN receive ISR ------------------------------------------------------
    can = builder.function("can_isr")
    can.load(isa.FixedAddr(CAN_RX_REG))
    can.alu(8)   # ID match, DLC decode
    if not params["use_dma"]:
        can.loop(8, lambda f: f
                 .load(isa.StrideAddr(CAN_RX_BUFFER, 4, 8))
                 .store(isa.StrideAddr(amap.LMU_BASE + 0xC000, 4, 256)))
    can.alu(12)  # signal unpacking
    can.store(isa.FixedAddr(amap.DSPR_BASE + 0x180))
    can.rfe()

    # -- DMA-completion processing (when CAN payload is DMA-copied) ----------
    dmadone = builder.function("dma_done_isr")
    dmadone.load(isa.StrideAddr(amap.LMU_BASE + 0xC000, 4, 256))
    dmadone.alu(14)
    dmadone.store(isa.FixedAddr(amap.DSPR_BASE + 0x184))
    dmadone.rfe()

    # -- EEPROM-emulation adaptation writes ----------------------------------
    eeprom = builder.function("eeprom_task")
    eeprom.alu(10)
    eeprom.load(isa.StrideAddr(amap.DSPR_BASE + 0x3000, 4, 64))
    eeprom.store(isa.StrideAddr(amap.DFLASH_BASE + 0x100, 4, 512))
    eeprom.alu(4)
    eeprom.rfe()

    # -- sporadic anomaly: flash-hostile scan (for trigger experiments) -------
    anomaly = builder.function("anomaly_isr")
    anomaly.loop(params["anomaly_len"], lambda f: f
                 .load(isa.TableAddr(scan_base, 4, 65536, locality=0.0))
                 .alu(1))
    anomaly.rfe()

    return builder.assemble()


def build_pcp_knock_program(params: Dict):
    """The knock filter as a PCP channel program (HW/SW split variant)."""
    builder = ProgramBuilder(code_base=amap.PFLASH_BASE + 0xF0_0000)
    prog = builder.function("pcp_adc")
    prog.load(isa.FixedAddr(ADC_RESULT_REG))
    prog.loop(params["knock_taps"], lambda f: f
              .load(isa.StrideAddr(amap.LMU_BASE + 0xE000, 4,
                                   params["knock_taps"]))
              .mac(2))
    prog.alu(4)
    prog.store(isa.FixedAddr(amap.LMU_BASE + 0xE080))
    prog.ret()
    return builder.assemble(entry="pcp_adc")


class EngineControlScenario:
    """Scenario wrapper: builds a ready-to-run ED for given config/params."""

    name = "engine_control"
    default_params = DEFAULT_PARAMS

    def __init__(self, ed_config_overrides: Dict = None) -> None:
        self.ed_config_overrides = ed_config_overrides or {}

    def hot_table_ranges(self, params: Dict):
        """Link-map knowledge: where the hot calibration maps live.

        Used by the ``tables_dspr`` analytic prediction; empty when the
        tables are already in the scratchpad.
        """
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        if merged["tables_in_dspr"]:
            return ()
        fuel, ignition, _ = _table_bases(merged)
        return ((fuel, fuel + 0x8000), (ignition, ignition + 0x4000))

    def build(self, config: SoCConfig, params: Dict,
              seed: int = 2008) -> EmulationDevice:
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        params = merged
        ed_config = EdConfig(soc=config, **self.ed_config_overrides)
        device = EmulationDevice(ed_config, seed)
        soc = device.soc

        program = build_engine_program(params)
        device.load_program(program)

        # service request nodes (priorities: crank > adc > can > eeprom)
        crank_srn = soc.icu.add_srn("crank", 10)
        adc_core = "pcp" if params["use_pcp"] else "tc"
        adc_srn = soc.icu.add_srn("adc", 8, core=adc_core)
        if params["use_dma"]:
            can_srn = soc.icu.add_srn("can", 5, core="dma", dma_channel=0)
            dma_done_srn = soc.icu.add_srn("dma_done", 4)
            soc.dma.configure_channel(0, DmaChannelConfig(
                src=CAN_RX_BUFFER, dst=amap.LMU_BASE + 0xC000, moves=8,
                completion_srn=dma_done_srn.id))
        else:
            can_srn = soc.icu.add_srn("can", 5)
        eeprom_srn = soc.icu.add_srn("eeprom", 2)

        # vectors
        device.cpu.set_vector(crank_srn.id, "crank_isr")
        if not params["use_pcp"]:
            device.cpu.set_vector(adc_srn.id, "adc_isr")
        else:
            device.pcp.bind_channel(adc_srn.id,
                                    build_pcp_knock_program(params))
        if params["use_dma"]:
            device.cpu.set_vector(dma_done_srn.id, "dma_done_isr")
        else:
            device.cpu.set_vector(can_srn.id, "can_isr")
        device.cpu.set_vector(eeprom_srn.id, "eeprom_task")

        # peripherals
        freq = config.cpu.frequency_mhz
        crank_period = _crank_period(config, params)
        soc.add_peripheral(PeriodicTimer(
            "crank_timer", soc.hub, soc.icu, crank_srn.id, crank_period))
        if params["use_timer_cells"]:
            cells = TimerCellArray("gpta", soc.hub, soc.icu)
            soc.add_peripheral(cells)
            soc.add_peripheral(InjectionScheduler(
                soc.hub, cells, channel=0, crank_period=crank_period,
                rng=soc.sim.rng("injection")))
        adc_period = max(500, int(freq * 1000 / params["adc_khz"]))
        soc.add_peripheral(Adc("adc0", soc.hub, soc.icu, adc_srn.id,
                               scan_period=adc_period,
                               conversion_cycles=max(50, adc_period // 10)))
        can_period = max(1000, int(freq * 1e6 / params["can_msgs_per_s"]))
        soc.add_peripheral(CanNode("can0", soc.hub, soc.icu, can_srn.id,
                                   mean_period=can_period,
                                   rng=soc.sim.rng("can0")))
        soc.add_peripheral(PeriodicTimer(
            "eeprom_timer", soc.hub, soc.icu, eeprom_srn.id,
            period=freq * 2000, phase=freq * 997))
        if params["anomaly"]:
            anomaly_srn = soc.icu.add_srn("anomaly", 12)
            device.cpu.set_vector(anomaly_srn.id, "anomaly_isr")
            soc.add_peripheral(PeriodicTimer(
                "anomaly_timer", soc.hub, soc.icu, anomaly_srn.id,
                period=params["anomaly_period"],
                phase=params["anomaly_period"] // 3))
        return device
