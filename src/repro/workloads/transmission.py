"""Synthetic transmission-control application.

A second powertrain domain with a different resource mix than engine
control (paper Section 1: the peripheral set "is adapted to an area like
power train (engine control, transmission control, etc.)"):

* a **shift-decision state machine** in the background — branch-heavy,
  table-light;
* a **hydraulic-pressure ISR** at a fixed control rate, interpolating
  pressure maps and writing solenoid PWM registers;
* **speed-sensor ISRs** (input/output shaft) with period set by shaft speed;
* frequent **adaptation writes** to data flash (clutch-fill parameters);
* heavy **PCP offload** for solenoid current control.
"""

from __future__ import annotations

from typing import Dict

from ..ed.device import EdConfig, EmulationDevice
from ..soc.config import SoCConfig
from ..soc.cpu import isa
from ..soc.memory import map as amap
from ..soc.peripherals.basic import Adc, PeriodicTimer
from .program import ProgramBuilder

SOLENOID_REG = amap.PERIPH_BASE + 0x0400
CURRENT_SENSE_REG = amap.PERIPH_BASE + 0x0404

DEFAULT_PARAMS: Dict = {
    "control_khz": 1,           # hydraulic control loop rate
    "shaft_hz": 900,            # speed-sensor edge rate
    "use_pcp": True,
    "tables_in_dspr": False,
    "isr_in_pspr": False,
    "background_blocks": 40,
    "table_locality": 0.85,
    "anomaly": False,
    "anomaly_period": 80_000,
}


def _table_bases(params: Dict):
    if params["tables_in_dspr"]:
        return amap.DSPR_BASE + 0x4000, amap.DSPR_BASE + 0x6000
    return amap.PFLASH_BASE + 0x10_0000, amap.PFLASH_BASE + 0x22_0000


def build_transmission_program(params: Dict):
    builder = ProgramBuilder()
    pressure_base, ratio_base = _table_bases(params)
    isr_base = amap.PSPR_BASE if params["isr_in_pspr"] else None

    main = builder.function("main")
    top = main.label("top")
    main.call("shift_logic")
    main.call("plausibility")
    main.jump(top)

    # branch-heavy decision tree with modest data traffic
    shift = builder.function("shift_logic")
    for block in range(params["background_blocks"]):
        block_top = shift.label()
        shift.alu(10)
        shift.load(isa.FixedAddr(amap.DSPR_BASE + 0x40 + (block % 16) * 4))
        shift.alu(6)
        shift.branch(isa.TakenProbability(0.35), block_top)
        shift.alu(8)
        shift.load(isa.TableAddr(ratio_base + (block % 8) * 0x400, 4, 256,
                                 locality=params["table_locality"]))
        shift.alu(6)
        shift.store(isa.StrideAddr(amap.LMU_BASE + 0x2000 + block * 0x20, 4, 8))
    shift.ret()

    plaus = builder.function("plausibility")
    for block in range(max(2, params["background_blocks"] // 3)):
        plaus.alu(14)
        plaus.load(isa.StrideAddr(amap.LMU_BASE + 0x6000 + block * 0x100, 4, 32))
        plaus.alu(10)
        plaus.branch(isa.TakenPeriodic(7), "skip%d" % block)
        plaus.alu(4)
        plaus.label("skip%d" % block)
        plaus.alu(2)
    plaus.ret()

    pressure = builder.function("pressure_isr", base=isr_base)
    pressure.alu(6)
    pressure.load(isa.TableAddr(pressure_base, 4, 2048,
                                locality=params["table_locality"]))
    pressure.alu(8)
    pressure.load(isa.TableAddr(pressure_base + 0x2000, 4, 2048,
                                locality=params["table_locality"]))
    pressure.alu(12)
    pressure.store(isa.FixedAddr(SOLENOID_REG))
    pressure.store(isa.StrideAddr(amap.DSPR_BASE + 0x800, 4, 32))
    pressure.rfe()

    speed = builder.function("speed_isr")
    speed.alu(5)
    speed.load(isa.FixedAddr(amap.PERIPH_BASE + 0x0500))
    speed.alu(7)
    speed.store(isa.FixedAddr(amap.DSPR_BASE + 0x20))
    speed.rfe()

    adapt = builder.function("adapt_task")
    adapt.alu(8)
    adapt.load(isa.StrideAddr(amap.DSPR_BASE + 0x900, 4, 32))
    adapt.store(isa.StrideAddr(amap.DFLASH_BASE + 0x800, 4, 256))
    adapt.store(isa.StrideAddr(amap.DFLASH_BASE + 0xC00, 4, 256))
    adapt.rfe()

    anomaly = builder.function("anomaly_isr")
    anomaly.loop(48, lambda f: f
                 .load(isa.TableAddr(amap.PFLASH_BASE + 0x30_0000, 4, 65536,
                                     locality=0.0))
                 .alu(1))
    anomaly.rfe()

    return builder.assemble()


def build_pcp_solenoid_program():
    """Closed-loop solenoid current control on the PCP."""
    builder = ProgramBuilder(code_base=amap.PFLASH_BASE + 0xF1_0000)
    prog = builder.function("pcp_solenoid")
    prog.load(isa.FixedAddr(CURRENT_SENSE_REG))
    prog.mac(6)
    prog.store(isa.FixedAddr(SOLENOID_REG))
    prog.store(isa.FixedAddr(amap.LMU_BASE + 0xE100))
    prog.ret()
    return builder.assemble(entry="pcp_solenoid")


class TransmissionScenario:
    name = "transmission_control"
    default_params = DEFAULT_PARAMS

    def hot_table_ranges(self, params: Dict):
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        if merged["tables_in_dspr"]:
            return ()
        pressure, ratio = _table_bases(merged)
        return ((pressure, pressure + 0x4000), (ratio, ratio + 0x2000))

    def build(self, config: SoCConfig, params: Dict,
              seed: int = 2008) -> EmulationDevice:
        merged = dict(DEFAULT_PARAMS)
        merged.update(params)
        params = merged
        device = EmulationDevice(EdConfig(soc=config), seed)
        soc = device.soc
        device.load_program(build_transmission_program(params))

        pressure_srn = soc.icu.add_srn("pressure", 10)
        speed_srn = soc.icu.add_srn("speed", 7)
        sol_core = "pcp" if params["use_pcp"] else "tc"
        sol_srn = soc.icu.add_srn("solenoid", 8, core=sol_core)
        adapt_srn = soc.icu.add_srn("adapt", 2)

        device.cpu.set_vector(pressure_srn.id, "pressure_isr")
        device.cpu.set_vector(speed_srn.id, "speed_isr")
        device.cpu.set_vector(adapt_srn.id, "adapt_task")
        if params["use_pcp"]:
            device.pcp.bind_channel(sol_srn.id, build_pcp_solenoid_program())
        else:
            device.cpu.set_vector(sol_srn.id, "speed_isr")

        freq = config.cpu.frequency_mhz
        soc.add_peripheral(PeriodicTimer(
            "control_timer", soc.hub, soc.icu, pressure_srn.id,
            period=max(1000, int(freq * 1000 / params["control_khz"]))))
        soc.add_peripheral(PeriodicTimer(
            "shaft_sensor", soc.hub, soc.icu, speed_srn.id,
            period=max(500, int(freq * 1e6 / params["shaft_hz"])),
            phase=1234))
        soc.add_peripheral(Adc(
            "current_sense", soc.hub, soc.icu, sol_srn.id,
            scan_period=max(800, int(freq * 1000 / 10)),
            conversion_cycles=300))
        soc.add_peripheral(PeriodicTimer(
            "adapt_timer", soc.hub, soc.icu, adapt_srn.id,
            period=freq * 1500, phase=freq * 613))
        if params["anomaly"]:
            anomaly_srn = soc.icu.add_srn("anomaly", 12)
            device.cpu.set_vector(anomaly_srn.id, "anomaly_isr")
            soc.add_peripheral(PeriodicTimer(
                "anomaly_timer", soc.hub, soc.icu, anomaly_srn.id,
                period=params["anomaly_period"],
                phase=params["anomaly_period"] // 3))
        return device
