"""Customer-profile generator.

Paper Section 4: "different customers are using the same microcontroller in
different ways to solve the same application problem.  This is done by a
different HW/SW split, by sometimes completely different algorithms and by
using on chip resources (CPU, PCP, DMA, timer cells, etc.) in a different
way."

The generator produces a deterministic population of synthetic customers:
each is one of the three application domains with its own parameterisation
(HW/SW split flags, event rates, table localities, code size).  Experiment
E9 profiles all of them and checks that the architect's option ranking is
derived from the *population*, not one customer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from .body import BodyGatewayScenario
from .engine import EngineControlScenario
from .rtos import RtosScenario
from .transmission import TransmissionScenario


@dataclass
class Customer:
    """One synthetic customer: a scenario plus their unique parameter set."""

    name: str
    domain: str
    scenario: object
    params: Dict

    def build(self, config, seed: int = 2008):
        return self.scenario.build(config, self.params, seed)


def _engine_params(rng: random.Random) -> Dict:
    return {
        "rpm": rng.choice([2500, 3500, 4500, 5500, 6500]),
        "teeth": rng.choice([36, 60]),
        "adc_khz": rng.choice([10, 25, 50]),
        "can_msgs_per_s": rng.choice([1000, 2000, 4000]),
        "knock_taps": rng.choice([8, 16, 32, 64]),
        "use_pcp": rng.random() < 0.7,
        "use_dma": rng.random() < 0.7,
        "background_blocks": rng.choice([40, 56, 64, 80]),
        "table_locality": rng.choice([0.75, 0.85, 0.9, 0.95]),
    }


def _transmission_params(rng: random.Random) -> Dict:
    return {
        "control_khz": rng.choice([1, 2, 4]),
        "shaft_hz": rng.choice([400, 900, 1800]),
        "use_pcp": rng.random() < 0.6,
        "background_blocks": rng.choice([24, 40, 56]),
        "table_locality": rng.choice([0.7, 0.85, 0.92]),
    }


def _body_params(rng: random.Random) -> Dict:
    return {
        "can_buses": rng.choice([2, 3, 4]),
        "msgs_per_s": rng.choice([2000, 4000, 8000]),
        "routing_table_entries": rng.choice([512, 1024, 4096]),
        "use_dma": rng.random() < 0.8,
        "background_blocks": rng.choice([12, 16, 24]),
        "table_locality": rng.choice([0.4, 0.6, 0.8]),
    }


def _rtos_params(rng: random.Random) -> Dict:
    return {
        "tick_us": rng.choice([100, 250, 500]),
        "can_msgs_per_s": rng.choice([500, 1500, 3000]),
        "idle_blocks": rng.choice([4, 6, 10]),
    }


_DOMAINS = (
    ("engine", EngineControlScenario, _engine_params),
    ("transmission", TransmissionScenario, _transmission_params),
    ("body", BodyGatewayScenario, _body_params),
    ("rtos", RtosScenario, _rtos_params),
)


class CustomerGenerator:
    """Deterministic population of synthetic customers."""

    def __init__(self, seed: int = 42,
                 domain_mix=(0.45, 0.25, 0.15, 0.15)) -> None:
        """``domain_mix`` weights engine/transmission/body/rtos customers —
        powertrain-heavy by default, matching an automotive supplier base."""
        if len(domain_mix) != len(_DOMAINS):
            raise ValueError(
                f"domain_mix needs {len(_DOMAINS)} weights")
        self.seed = seed
        self.domain_mix = domain_mix

    def generate(self, count: int) -> List[Customer]:
        rng = random.Random(self.seed)
        customers: List[Customer] = []
        for index in range(count):
            domain, scenario_cls, param_fn = rng.choices(
                _DOMAINS, weights=self.domain_mix)[0]
            params = param_fn(rng)
            customers.append(Customer(
                name=f"customer{index:02d}_{domain}",
                domain=domain,
                scenario=scenario_cls(),
                params=params,
            ))
        return customers
