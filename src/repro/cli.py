"""Command-line interface: the tool-vendor front-end in miniature.

Subcommands map to the workflows of the paper::

    repro topology   — device block inventory and tool access paths
    repro profile    — Enhanced System Profiling run + dip diagnosis
    repro trace      — program-trace capture statistics and decode summary
    repro explore    — CPI stack, option prediction, gain/cost ranking
    repro customers  — profile matrix over a generated customer population
    repro campaign   — parallel fleet campaign over the population
    repro profile-kernel — simulation-kernel throughput (naive vs quiescent)
    repro checkpoint — snapshot / inspect / resume a simulation run
    repro serve      — always-on campaign service (HTTP + SSE)
    repro node       — one cluster worker node over a shared directory
    repro cluster    — multi-node campaign: submit / run / status / stop
    repro catalog    — build the campaign-capability catalog artifact
"""

from __future__ import annotations

import argparse
import sys

from .soc.config import tc1767_config, tc1797_config


def _scenario(name: str):
    from .workloads import (BodyGatewayScenario, EngineControlScenario,
                            RtosScenario, TransmissionScenario)
    scenarios = {
        "engine": EngineControlScenario,
        "transmission": TransmissionScenario,
        "body": BodyGatewayScenario,
        "rtos": RtosScenario,
    }
    try:
        return scenarios[name]()
    except KeyError:
        raise SystemExit(f"unknown scenario {name!r}; "
                         f"choose from {sorted(scenarios)}")


def _config(name: str):
    configs = {"tc1797": tc1797_config, "tc1767": tc1767_config}
    try:
        return configs[name]()
    except KeyError:
        raise SystemExit(f"unknown device {name!r}; "
                         f"choose from {sorted(configs)}")


def _add_telemetry_flags(p) -> None:
    p.add_argument("--trace-out", metavar="TRACE.json",
                   help="write a Chrome/Perfetto trace-event timeline")
    p.add_argument("--metrics-out", metavar="METRICS.prom",
                   help="write Prometheus text-format metrics")
    p.add_argument("--trace-store", metavar="SEGMENT.rtrace",
                   help="stream every span into a columnar trace-store "
                        "segment (+ .summary.json sidecar; see "
                        "`repro traces` and docs/traces.md)")


def _telemetry_wanted(args) -> bool:
    return bool(getattr(args, "trace_out", None)
                or getattr(args, "metrics_out", None)
                or getattr(args, "trace_store", None))


def _maybe_recording(tel, args):
    """``traces.recording`` when ``--trace-store`` was given, else a no-op."""
    from contextlib import nullcontext
    path = getattr(args, "trace_store", None)
    if not path:
        return nullcontext()
    from . import traces
    return traces.recording(tel, path)


def _write_telemetry(tel, args, events_out=None) -> None:
    written = tel.write_outputs(getattr(args, "trace_out", None),
                                getattr(args, "metrics_out", None),
                                events_out)
    for kind, path in sorted(written.items()):
        print(f"telemetry {kind}: {path}")


# --- subcommands ------------------------------------------------------------
def cmd_topology(args) -> int:
    from .ed.device import EdConfig, EmulationDevice
    device = EmulationDevice(EdConfig(soc=_config(args.device)))
    print(f"{args.device}ED block inventory:")
    for block in device.block_inventory():
        print(f"  {block}")
    print("tool access paths:")
    for path in device.access_paths():
        print("  " + " -> ".join(path))
    return 0


def cmd_profile(args) -> int:
    from .core.profiling import ProfilingSession, analysis, spec
    scenario = _scenario(args.scenario)
    params = {"anomaly": True} if args.anomaly else {}
    device = scenario.build(_config(args.device), params, seed=args.seed)
    session = ProfilingSession(
        device, spec.engine_parameter_set(ipc_resolution=args.resolution))
    result = session.run(args.cycles)
    print(result.summary_table())
    threshold = result["tc.ipc"].mean_rate() * 0.8
    diagnoses = analysis.diagnose(result, ipc_threshold=threshold)
    if diagnoses:
        print(f"\npoor-IPC windows (IPC < {threshold:.2f}):")
        for diag in diagnoses:
            top = ", ".join(name for name, _ in diag.causes[:2])
            print(f"  {diag.window.start}..{diag.window.end} "
                  f"IPC {diag.ipc_inside:.2f}, suspects: {top}")
    else:
        print("\nno poor-IPC windows below 80% of mean")
    return 0


def cmd_trace(args) -> int:
    from .analysis import TraceDecoder
    scenario = _scenario(args.scenario)
    device = scenario.build(_config(args.device), {}, seed=args.seed)
    ptu = device.mcds.add_program_trace(cycle_accurate=args.cycle_accurate)
    device.run(args.cycles)
    print(f"traced {ptu.instructions_traced} instructions in "
          f"{ptu.messages} messages ({ptu.bits} bits, "
          f"{ptu.bits_per_instruction:.2f} bits/instr)")
    print(f"EMEM: {device.emem.message_count} messages buffered, "
          f"{device.emem.fill_ratio:.1%} full, "
          f"{device.emem.lost_oldest} wrapped away")
    decoded = TraceDecoder(device.cpu.program).decode(
        device.emem.contents())
    print(f"decoded {len(decoded.discontinuities)} discontinuities "
          f"spanning {decoded.span_cycles} cycles")
    entries = sorted(decoded.function_entries.items(),
                     key=lambda item: -item[1])[:5]
    for name, count in entries:
        print(f"  {name:<20} {count} entries")
    return 0


def cmd_explore(args) -> int:
    from .core.optimization import (OptionEvaluator, full_catalog,
                                    hardware_options, report)
    scenario = _scenario(args.scenario)
    options = hardware_options() if args.hardware_only else full_catalog()
    evaluator = OptionEvaluator(scenario, _config(args.device), options,
                                work_instructions=args.work, seed=args.seed)
    context = evaluator.run_baseline()
    print("CPI stack:")
    print(context.stack.as_table())
    results = evaluator.evaluate()
    print("\noption ranking:")
    print(report.ranking_table(results))
    print("\nprediction accuracy:")
    print(report.validation_table(results))
    return 0


def cmd_report(args) -> int:
    from .analysis import profiling_report
    from .core.profiling import (FunctionProfiler, ProfilingSession, spec)
    from .core.profiling.export import result_to_json, summary_to_csv
    from .mcds.trace import TraceFanout
    scenario = _scenario(args.scenario)
    params = {"anomaly": True} if args.anomaly else {}
    device = scenario.build(_config(args.device), params, seed=args.seed)
    session = ProfilingSession(
        device, spec.engine_parameter_set(ipc_resolution=args.resolution))
    profiler = FunctionProfiler(device.cpu.program)
    if device.cpu.trace is None:
        device.cpu.trace = TraceFanout()
    device.cpu.trace.add(profiler)
    result = session.run(args.cycles)
    print(profiling_report(device, result, profiler))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result_to_json(result))
        print(f"\nfull series exported to {args.json}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(summary_to_csv(result))
        print(f"summary exported to {args.csv}")
    return 0


def cmd_profile_kernel(args) -> int:
    """Naive-vs-quiescent kernel comparison on one scenario workload."""
    if _telemetry_wanted(args):
        from .obs import telemetry
        with telemetry() as tel:
            with _maybe_recording(tel, args):
                status = _profile_kernel(args, tel)
            _write_telemetry(tel, args)
        return status
    return _profile_kernel(args, None)


def _profile_kernel(args, tel) -> int:
    from .soc.kernel import kernel_mode
    from .soc.kernel.kprof import (KernelProfiler, format_kernel_stats,
                                   format_top_components)
    scenario = _scenario(args.scenario)
    params = {"idle_halt": True} if args.idle_halt else {}
    top = getattr(args, "top", None)
    want_wall = args.wall or top is not None   # --top needs wall times
    runs = {}
    for mode in ("naive", "quiescent"):
        with kernel_mode(mode):
            device = scenario.build(_config(args.device), dict(params),
                                    seed=args.seed)
        sim = device.soc.sim
        profiler = KernelProfiler(sim) if want_wall else None
        if profiler is not None:
            profiler.attach()
        device.run(args.cycles)
        runs[mode] = (sim.kernel_stats(), sim.hub.totals[:])
        if profiler is not None:
            profiler.detach()
        if tel is not None:
            # same registry schema `repro telemetry` exports, one label
            # per kernel mode; the print below keeps its old shape
            from .obs import bridge
            bridge.record_kernel_stats(tel.registry, runs[mode][0],
                                       kernel=mode)
        print(f"\n== {mode} kernel ==")
        print(format_kernel_stats(runs[mode][0]))
        if top is not None:
            print(f"\ntop {top} components by tick self-time ({mode}):")
            print(format_top_components(runs[mode][0], top))
    naive_stats, naive_oracle = runs["naive"]
    quiesc_stats, quiesc_oracle = runs["quiescent"]
    if naive_oracle != quiesc_oracle:
        print("\nERROR: oracle totals diverged between kernels")
        return 1
    speedup = (quiesc_stats["cycles_per_sec"] /
               max(1e-9, naive_stats["cycles_per_sec"]))
    print(f"\noracle totals identical across kernels "
          f"({sum(naive_oracle)} events)")
    print(f"quiescent speedup: {speedup:.2f}x")
    return 0


def cmd_checkpoint(args) -> int:
    """Snapshot, inspect, or resume one scenario run.

    The save path records the scenario/device/seed in the checkpoint meta,
    so ``--restore`` rebuilds the identical device without re-specifying
    them — resuming and running on is byte-identical to a run that was
    never interrupted (the tentpole guarantee of docs/checkpoint.md).
    """
    from .checkpoint import CheckpointError, checkpoint_info
    if args.info:
        try:
            info = checkpoint_info(args.info)
        except CheckpointError as exc:
            print(f"rejected: {exc}")
            return 1
        meta = info["meta"]
        print(f"checkpoint {info['path']} (schema {info['schema']}, "
              f"{info['size_bytes']} bytes)")
        for key in sorted(meta):
            print(f"  {key:<12}{meta[key]}")
        print(f"  components  {', '.join(info['components'])}")
        return 0
    if args.restore:
        from .checkpoint import load_checkpoint
        try:
            _, meta = load_checkpoint(args.restore)
        except CheckpointError as exc:
            print(f"rejected: {exc}")
            return 1
        scenario = _scenario(meta["scenario"])
        device = scenario.build(_config(meta["device"]), {},
                                seed=meta["seed"])
        device.soc._ensure_order()
        device.restore(args.restore)
        print(f"restored {args.restore} at cycle {device.cycle}")
        if args.cycles:
            device.run(args.cycles)
            print(f"ran {args.cycles} more cycles -> cycle {device.cycle}, "
                  f"IPC {device.soc.ipc():.3f}")
        return 0
    scenario = _scenario(args.scenario)
    device = scenario.build(_config(args.device), {}, seed=args.seed)
    device.run(args.cycles)
    path = device.checkpoint(args.out, meta={
        "scenario": args.scenario, "device": args.device,
        "seed": args.seed})
    import os
    print(f"cycle {device.cycle}: wrote {path} "
          f"({os.path.getsize(path)} bytes)")
    return 0


def cmd_customers(args) -> int:
    from .core.optimization import CpiStack
    from .soc.kernel import signals
    from .workloads import CustomerGenerator
    customers = CustomerGenerator(seed=args.seed).generate(args.count)
    config = _config(args.device)
    print(f"{'customer':<28}{'IPC':>6}{'I$miss%':>9}{'flashD%':>9}"
          f"{'pcp%':>7}")
    for customer in customers:
        device = customer.build(config, seed=args.seed)
        device.run(args.cycles)
        counts = device.oracle()
        instr = max(1, counts[signals.TC_INSTR])
        stack = CpiStack.from_counts(counts, device.cycle, config)
        print(f"{customer.name:<28}{stack.ipc:>6.2f}"
              f"{100 * counts[signals.ICACHE_MISS] / instr:>9.2f}"
              f"{100 * counts[signals.PFLASH_DATA_ACCESS] / instr:>9.2f}"
              f"{100 * counts[signals.PCP_INSTR] / instr:>7.2f}")
    return 0


def cmd_campaign(args) -> int:
    if _telemetry_wanted(args):
        from .obs import telemetry
        with telemetry() as tel:
            with _maybe_recording(tel, args):
                status = _campaign(args)
            if args.trace_store:
                print(f"trace store: {args.trace_store}")
            _write_telemetry(tel, args)
        return status
    return _campaign(args)


def _campaign(args) -> int:
    from .errors import ConfigurationError
    from .fleet import (CampaignSpec, campaign_matrix, matrix_table,
                        rank_portfolio, run_campaign)
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0 (0 = in-process)")
    try:
        spec = CampaignSpec(count=args.count, cycles=args.cycles,
                            device=args.device, seed=args.seed,
                            ipc_resolution=args.resolution,
                            drill=args.drill, deadline_s=args.deadline,
                            backend=args.backend)
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    fault_plan = None
    if args.fault_plan:
        from .faults import load_fault_plan
        plan = load_fault_plan(args.fault_plan)
        fault_plan = plan.to_dict()
        print(f"chaos: fault plan {args.fault_plan!r} (seed {plan.seed}, "
              f"{len(plan.rules)} rules) — result cache disabled")
    if args.checkpoint_every and not args.campaign_dir:
        raise SystemExit("--checkpoint-every needs --campaign-dir")
    # same entry path the HTTP service uses (repro.fleet.run_campaign),
    # so a CLI run and a served run of one spec are the same computation
    try:
        report = run_campaign(
            spec, workers=args.workers, cache_dir=args.cache_dir,
            campaign_dir=args.campaign_dir, max_retries=args.retries,
            timeout_s=args.timeout, resume=args.resume,
            fault_plan=fault_plan,
            checkpoint_every=args.checkpoint_every)
    except ConfigurationError as exc:
        # e.g. --backend batch without the repro[batch] extra installed:
        # surface the actionable message, not a traceback
        raise SystemExit(str(exc))
    if report.deadline_exceeded:
        print(f"campaign: DEADLINE EXCEEDED after {args.deadline}s — "
              f"{len(report.records)} of the jobs finished, "
              f"no aggregate written")
        return 1
    print(f"campaign: {len(report.records)} jobs over "
          f"{args.workers} workers")
    print(report.metrics.summary_table())
    print()
    print(matrix_table(campaign_matrix(report.records)))
    for record in report.quarantined:
        print(f"quarantined: {record['job_id']} after "
              f"{record['attempts']} attempts — {record['error']}")
    if report.aggregate_path:
        print(f"\nstore: {report.store_path}")
        print(f"aggregate: {report.aggregate_path}")
    if args.rank:
        from .core.optimization import hardware_options
        from .core.optimization.portfolio import portfolio_table
        entries = rank_portfolio(spec.customers(), report.records,
                                 _config(args.device), hardware_options(),
                                 work_instructions=args.work,
                                 seed=args.seed)
        print("\nvolume-weighted portfolio ranking:")
        print(portfolio_table(entries))
    return 1 if report.quarantined and args.strict else 0


def cmd_node(args) -> int:
    """Run one cluster worker node over a shared cluster directory."""
    from .cluster import ClusterNode
    from .errors import ClusterError

    def _run() -> int:
        try:
            node = ClusterNode(args.cluster_dir, node_id=args.node_id,
                               ttl_s=args.ttl, poll_s=args.poll)
        except ClusterError as exc:
            raise SystemExit(str(exc))
        summary = node.run()
        print(f"node {summary['node']}: {summary['state']} — "
              f"{summary['jobs_done']} jobs, "
              f"{summary['batches_done']} batches, "
              f"{summary['fenced']} fenced")
        if summary["aggregate_path"]:
            print(f"aggregate: {summary['aggregate_path']}")
        return 0 if summary["state"] in ("done", "stopped") else 1

    if _telemetry_wanted(args):
        from .obs import telemetry
        with telemetry(run_id=args.node_id) as tel:
            with _maybe_recording(tel, args):
                status = _run()
            _write_telemetry(tel, args)
        return status
    return _run()


def cmd_cluster(args) -> int:
    """Cluster campaign coordination: submit, run locally, inspect."""
    import json

    from .cluster import cluster_status, request_stop, run_clustered, submit
    from .errors import ClusterError, ConfigurationError
    from .fleet import CampaignSpec, jobs_for

    if args.cluster_command == "status":
        status = cluster_status(args.cluster_dir)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        if status.get("state") == "empty":
            print(f"cluster {args.cluster_dir}: no campaign submitted")
            return 1
        print(f"cluster {args.cluster_dir}: "
              f"{status['records']['ok']}/{status['total_jobs']} jobs ok, "
              f"{status['records']['quarantined']} quarantined")
        print(f"  batches: {status['done_batches']}/{status['batches']} "
              f"done; planned={status['planned']} final={status['final']} "
              f"stop={status['stop_requested']}")
        for entry in status["batch_states"]:
            lease = entry.get("lease")
            held = ""
            if lease is not None:
                held = (" [damaged lease]" if lease.get("damaged") else
                        f" [{lease['node']} token {lease['token']} "
                        f"expires {lease['expires_in_s']:+.1f}s]")
            print(f"    {entry['name']}: "
                  f"{'done' if entry['done'] else 'pending'}{held}")
        for node in status["nodes"]:
            print(f"  node {node['node']}: {node['state']} "
                  f"(heartbeat {node['heartbeat_age_s']:.1f}s ago, "
                  f"{node['jobs_done']} jobs)")
        print(f"  nodes alive: {status['nodes_alive']}")
        return 0
    if args.cluster_command == "stop":
        request_stop(args.cluster_dir)
        print(f"cluster {args.cluster_dir}: stop requested")
        return 0

    # submit | run: build the job matrix from the campaign spec flags
    try:
        spec = CampaignSpec(count=args.count, cycles=args.cycles,
                            device=args.device, seed=args.seed,
                            ipc_resolution=args.resolution)
        jobs = jobs_for(spec)
    except ConfigurationError as exc:
        raise SystemExit(str(exc))
    fault_plan = None
    if args.fault_plan:
        from .faults import load_fault_plan
        fault_plan = load_fault_plan(args.fault_plan).to_dict()
        print(f"chaos: fault plan {args.fault_plan!r} — "
              f"shared result cache disabled")
    try:
        if args.cluster_command == "submit":
            path = submit(args.cluster_dir, jobs, batches=args.batches,
                          checkpoint_every=args.checkpoint_every,
                          max_retries=args.retries, fault_plan=fault_plan,
                          deadline_s=args.deadline,
                          cache=not args.no_cache)
            print(f"cluster submit: {len(jobs)} jobs -> {path}")
            print(f"start workers with: repro node "
                  f"--cluster-dir {args.cluster_dir}")
            return 0
        report = run_clustered(jobs, args.cluster_dir, nodes=args.nodes,
                               batches=args.batches,
                               checkpoint_every=args.checkpoint_every,
                               max_retries=args.retries,
                               fault_plan=fault_plan,
                               deadline_s=args.deadline,
                               cache=not args.no_cache, ttl_s=args.ttl)
    except (ClusterError, ConfigurationError) as exc:
        raise SystemExit(str(exc))
    if report.deadline_exceeded:
        print(f"cluster: DEADLINE EXCEEDED — {len(report.records)} jobs "
              f"committed, no aggregate written")
        return 1
    print(f"cluster: {len(report.records)} jobs over "
          f"{max(1, args.nodes)} nodes")
    print(report.metrics.summary_table())
    for record in report.quarantined:
        print(f"quarantined: {record['job_id']} after "
              f"{record['attempts']} attempts — {record['error']}")
    if report.aggregate_path:
        print(f"\nstore: {report.store_path}")
        print(f"aggregate: {report.aggregate_path}")
    return 0


def cmd_serve(args) -> int:
    """Run the always-on campaign service until interrupted."""
    import asyncio

    from .resilience import CircuitBreaker
    from .serve import CampaignService, QuotaManager, TenantPolicy, serve
    quota = QuotaManager(default=TenantPolicy(
        weight=1.0, burst=args.burst, refill_per_s=args.refill,
        max_queued=args.max_queued))
    breaker = CircuitBreaker(
        window_s=args.breaker_window,
        min_samples=args.breaker_min_samples,
        failure_threshold=args.breaker_threshold,
        cooldown_s=args.breaker_cooldown)
    service = CampaignService(
        root=args.root, quota=quota, slots=args.slots,
        checkpoint_every=args.checkpoint_every,
        max_retries=args.retries, cache_dir=args.cache_dir,
        catalog_path=args.catalog, breaker=breaker,
        trace_store=args.trace_store, cluster_nodes=args.cluster_nodes)
    try:
        asyncio.run(serve(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0


def cmd_catalog(args) -> int:
    """Build the campaign-capability catalog artifact (or print it)."""
    from .serve.catalog import build_catalog, write_catalog
    if args.out:
        path = write_catalog(args.out)
        import os
        print(f"catalog: wrote {path} ({os.path.getsize(path)} bytes)")
    else:
        import json
        print(json.dumps(build_catalog(), indent=2, sort_keys=True))
    return 0


def cmd_telemetry(args) -> int:
    """One fully-instrumented in-process campaign: trace + metrics + events.

    Runs with ``workers=0`` by default so every hook site — kernel advance
    spans, pipeline decode/download spans, gap/fault/trigger instants,
    fleet cache and job events — fires inside this process and lands in
    one correlated timeline.  The exports cover all four metric families
    (kernel, pipeline, faults, fleet) even where a counter stayed zero.
    """
    from .fleet import CampaignRunner, build_matrix
    from .obs import telemetry
    from .workloads import CustomerGenerator
    _config(args.device)          # fail fast on unknown device names
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0 (0 = in-process)")
    customers = CustomerGenerator(seed=args.seed).generate(args.count)
    jobs = build_matrix(customers, devices=(args.device,),
                       cycle_budgets=(args.cycles,), seed=args.seed,
                       ipc_resolution=args.resolution)
    fault_plan = None
    if args.fault_plan:
        from .faults import load_fault_plan
        fault_plan = load_fault_plan(args.fault_plan).to_dict()
    with telemetry(run_id=args.run_id) as tel:
        with _maybe_recording(tel, args):
            report = CampaignRunner(
                jobs, workers=args.workers, cache_dir=args.cache_dir,
                campaign_dir=args.campaign_dir,
                fault_plan=fault_plan).run()
        print(f"run {tel.run_id}: {len(jobs)} jobs, "
              f"{args.workers} workers")
        print(report.metrics.summary_table())
        print(f"\nrecorded {len(tel.tracer)} trace events, "
              f"{len(tel.events)} log records")
        if args.trace_store:
            print(f"trace store: {args.trace_store}")
        _write_telemetry(tel, args, events_out=args.events_out)
    return 0


def cmd_traces(args) -> int:
    """Trace-store analytics: ingest / info / query / diff / export."""
    from .errors import ConfigurationError, TraceStoreError
    try:
        return _TRACES_ACTIONS[args.traces_command](args)
    except (ConfigurationError, TraceStoreError) as exc:
        print(f"traces: {exc}", file=sys.stderr)
        return 1


def _traces_ingest(args) -> int:
    from . import traces
    dest = args.out
    if not dest:
        base = args.source
        for suffix in (".json", ".jsonl"):
            if base.endswith(suffix):
                base = base[:-len(suffix)]
                break
        dest = base + ".rtrace"
    writer = traces.ingest_chrome(args.source, dest, run_id=args.run_id)
    print(f"ingested {writer.events_written} events "
          f"({writer.spans_written} spans, {writer.instants_written} "
          f"instants, {writer.skipped_events} skipped) into {dest}")
    print(f"summary sidecar: {traces.sidecar_path(dest)}")
    return 0


def _traces_info(args) -> int:
    import json as _json

    from . import traces
    with traces.TraceReader(args.segment) as reader:
        counts = reader.counts
        info = {
            "segment": args.segment,
            "run_id": reader.run_id,
            "file_bytes": reader.file_bytes,
            "blocks": len(reader.blocks),
            "events": counts.get("events", 0),
            "spans": counts.get("spans", 0),
            "instants": counts.get("instants", 0),
            "skipped": counts.get("skipped", 0),
            "lanes": [list(lane) for lane in reader.lanes],
        }
    summary = traces.summary_for(args.segment)
    info["totals"] = summary.get("totals", {})
    if args.json:
        print(_json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"segment {args.segment} (run {info['run_id'] or '-'}): "
          f"{info['events']} events in {info['blocks']} blocks, "
          f"{info['file_bytes']} bytes")
    print(f"  spans {info['spans']}, instants {info['instants']}, "
          f"skipped {info['skipped']}, lanes {len(info['lanes'])}")
    for key in sorted(info["totals"]):
        print(f"  {key:<18}{info['totals'][key]}")
    slowest = summary.get("slowest", [])
    if slowest:
        print("slowest spans:")
        for entry in slowest[:5]:
            print(f"  {entry['name']:<28}{entry['dur_us']:>12.1f}us  "
                  f"ts={entry['ts_us']:.1f}"
                  + (f"  job={entry['job']}" if entry.get("job") else ""))
    return 0


def _traces_query(args) -> int:
    import json as _json

    from . import traces
    query = traces.TraceQuery(
        begin_us=args.begin, end_us=args.end,
        names=tuple(args.name) if args.name else None,
        jobs=tuple(args.job) if args.job else None,
        phase=args.phase, limit=args.limit)
    result = traces.query_segment(args.segment, query)
    if args.json:
        print(_json.dumps({
            "events": result.events,
            "blocks_total": result.blocks_total,
            "blocks_scanned": result.blocks_scanned,
            "bytes_read": result.bytes_read,
            "file_bytes": result.file_bytes,
            "bytes_fraction": round(result.bytes_fraction, 4),
            "truncated": result.truncated,
        }, indent=2, sort_keys=True))
        return 0
    for event in result.events:
        job = (event.get("args") or {}).get("job", "")
        dur = f" dur={event['dur']:.1f}us" if event["ph"] == "X" else ""
        print(f"{event['ts']:>14.1f}  {event['ph']}  "
              f"{event['name']:<24}{dur}"
              + (f"  job={job}" if job else ""))
    print(f"-- {len(result.events)} events"
          + (" (truncated)" if result.truncated else "")
          + f"; scanned {result.blocks_scanned}/{result.blocks_total} "
          f"blocks, read {result.bytes_read}/{result.file_bytes} bytes "
          f"({result.bytes_fraction:.1%})")
    return 0


def _traces_diff(args) -> int:
    from . import traces
    diff = traces.diff_summaries(
        traces.summary_for(args.before), traces.summary_for(args.after),
        rel_threshold=args.threshold, abs_threshold=args.min_abs)
    print(traces.format_diff(diff))
    if args.strict and diff.regressions:
        return 1
    return 0


def _traces_export(args) -> int:
    from . import traces
    if not args.chrome and not args.perfetto:
        raise SystemExit("traces export: give --chrome and/or --perfetto")
    with traces.TraceReader(args.segment) as reader:
        if args.chrome:
            traces.write_chrome(reader, args.chrome)
            print(f"chrome trace: {args.chrome}")
        if args.perfetto:
            traces.write_perfetto(reader, args.perfetto)
            print(f"perfetto trace: {args.perfetto}")
    return 0


_TRACES_ACTIONS = {
    "ingest": _traces_ingest,
    "info": _traces_info,
    "query": _traces_query,
    "diff": _traces_diff,
    "export": _traces_export,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Infineon system-performance-optimization methodology "
                    "(DATE 2008) reproduction")
    parser.add_argument("--device", default="tc1797",
                        help="tc1797 or tc1767 (default tc1797)")
    parser.add_argument("--seed", type=int, default=2008)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topology", help="block inventory and access paths")

    p = sub.add_parser("profile", help="enhanced system profiling run")
    p.add_argument("--scenario", default="engine")
    p.add_argument("--cycles", type=int, default=200_000)
    p.add_argument("--resolution", type=int, default=512)
    p.add_argument("--anomaly", action="store_true")

    p = sub.add_parser("trace", help="program trace capture")
    p.add_argument("--scenario", default="engine")
    p.add_argument("--cycles", type=int, default=100_000)
    p.add_argument("--cycle-accurate", action="store_true")

    p = sub.add_parser("explore", help="architecture-option ranking")
    p.add_argument("--scenario", default="engine")
    p.add_argument("--work", type=int, default=120_000)
    p.add_argument("--hardware-only", action="store_true")

    p = sub.add_parser("profile-kernel",
                       help="simulation-kernel throughput profile "
                            "(naive vs quiescent)")
    p.add_argument("--scenario", default="engine")
    p.add_argument("--cycles", type=int, default=200_000)
    p.add_argument("--idle-halt", action="store_true",
                   help="rtos only: idle hook halts (wait-for-interrupt)")
    p.add_argument("--wall", action="store_true",
                   help="attach the kernel profiler for per-component "
                        "wall-time shares (adds measurement overhead)")
    p.add_argument("--top", type=int, metavar="N",
                   help="print the top-N components by tick self-time "
                        "(sorted, stable output; implies --wall)")
    _add_telemetry_flags(p)

    p = sub.add_parser("customers", help="customer profile matrix")
    p.add_argument("--count", type=int, default=6)
    p.add_argument("--cycles", type=int, default=100_000)

    p = sub.add_parser("campaign", help="parallel fleet profiling campaign")
    p.add_argument("--count", type=int, default=8,
                   help="generated customer population size")
    p.add_argument("--cycles", type=int, default=100_000)
    p.add_argument("--resolution", type=int, default=256)
    p.add_argument("--backend", choices=("scalar", "batch"),
                   default="scalar",
                   help="execution backend: 'batch' fans same-config jobs "
                        "into numpy lane groups with byte-identical "
                        "payloads (needs the repro[batch] extra; see "
                        "docs/batch.md)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes (0 = in-process, no pool)")
    p.add_argument("--cache-dir", help="content-addressed result cache dir")
    p.add_argument("--campaign-dir", help="JSONL store + aggregate dir")
    p.add_argument("--resume", action="store_true",
                   help="replay completed jobs from the campaign store")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per failing job")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock deadline for the whole campaign; "
                        "expiry is terminal (no aggregate, exit 1)")
    p.add_argument("--drill", action="store_true",
                   help="inject an always-crashing job (quarantine demo)")
    p.add_argument("--fault-plan", metavar="PLAN.json",
                   help="chaos-test the campaign under a fault-injection "
                        "plan (see docs/faults.md; disables the cache)")
    p.add_argument("--checkpoint-every", type=int, metavar="CYCLES",
                   help="periodic mid-run job checkpoints: a crashed or "
                        "killed attempt resumes from its last intact "
                        "checkpoint instead of cycle 0 (needs "
                        "--campaign-dir; see docs/checkpoint.md)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero if any job was quarantined")
    p.add_argument("--rank", action="store_true",
                   help="volume-weighted portfolio ranking afterwards")
    p.add_argument("--work", type=int, default=80_000,
                   help="per-option work instructions for --rank")
    _add_telemetry_flags(p)

    p = sub.add_parser("telemetry",
                       help="instrumented campaign run: Chrome trace, "
                            "Prometheus metrics, JSONL event log")
    p.add_argument("--count", type=int, default=4,
                   help="generated customer population size")
    p.add_argument("--cycles", type=int, default=50_000)
    p.add_argument("--resolution", type=int, default=256)
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (default 0: in-process, so "
                        "every hook records into one timeline)")
    p.add_argument("--cache-dir", help="content-addressed result cache dir")
    p.add_argument("--campaign-dir", help="JSONL store + aggregate dir")
    p.add_argument("--fault-plan", metavar="PLAN.json",
                   help="run under a fault-injection plan so fault "
                        "instants appear on the timeline")
    p.add_argument("--run-id", help="override the generated run id")
    p.add_argument("--trace-out", metavar="TRACE.json",
                   default="telemetry_trace.json",
                   help="Chrome/Perfetto trace path "
                        "(default telemetry_trace.json)")
    p.add_argument("--metrics-out", metavar="METRICS.prom",
                   default="telemetry_metrics.prom",
                   help="Prometheus text-format path "
                        "(default telemetry_metrics.prom)")
    p.add_argument("--events-out", metavar="EVENTS.jsonl",
                   default="telemetry_events.jsonl",
                   help="structured event-log path "
                        "(default telemetry_events.jsonl)")
    p.add_argument("--trace-store", metavar="SEGMENT.rtrace",
                   help="also stream every span into a columnar "
                        "trace-store segment (see `repro traces`)")

    p = sub.add_parser("node",
                       help="one cluster worker node: claim job batches "
                            "via leases over a shared directory, execute, "
                            "migrate work off dead peers (docs/cluster.md)")
    p.add_argument("--cluster-dir", required=True,
                   help="shared cluster coordination directory")
    p.add_argument("--node-id",
                   help="stable node name (default node-<pid>)")
    p.add_argument("--ttl", type=float, default=10.0, metavar="SECONDS",
                   help="lease TTL: miss heartbeats for this long and "
                        "the node's batches migrate (default 10)")
    p.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                   help="idle poll interval while batches are all "
                        "leased out (default 0.2)")
    _add_telemetry_flags(p)

    p = sub.add_parser("cluster",
                       help="multi-node campaign coordination: submit a "
                            "manifest, run N local nodes, inspect state")
    csub = p.add_subparsers(dest="cluster_command", required=True)

    def _cluster_campaign_flags(cp) -> None:
        cp.add_argument("--cluster-dir", required=True,
                        help="shared cluster coordination directory")
        cp.add_argument("--count", type=int, default=8,
                        help="generated customer population size")
        cp.add_argument("--cycles", type=int, default=100_000)
        cp.add_argument("--resolution", type=int, default=256)
        cp.add_argument("--batches", type=int, default=None,
                        help="job batches = units of claiming/migration "
                             "(default min(jobs, 8))")
        cp.add_argument("--checkpoint-every", type=int, default=5_000,
                        metavar="CYCLES",
                        help="mandatory checkpoint cadence: checkpoint "
                             "boundaries are heartbeat points, and what "
                             "migration resumes from (default 5000)")
        cp.add_argument("--retries", type=int, default=2,
                        help="retry budget per failing job")
        cp.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline for the whole campaign")
        cp.add_argument("--fault-plan", metavar="PLAN.json",
                        help="chaos-test under a fault-injection plan "
                             "(disables the shared cache)")
        cp.add_argument("--no-cache", action="store_true",
                        help="disable the shared content-addressed "
                             "result cache")

    cp = csub.add_parser("submit",
                         help="publish a campaign manifest; start "
                              "`repro node` workers to execute it")
    _cluster_campaign_flags(cp)

    cp = csub.add_parser("run",
                         help="submit + run N local node subprocesses to "
                              "completion (0 = one in-process node)")
    _cluster_campaign_flags(cp)
    cp.add_argument("--nodes", type=int, default=2,
                    help="worker node subprocesses (default 2; "
                         "0 = in-process)")
    cp.add_argument("--ttl", type=float, default=5.0, metavar="SECONDS",
                    help="lease TTL for the spawned nodes (default 5)")

    cp = csub.add_parser("status",
                         help="snapshot of batches, leases, node "
                              "heartbeats, and results")
    cp.add_argument("--cluster-dir", required=True)
    cp.add_argument("--json", action="store_true")

    cp = csub.add_parser("stop",
                         help="ask every node to stop at its next safe "
                              "boundary (checkpoints survive)")
    cp.add_argument("--cluster-dir", required=True)

    p = sub.add_parser("serve",
                       help="always-on campaign service: HTTP submission, "
                            "priority queue, SSE result streaming")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (0 = OS-assigned; the bound address "
                        "is printed on startup)")
    p.add_argument("--root", default="serve_data",
                   help="state directory: per-campaign stores, "
                        "checkpoints, aggregates (default serve_data)")
    p.add_argument("--slots", type=int, default=1,
                   help="campaigns executing concurrently (default 1)")
    p.add_argument("--checkpoint-every", type=int, default=5_000,
                   metavar="CYCLES",
                   help="checkpoint cadence = preemption granularity "
                        "(default 5000 cycles)")
    p.add_argument("--retries", type=int, default=1,
                   help="retry budget per failing job (default 1)")
    p.add_argument("--cache-dir",
                   help="shared content-addressed result cache dir")
    p.add_argument("--catalog", metavar="CATALOG.json",
                   help="serve this pinned catalog artifact instead of "
                        "building one at startup (see `repro catalog`)")
    p.add_argument("--burst", type=float, default=4.0,
                   help="default tenant token-bucket burst (default 4)")
    p.add_argument("--refill", type=float, default=0.5,
                   help="default tenant refill rate, campaigns/s "
                        "(default 0.5)")
    p.add_argument("--max-queued", type=int, default=8,
                   help="default per-tenant queued+running cap (default 8)")
    p.add_argument("--breaker-window", type=float, default=30.0,
                   metavar="SECONDS",
                   help="circuit-breaker failure-rate window (default 30)")
    p.add_argument("--breaker-threshold", type=float, default=0.5,
                   help="failure fraction that trips the breaker "
                        "(default 0.5)")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   metavar="SECONDS",
                   help="initial open-state cooldown; doubles per "
                        "consecutive trip (default 5)")
    p.add_argument("--breaker-min-samples", type=int, default=5,
                   help="outcomes required before the breaker may trip "
                        "(default 5)")
    p.add_argument("--trace-store", metavar="DIR",
                   help="record each campaign into a .rtrace segment "
                        "under DIR (one at a time; see docs/traces.md)")
    p.add_argument("--cluster-nodes", type=int, default=0, metavar="N",
                   help="execute each campaign over N cluster worker "
                        "node subprocesses (survives node death; "
                        "default 0 = in-process orchestrator; see "
                        "docs/cluster.md)")

    p = sub.add_parser("catalog",
                       help="build the campaign-capability catalog "
                            "artifact for `repro serve --catalog`")
    p.add_argument("--out", metavar="CATALOG.json",
                   help="write the canonical-JSON artifact here "
                        "(omit to print it)")

    p = sub.add_parser("checkpoint",
                       help="snapshot / inspect / resume a simulation run")
    p.add_argument("--scenario", default="engine")
    p.add_argument("--cycles", type=int, default=100_000,
                   help="cycles to run before saving (or after restoring)")
    p.add_argument("--out", default="repro.ckpt", metavar="FILE.ckpt",
                   help="checkpoint path to write (default repro.ckpt)")
    p.add_argument("--info", metavar="FILE.ckpt",
                   help="inspect an existing checkpoint and exit")
    p.add_argument("--restore", metavar="FILE.ckpt",
                   help="rebuild the device recorded in the checkpoint, "
                        "restore it, and run --cycles more")

    p = sub.add_parser("traces",
                       help="trace-store analytics: ingest, query, "
                            "cross-run diff, Chrome/Perfetto export")
    tsub = p.add_subparsers(dest="traces_command", required=True)

    tp = tsub.add_parser("ingest",
                         help="convert a Chrome trace JSON file into a "
                              "columnar .rtrace segment")
    tp.add_argument("source", help="Chrome trace-event JSON file")
    tp.add_argument("-o", "--out", metavar="SEGMENT.rtrace",
                    help="segment path (default: source with .rtrace)")
    tp.add_argument("--run-id", help="run id recorded in the footer")

    tp = tsub.add_parser("info", help="segment footer + summary overview")
    tp.add_argument("segment")
    tp.add_argument("--json", action="store_true")

    tp = tsub.add_parser("query",
                         help="predicate query reading only matching "
                              "column blocks")
    tp.add_argument("segment")
    tp.add_argument("--begin", type=float, metavar="US",
                    help="window start (microseconds since trace epoch)")
    tp.add_argument("--end", type=float, metavar="US", help="window end")
    tp.add_argument("--name", action="append", metavar="SPAN",
                    help="span/instant name filter (repeatable)")
    tp.add_argument("--job", action="append", metavar="CUSTOMER",
                    help="customer/job filter (repeatable)")
    tp.add_argument("--phase", choices=("X", "i"),
                    help="spans only (X) or instants only (i)")
    tp.add_argument("--limit", type=int, help="stop after N matches")
    tp.add_argument("--json", action="store_true")

    tp = tsub.add_parser("diff",
                         help="cross-run diff of two segments by "
                              "(customer, signal)")
    tp.add_argument("before", help="baseline .rtrace segment")
    tp.add_argument("after", help="candidate .rtrace segment")
    tp.add_argument("--threshold", type=float, default=0.01,
                    help="relative change required (default 0.01 = 1%%)")
    tp.add_argument("--min-abs", type=float, default=1e-9,
                    help="absolute change floor (default 1e-9)")
    tp.add_argument("--strict", action="store_true",
                    help="exit 1 when any regression is found")

    tp = tsub.add_parser("export",
                         help="export a segment to Chrome JSON and/or "
                              "Perfetto protobuf")
    tp.add_argument("segment")
    tp.add_argument("--chrome", metavar="OUT.json")
    tp.add_argument("--perfetto", metavar="OUT.pftrace")

    p = sub.add_parser("report", help="full profiling report (+export)")
    p.add_argument("--scenario", default="engine")
    p.add_argument("--cycles", type=int, default=200_000)
    p.add_argument("--resolution", type=int, default=512)
    p.add_argument("--anomaly", action="store_true")
    p.add_argument("--json", help="write full series JSON to this path")
    p.add_argument("--csv", help="write summary CSV to this path")
    return parser


COMMANDS = {
    "topology": cmd_topology,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "explore": cmd_explore,
    "profile-kernel": cmd_profile_kernel,
    "customers": cmd_customers,
    "checkpoint": cmd_checkpoint,
    "campaign": cmd_campaign,
    "telemetry": cmd_telemetry,
    "node": cmd_node,
    "cluster": cmd_cluster,
    "serve": cmd_serve,
    "catalog": cmd_catalog,
    "traces": cmd_traces,
    "report": cmd_report,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
