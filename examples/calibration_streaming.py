#!/usr/bin/env python3
"""Calibration + streaming profiling + the monitor access path.

The development-phase workflow the ED exists for (paper Section 3):

1. reserve a calibration share of the EMEM and overlay the fuel map;
2. tune parameters on the working page while the engine model runs;
3. stream the profiling rates continuously over the DAP, letting the
   adaptive controller pick the finest sustainable resolution;
4. compare the external DAP access path with the in-vehicle monitor
   routine (TriCore → MLI → EEC, results over CAN) — including the CPU
   cycles the monitor steals.
"""

from repro.core.profiling import (AdaptiveResolutionController,
                                  StreamingSession, spec)
from repro.ed import CalibrationSession
from repro.ed.tool_access import compare_paths
from repro.soc.config import tc1797_config
from repro.soc.memory import map as amap
from repro.workloads import EngineControlScenario

FUEL_MAP = amap.PFLASH_BASE + 0x20_0000


def build_streaming_device():
    scenario = EngineControlScenario(
        ed_config_overrides={"dap_streaming": True, "emem_kb": 64,
                             "dap_bandwidth_mbps": 8.0})
    return scenario.build(tc1797_config(), {}, seed=13)


def main():
    # -- calibration setup ---------------------------------------------------
    device = build_streaming_device()
    calibration = CalibrationSession(device, reserve_kb=32)
    calibration.map_block("fuel_map", FUEL_MAP, 0x4000)
    calibration.switch_to_working_page()
    for offset in range(0, 64, 4):
        calibration.write_parameter("fuel_map", offset, 0x4000 + offset)
    print(calibration.summary())

    # -- adaptive streaming profiling -----------------------------------------
    base_specs = [sp for sp in spec.engine_parameter_set(ipc_resolution=256,
                                                         rate_per=500)]
    controller = AdaptiveResolutionController(
        build_streaming_device, base_specs, trial_cycles=40_000)
    scale = controller.calibrate()
    print(f"\nadaptive controller: resolution scale x{scale} "
          f"({len(controller.trials)} trials)")
    for trial in controller.trials:
        print(f"  scale x{trial['scale']}: lost={trial['lost']} "
              f"peak fill={trial['peak_fill']:.1%} "
              f"sustainable={trial['sustainable']}")

    session_device = build_streaming_device()
    session = StreamingSession(session_device, controller.specs_for(scale))
    stats = session.run(200_000)
    result = session.result()
    print(f"\nstreamed {stats.messages_received} messages "
          f"({stats.bits_transferred} bits) over the live DAP; "
          f"EMEM peaked at {stats.emem_peak_fill:.1%}, "
          f"lost {stats.messages_lost}")
    print(f"mean IPC from the stream: {result.mean_rate('tc.ipc'):.3f}")

    # -- access-path comparison -------------------------------------------------
    print("\n" + compare_paths(session_device, words=1024))
    print("\nthe monitor path needs no debug cable in the car, but its CPU "
          "cycles are visible in the profile (see tests/test_tool_access.py)")


if __name__ == "__main__":
    main()
