#!/usr/bin/env python3
"""Chaos drill: stream an engine workload through a saturating DAP.

The graceful-degradation story of `repro.faults` (docs/faults.md), end
to end:

1. run a clean streaming profile of the engine-control workload as the
   control;
2. re-run the identical workload under a seeded fault plan that stalls
   the DAP wire mid-run and drops a few messages after it recovers;
3. show that nothing is silently lost — the EMEM/DAP stats account every
   message, the losses surface as gap records, and every rate sample
   whose window overlaps a gap is flagged degraded.
"""

from repro.core.profiling import StreamingSession, spec
from repro.faults import FaultInjector, FaultPlan
from repro.soc.config import tc1797_config
from repro.workloads import EngineControlScenario

CYCLES = 200_000

PLAN = FaultPlan(seed=7, description="mid-run DAP brownout", rules=(
    # stall the wire for 60k cycles — long enough to back the EMEM up
    {"site": "dap.saturate", "start_hit": 60_000, "max_faults": 1,
     "params": {"cycles": 60_000}},
    # and, throughout, lose one message in a hundred on the wire
    {"site": "dap.drop", "probability": 0.01},
))


def build_device():
    scenario = EngineControlScenario(
        ed_config_overrides={"dap_streaming": True, "emem_kb": 1,
                             "dap_bandwidth_mbps": 40.0})
    return scenario.build(tc1797_config(), {}, seed=13)


def run(fault_plan=None):
    device = build_device()
    session = StreamingSession(device, [spec.ipc(resolution=128)])
    if fault_plan is None:
        stats = session.run(CYCLES)
        injected = {}
    else:
        with FaultInjector(fault_plan, scope="fault-drill") as injector:
            stats = session.run(CYCLES)
        injected = injector.injected
    return device, session.result(), stats, injected


def degraded_windows(data):
    """Contiguous degraded sample runs as (start_cycle, end_cycle) spans."""
    spans, start = [], None
    cycles = data.cycles
    for i, bad in enumerate(data.degraded):
        if bad and start is None:
            start = cycles[i - 1] if i else 0
        elif not bad and start is not None:
            spans.append((int(start), int(cycles[i - 1])))
            start = None
    if start is not None:
        spans.append((int(start), int(cycles[-1])))
    return spans


def main():
    print(f"=== clean control run ({CYCLES} cycles) ===")
    device, result, stats, _ = run()
    print(f"messages streamed: {stats.messages_received}, "
          f"lost: {stats.messages_lost}, gaps: {stats.gaps}")
    print(f"mean IPC: {result.mean_rate('tc.ipc'):.3f}  "
          f"(healthy: {result.healthy})")

    print(f"\n=== same run under fault plan: {PLAN.description} ===")
    device, result, stats, injected = run(PLAN)
    print(f"injected: {injected}")
    print(f"DAP: {device.dap.saturated_cycles} saturated cycles, "
          f"{device.dap.dropped_messages} wire drops; "
          f"EMEM overran while stalled: {device.emem.stats()['overrun']}")
    print(f"messages lost: {stats.messages_lost} "
          f"across {stats.gaps} gap records")

    data = result["tc.ipc"]
    print(f"\nmean IPC: {result.mean_rate('tc.ipc'):.3f}  "
          f"({result.degraded_samples}/{len(data)} samples degraded)")
    print("degraded windows (cycle spans whose samples overlap a gap):")
    for start, end in degraded_windows(data):
        print(f"  [{start:>7} .. {end:>7}]")
    print()
    print(result.summary_table())


if __name__ == "__main__":
    main()
