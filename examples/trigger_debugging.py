#!/usr/bin/env python3
"""Complex triggers: catching a sporadic anomaly in a small trace buffer.

Paper Section 3: the on-chip trace memory is limited, so the MCDS trigger
block (boolean expressions, counters, state machines, missing-event
watchdogs) exists to freeze the capture *around* the interesting moment.

This example arms a two-stage trigger program — armed until an IPC dip is
seen, then capturing until the post-trigger budget is spent — and compares
what the buffer holds against a free-running capture.
"""

from repro.ed.device import EdConfig
from repro.mcds.counters import CYCLES
from repro.mcds.trigger import RateThreshold, Trigger, WindowWatchdog
from repro.soc.config import tc1797_config
from repro.workloads import EngineControlScenario

RUN_CYCLES = 300_000
PARAMS = {"anomaly": True, "anomaly_period": 60_000, "anomaly_len": 400}


def build_device():
    scenario = EngineControlScenario(ed_config_overrides={"emem_kb": 16})
    return scenario.build(tc1797_config(), PARAMS, seed=99)


def capture(triggered):
    device = build_device()
    device.mcds.add_program_trace(cycle_accurate=True)
    if triggered:
        ipc = device.mcds.add_rate_counter(
            "ipc.gate", ["tc.instr_executed"], 256, basis=CYCLES)
        dip = RateThreshold(ipc, int(0.5 * 256))
        device.mcds.add_trigger(Trigger(
            "freeze-on-dip", dip,
            on_enter=lambda cycle: device.emem.trigger_stop(cycle, 0.5)))
    watchdog = WindowWatchdog(device.hub, "dflash.access", window=50_000)
    device.mcds.add_trigger(Trigger("eeprom-heartbeat-missing", watchdog))
    device.run(RUN_CYCLES)
    return device, watchdog


def main():
    free, _ = capture(triggered=False)
    trig, watchdog = capture(triggered=True)

    print("16 KB EMEM, 300k-cycle run, anomaly burst every 60k cycles\n")
    span = free.emem.history_cycles()
    print(f"free-running ring buffer: holds the last {span} cycles "
          f"({free.emem.message_count} messages) — the anomaly is long gone")

    first = trig.emem.contents()[0].cycle
    last = trig.emem.contents()[-1].cycle
    print(f"trigger-stop capture: frozen at cycle {trig.emem.trigger_cycle}, "
          f"buffer spans cycles {first}..{last} — half before the dip, "
          f"half after (post-trigger share 0.5)")

    print(f"\nmissing-event watchdog fired {watchdog.timeouts} times "
          f"(EEPROM heartbeat slower than its 50k-cycle window)")
    print("\ntrigger conditions compose: e.g. "
          "(ipc_low & ~in_isr) | heartbeat_missing")


if __name__ == "__main__":
    main()
