#!/usr/bin/env python3
"""Enhanced System Profiling on an engine-control application.

The customer-side workflow of the paper's Section 5:

1. run the full parallel parameter set on the unchanged target system;
2. scan the IPC time line for "interesting spaces of time";
3. root-cause each poor-IPC window from the parallel rate series;
4. profile on function level to find hotspots and the data structures
   worth mapping to scratchpad memory.
"""

from repro.core.profiling import (FunctionProfiler, ProfilingSession,
                                  analysis, spec)
from repro.mcds.trace import TraceFanout
from repro.soc.config import tc1797_config
from repro.workloads import EngineControlScenario


def main():
    scenario = EngineControlScenario()
    device = scenario.build(tc1797_config(),
                            {"anomaly": True, "anomaly_period": 40_000},
                            seed=2026)

    session = ProfilingSession(device,
                               spec.engine_parameter_set(ipc_resolution=512))
    profiler = FunctionProfiler(device.cpu.program)
    if device.cpu.trace is None:
        device.cpu.trace = TraceFanout()
    device.cpu.trace.add(profiler)

    result = session.run(300_000)

    print("=== parallel parameter measurement ===")
    print(result.summary_table())

    print("\n=== rate timeline (coarse) ===")
    print(analysis.rate_timeline_table(
        result, ["tc.ipc", "icache.miss_rate", "tc.load_stall_rate"],
        buckets=8))

    threshold = result["tc.ipc"].mean_rate() * 0.8
    print(f"\n=== poor-IPC windows (IPC < {threshold:.2f}) ===")
    for diag in analysis.diagnose(result, ipc_threshold=threshold):
        top = ", ".join(f"{name} ({score:+.1f}σ)"
                        for name, score in diag.causes[:3])
        print(f"cycles {diag.window.start:>7}..{diag.window.end:<7} "
              f"IPC {diag.ipc_inside:.2f} (overall {diag.ipc_overall:.2f}) "
              f"suspects: {top}")

    print("\n=== function-level profile ===")
    print(profiler.flat_profile())

    print("\nOptimization hints (paper Section 5):")
    hot = profiler.hotspots(top=3)
    print(f"  hotspots: {', '.join(s.name for s in hot)}")
    flash_rate = result.mean_rate("flash.data_access_rate") * 100
    print(f"  CPU data flash access rate {flash_rate:.1f}% -> consider "
          f"mapping hot look-up tables to the DSPR scratchpad")


if __name__ == "__main__":
    main()
