"""Fleet campaign quickstart: profile a customer population in parallel.

Runs the architect's population-profiling step (paper Section 4) as a
fleet campaign — sharded over worker processes, content-addressed-cached,
fault-tolerant — then feeds the aggregated matrix into the
volume-weighted portfolio ranking.

Run twice to see the cache do its job: the second campaign executes zero
jobs and the ranking comes straight off the stored profiles.
"""

import os
import tempfile

from repro.core.optimization import hardware_options
from repro.core.optimization.portfolio import portfolio_table
from repro.fleet import (CampaignJob, build_matrix, campaign_matrix,
                         matrix_table, rank_portfolio, run_campaign)
from repro.soc.config import tc1797_config
from repro.workloads import CustomerGenerator

CACHE_DIR = os.path.join(tempfile.gettempdir(), "repro-fleet-cache")
CAMPAIGN_DIR = os.path.join(tempfile.gettempdir(), "repro-fleet-campaign")


def main():
    customers = CustomerGenerator(seed=42).generate(8)
    jobs = build_matrix(customers, cycle_budgets=(60_000,), seed=9)

    # a fault drill rides along: it will crash, be retried, and end up
    # quarantined without disturbing the eight real jobs
    jobs = jobs + [CampaignJob(name="fault-drill", domain="engine",
                               device="tc1797", params={}, cycles=10_000,
                               seed=9, fault="crash")]

    report = run_campaign(jobs, workers=4, cache_dir=CACHE_DIR,
                          campaign_dir=CAMPAIGN_DIR, max_retries=1,
                          backoff_s=0.05)

    print("campaign metrics:")
    print(report.metrics.summary_table())
    print()
    print("population profile matrix (decoded from trace messages):")
    print(matrix_table(campaign_matrix(report.records)))
    for record in report.quarantined:
        print(f"\nquarantined: {record['job_id']} — {record['error']}")

    print("\nvolume-weighted hardware-option ranking over the population:")
    entries = rank_portfolio(customers, report.records, tc1797_config(),
                             hardware_options(), work_instructions=40_000,
                             seed=9)
    print(portfolio_table(entries))
    print(f"\nartifacts: {report.store_path}\n           "
          f"{report.aggregate_path}")
    print("re-run this script: the campaign will be 100% cache hits")


if __name__ == "__main__":
    main()
