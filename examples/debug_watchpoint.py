#!/usr/bin/env python3
"""Debugging a shared-variable corruption with watchpoints and trace.

Paper Section 3: the MCDS enables "accurate tracing of concurrency-related
bugs, including shared variable-access problems".  Scenario: a DSPR flag
is being clobbered; we guard it with a watchpoint, let the system run at
full speed, and when the core halts we read the trigger-stopped trace to
see who wrote it and what executed just before.
"""

from repro.analysis import TraceDecoder
from repro.ed.device import EdConfig, EmulationDevice
from repro.mcds.debug import resume
from repro.soc.config import tc1797_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads.program import ProgramBuilder

GUARDED = amap.DSPR_BASE + 0x7F0


def build_program():
    builder = ProgramBuilder()
    main = builder.function("main")
    top = main.label("top")
    main.alu(12)
    main.call("worker_a")
    main.alu(8)
    main.call("worker_b")
    main.jump(top)

    worker_a = builder.function("worker_a")
    worker_a.alu(6)
    worker_a.store(isa.FixedAddr(amap.DSPR_BASE + 0x100))
    worker_a.ret()

    # worker_b occasionally writes the guarded flag — the "bug"
    worker_b = builder.function("worker_b")
    worker_b.alu(4)
    worker_b.branch(isa.TakenPeriodic(37), "oops")
    worker_b.store(isa.FixedAddr(amap.DSPR_BASE + 0x104))
    worker_b.ret()
    worker_b.label("oops")
    worker_b.store(isa.FixedAddr(GUARDED))
    worker_b.ret()
    return builder.assemble()


def main():
    program = build_program()
    device = EmulationDevice(EdConfig(soc=tc1797_config(), emem_kb=32),
                             seed=2026)
    device.load_program(program)
    device.mcds.add_program_trace(sync_period=64)
    watchpoint = device.mcds.add_watchpoint((GUARDED, GUARDED + 4),
                                            writes_only=True)

    device.run(500_000)

    if not device.cpu.debug_halt:
        print("watchpoint never hit")
        return
    cycle, addr, master = watchpoint.hits[0]
    print(f"core halted: write to 0x{addr:08x} by '{master}' "
          f"at cycle {cycle}")
    print(f"stopped at PC 0x{device.cpu.pc:08x} in "
          f"'{program.function_of(device.cpu.pc)}'")

    decoded = TraceDecoder(program).decode(device.emem.contents())
    recent = [d for d in decoded.discontinuities if d[0] <= cycle][-5:]
    print("control flow leading to the write:")
    for event_cycle, target in recent:
        print(f"  cycle {event_cycle:>7}: -> "
              f"{program.function_of(target)} (0x{target:08x})")

    watchpoint.enabled = False
    resume(device.cpu)
    device.run(1000)
    print(f"resumed; core retired {device.cpu.retired} instructions total")


if __name__ == "__main__":
    main()
