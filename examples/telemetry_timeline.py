"""Telemetry quickstart: one instrumented campaign, three artifacts.

Installs the :mod:`repro.obs` telemetry layer around an in-process fleet
campaign with a small fault plan, so every layer shows up in one
correlated set of outputs:

* ``telemetry_trace.json`` — a Chrome trace-event timeline.  Open it in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and you see
  the ``campaign`` span containing per-job ``job.execute`` spans, each
  wrapping its ``sim.advance`` kernel spans and ``pipeline.decode``
  stage, with instant markers where faults were injected and trace gaps
  opened;
* ``telemetry_metrics.prom`` — Prometheus text metrics covering the
  kernel (cycles, advance spans, component ticks), the trace pipeline
  (messages, bits, losses, gaps), faults, and the fleet;
* ``telemetry_events.jsonl`` — the structured event log, every record
  carrying the same ``run_id``.

Telemetry is strictly read-only: running this with the layer installed
produces byte-identical campaign payloads to running without it.
"""

import json

from repro.faults import FaultPlan
from repro.fleet import build_matrix, run_campaign
from repro.obs import telemetry
from repro.workloads import CustomerGenerator

PLAN = FaultPlan(seed=7, rules=(
    {"site": "emem.drop", "probability": 0.3, "max_faults": 10},
), description="drop a few trace messages so gap instants appear")


def main():
    customers = CustomerGenerator(seed=42).generate(3)
    jobs = build_matrix(customers, cycle_budgets=(40_000,), seed=9)

    # workers=0 keeps every job in this process, so all hook sites record
    # into the one installed Telemetry
    with telemetry(run_id="example") as tel:
        report = run_campaign(jobs, workers=0,
                              fault_plan=PLAN.to_dict())

    print(report.metrics.summary_table())
    written = tel.write_outputs("telemetry_trace.json",
                                "telemetry_metrics.prom",
                                "telemetry_events.jsonl")
    for kind, path in sorted(written.items()):
        print(f"{kind}: {path}")

    trace = json.loads(tel.tracer.to_chrome())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    print(f"\ntimeline: {len(spans)} spans, {len(instants)} instant "
          f"markers (faults, gaps)")
    fired = tel.registry.get("repro_faults_injected_total").children
    for child in fired:
        print(f"  injected {child.value:.0f}x {child.labelvalues[0]}")
    print("\nopen telemetry_trace.json in https://ui.perfetto.dev "
          "to browse the timeline")


if __name__ == "__main__":
    main()
