#!/usr/bin/env python3
"""The SoC architect's workflow: quantify and rank next-generation options.

Paper Sections 4 and 6: profile customer applications on the current
device, decompose the CPI, predict each candidate improvement analytically
from the statistical data (here additionally validated by re-simulation),
and rank everything by performance-gain/cost ratio.
"""

from repro.core.optimization import (OptionEvaluator, full_catalog, report)
from repro.soc.config import tc1797_config
from repro.workloads import EngineControlScenario, TransmissionScenario


def explore(scenario, work=120_000):
    print(f"\n##### workload: {scenario.name} #####")
    evaluator = OptionEvaluator(scenario, tc1797_config(), full_catalog(),
                                work_instructions=work, seed=7)
    context = evaluator.run_baseline()

    print(f"baseline: {context.cycles} cycles for {work} instructions "
          f"(CPI {context.stack.cpi:.3f})")
    print("\nCPI stack — where the cycles go:")
    print(context.stack.as_table())
    print(f"\ncaptured replay traces: "
          f"{len(context.captures.fetch_addresses)} fetch lines, "
          f"{len(context.captures.data_addresses)} flash data reads")

    results = evaluator.evaluate()
    print("\noption ranking (performance-gain / cost ratio):")
    print(report.ranking_table(results))
    print("\nanalytic-model validation:")
    print(report.validation_table(results))

    best = results[0]
    print(f"\nrecommendation: '{best.option.title}' "
          f"({best.option.description}) — "
          f"{best.measured_gain_percent:.1f}% gain at cost "
          f"{best.option.area_cost:.0f}")


def main():
    explore(EngineControlScenario())
    explore(TransmissionScenario())


if __name__ == "__main__":
    main()
