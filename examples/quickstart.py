#!/usr/bin/env python3
"""Quickstart: build a TC1797ED, run an application, read a profile.

Walks the minimal end-to-end path of the library:

1. assemble a tiny application with the program builder;
2. instantiate an Emulation Device (product chip + EEC);
3. configure two MCDS counter structures (IPC + I-cache miss rate);
4. run, download the trace over the DAP, and print the decoded rates.
"""

from repro.core.profiling import ProfilingSession, spec
from repro.ed import EmulationDevice, tc1797ed_config
from repro.soc.cpu import isa
from repro.soc.memory import map as amap
from repro.workloads import ProgramBuilder


def build_program():
    """A small control loop: math, a flash table lookup, state updates."""
    builder = ProgramBuilder()
    main = builder.function("main")
    top = main.label("top")
    main.alu(6)
    main.load(isa.TableAddr(amap.PFLASH_BASE + 0x10_0000, 4, 4096,
                            locality=0.85))
    main.alu(4)
    main.store(isa.FixedAddr(amap.DSPR_BASE + 0x100))
    main.loop(8, lambda f: f
              .load(isa.StrideAddr(amap.DSPR_BASE + 0x200, 4, 64))
              .mac(2))
    main.jump(top)
    return builder.assemble()


def main():
    device = EmulationDevice(tc1797ed_config())
    print("Device blocks:", ", ".join(device.block_inventory()))
    print("Tool access paths:")
    for path in device.access_paths():
        print("  " + " -> ".join(path))

    device.load_program(build_program())
    session = ProfilingSession(device, [
        spec.ipc(resolution=256),
        spec.icache_miss_rate(per=100),
        spec.flash_data_access_rate(per=100),
    ])
    result = session.run(100_000)

    print("\nProfile after 100k cycles:")
    print(result.summary_table())

    messages, seconds = device.dap.download_all()
    print(f"\nDAP upload: {len(messages)} messages in {seconds * 1e3:.2f} ms "
          f"of wire time at {device.dap.bandwidth_mbps} Mbit/s")
    ipc = result.mean_rate("tc.ipc")
    miss = result.mean_rate("icache.miss_rate") * 100
    print(f"IPC {ipc:.3f}; {miss:.1f} I-cache misses per 100 instructions "
          f"(hit rate {100 - miss:.1f}%, paper-example semantics)")


if __name__ == "__main__":
    main()
