"""E4 — Tool-interface bandwidth: on-chip rate generation vs external
counter sampling (paper Section 5, last paragraph, and Section 6).

"Instead of sampling by the external tool at least two long counters
(executed instructions, measured event, etc.) only a single trace message
with the counted events is stored.  This is especially important as the
bandwidth of the tool interface does not scale with the CPU frequency."

For each CPU frequency we measure the wire rate of (a) the enhanced
approach — compact rate-sample messages generated on chip — and (b) the
conventional approach — the tool sampling two 32-bit counters per
parameter per window over the debug interface.  The enhanced approach must
win by a large factor, and the advantage must grow (or at least hold) as
the CPU clock rises while the DAP stays at 16 Mbit/s.
"""

import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.mcds.messages import MessageFactory
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 150_000
FREQUENCIES = (80, 133, 180, 270, 360)
DAP_MBPS = 16.0
RATE_PER = 5000      # instructions per rate window (streaming-grade)
IPC_RES = 4096
#: a tool-initiated counter read is a DAP transaction: command + address
#: on top of the 32-bit data word
DAP_READ_OVERHEAD_BITS = 32


def run_experiment():
    rows = []
    for freq in FREQUENCIES:
        config = tc1797_config()
        config.cpu.frequency_mhz = freq
        device = EngineControlScenario().build(config, {}, seed=4)
        session = ProfilingSession(device, spec.engine_parameter_set(
            ipc_resolution=IPC_RES, rate_per=RATE_PER))
        result = session.run(CYCLES)
        enhanced_mbps = result.bandwidth_mbps()

        # conventional approach: the external tool reads two raw 32-bit
        # counters per parameter per window over the same interface, each
        # read being a full DAP transaction (command + address + data)
        samples = sum(len(result[name]) for name in result.names)
        factory = MessageFactory(timestamp_enabled=False)
        raw_pair_bits = 2 * (factory.counter_raw(0, "c", 2**31).bits
                             + DAP_READ_OVERHEAD_BITS)
        conventional_bits = samples * raw_pair_bits
        seconds = CYCLES / (freq * 1e6)
        conventional_mbps = conventional_bits / seconds / 1e6

        rows.append({
            "freq": freq,
            "samples": samples,
            "enhanced": enhanced_mbps,
            "conventional": conventional_mbps,
            "ratio": conventional_mbps / enhanced_mbps,
            "fits": enhanced_mbps <= DAP_MBPS,
        })
    return rows


def render(rows):
    lines = [f"{'MHz':>5}{'samples':>9}{'enhanced':>11}{'conventional':>14}"
             f"{'ratio':>7}{'fits 16Mbit DAP':>17}"]
    for r in rows:
        lines.append(
            f"{r['freq']:>5}{r['samples']:>9}{r['enhanced']:>10.2f}M"
            f"{r['conventional']:>13.2f}M{r['ratio']:>7.1f}"
            f"{str(r['fits']):>17}")
    lines.append(f"rate windows: IPC per {IPC_RES} cycles, events per "
                 f"{RATE_PER} instr; conventional = 2 DAP counter-read "
                 f"transactions per window")
    return lines


@pytest.mark.benchmark(group="e4")
def test_e4_tool_interface_bandwidth(benchmark):
    rows = once(benchmark, run_experiment)
    emit("E4", "on-chip rate generation vs external counter sampling",
         render(rows))
    for r in rows:
        # the enhanced approach wins big at every frequency
        assert r["ratio"] > 2.5, r
    # the enhanced approach stays within a fixed DAP across the sweep
    assert all(r["fits"] for r in rows)
    # the conventional approach's requirement grows with frequency and
    # eventually dwarfs the fixed DAP budget
    conventional = [r["conventional"] for r in rows]
    assert conventional[-1] > conventional[0]
    assert conventional[-1] > DAP_MBPS
