"""E5 — Architecture-option ranking by performance-gain/cost ratio.

The methodology's deliverable (paper Sections 1, 4, 6): "This allows an
objective assessment of improvement options by comparing their performance
cost ratios."  Profiles the engine-control workload on the TC1797-like
baseline, evaluates the full hardware + software option catalog, and
regenerates the ranking table.

Shape expectation from DESIGN.md: flash-path options dominate the hardware
ranking — "the path from CPU to flash is the main lever" (Section 4).
"""

import pytest

from repro.core.optimization import (OptionEvaluator, full_catalog, report)
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

WORK_INSTRUCTIONS = 150_000
FLASH_PATH_OPTIONS = {"icache_x2", "flash_25ns", "prefetch_x4", "dbuf_x4",
                      "dcache_4k", "banks_x4"}


def run_experiment():
    evaluator = OptionEvaluator(EngineControlScenario(), tc1797_config(),
                                full_catalog(),
                                work_instructions=WORK_INSTRUCTIONS,
                                seed=5)
    context = evaluator.run_baseline()
    results = evaluator.evaluate()
    return context, results


@pytest.mark.benchmark(group="e5")
def test_e5_option_ranking(benchmark):
    context, results = once(benchmark, run_experiment)
    lines = [f"baseline: CPI {context.stack.cpi:.3f} "
             f"(IPC {context.stack.ipc:.3f}) over {context.cycles} cycles",
             "", "CPI stack:"]
    lines.extend(context.stack.as_table().splitlines())
    lines.extend(["", report.ranking_table(results)])
    emit("E5", "option ranking by performance-gain/cost ratio", lines)

    # ranking is strictly by the methodology's metric
    ratios = [r.gain_cost_ratio for r in results]
    assert ratios == sorted(ratios, reverse=True)
    # flash-path dominance: best absolute hardware gain is a flash-path fix
    hw = [r for r in results if r.option.kind == "hardware"]
    best_hw = max(hw, key=lambda r: r.measured_gain_percent)
    assert best_hw.option.key in FLASH_PATH_OPTIONS
    assert best_hw.measured_gain_percent > 5.0
    # the flash-dominated CPI stack motivates it
    flash_cpi = (context.stack.components["fetch_stall"]
                 + context.stack.components["load_stall"])
    assert flash_cpi > 0.25
