"""E16 — Telemetry overhead: the disabled hooks must cost ~nothing.

Every hot-path instrumentation site in the simulator, trace pipeline, and
fleet guards on a single module attribute (``repro.obs.runtime._active``),
the same pattern the fault injector uses.  E16 measures the E15 engine
workload in three legs — naive kernel, quiescent kernel with telemetry
off, quiescent kernel with telemetry on — asserts byte-identity of every
observable across all three, and gates:

* **disabled overhead** (the ≤2%-target contract): the quiescent/naive
  speedup with telemetry off must stay within the committed E15 baseline
  envelope (75% floor, the repo's CI-noise policy; the measured
  percentage against the baseline is reported so drift is visible long
  before the gate trips);
* **enabled overhead**: full recording — advance spans, decode spans,
  metric counters — must cost less than 25% of throughput, since hooks
  only fire at advance/pipeline boundaries, never per cycle.

Outputs ``BENCH_obs.json`` at the repo root for the CI perf-smoke lane's
artifact upload.
"""

import json
import os
import time

import pytest

from repro.obs import telemetry
from repro.soc.config import tc1797_config
from repro.soc.kernel import kernel_mode
from repro.workloads import EngineControlScenario

from _common import emit, once

CYCLES = 200_000
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "kernel_baseline.json")
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_obs.json")


def observables(device):
    """Same contract as E15: what a profiling run can see."""
    cpu = device.soc.cpu
    return {
        "oracle": device.soc.hub.snapshot(),
        "pc": cpu.pc,
        "retired": cpu.retired,
        "halt_cycles": cpu.halt_cycles,
        "mcds_messages": device.mcds.total_messages,
        "mcds_bits": device.mcds.total_bits,
        "emem_messages": device.emem.message_count,
    }


def run_leg(mode, instrumented):
    with kernel_mode(mode):
        device = EngineControlScenario().build(tc1797_config(), {})
    if instrumented:
        with telemetry() as tel:
            t0 = time.perf_counter()
            device.run(CYCLES)
            wall = time.perf_counter() - t0
        recorded = len(tel.tracer)
    else:
        t0 = time.perf_counter()
        device.run(CYCLES)
        wall = time.perf_counter() - t0
        recorded = 0
    return observables(device), CYCLES / wall, recorded


def run_experiment():
    # warm-up leg so the first timed run is not charged for imports
    with kernel_mode("naive"):
        EngineControlScenario().build(tc1797_config(), {}).run(5_000)
    naive_obs, naive_cps, _ = run_leg("naive", False)
    off_obs, off_cps, _ = run_leg("quiescent", False)
    on_obs, on_cps, spans = run_leg("quiescent", True)
    assert off_obs == naive_obs, \
        "telemetry-off quiescent leg diverged from naive observables"
    assert on_obs == off_obs, \
        "installing telemetry changed simulation observables"
    return {
        "naive_cps": naive_cps,
        "off_cps": off_cps,
        "on_cps": on_cps,
        "speedup_off": off_cps / naive_cps,
        "enabled_overhead": 1.0 - on_cps / off_cps,
        "trace_events": spans,
    }


@pytest.mark.benchmark(group="e16")
def test_e16_obs_overhead(benchmark):
    data = once(benchmark, run_experiment)
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)["engine"]["speedup"]

    # how far the hooks-compiled-in, telemetry-off engine speedup sits
    # from the committed pre-hook baseline (positive = slower)
    drift = 1.0 - data["speedup_off"] / baseline
    emit("E16", "telemetry overhead (hooks disabled vs enabled)", [
        f"{'leg':<22}{'cycles/s':>14}",
        f"{'naive, off':<22}{data['naive_cps']:>14,.0f}",
        f"{'quiescent, off':<22}{data['off_cps']:>14,.0f}",
        f"{'quiescent, on':<22}{data['on_cps']:>14,.0f}",
        "",
        f"engine speedup with hooks disabled: {data['speedup_off']:.2f}x "
        f"(baseline {baseline:.2f}x, drift {100 * drift:+.1f}%; "
        f"target <= 2%)",
        f"enabled-telemetry overhead: "
        f"{100 * data['enabled_overhead']:.1f}% "
        f"({data['trace_events']} trace events recorded)",
        "byte-identity asserted across all three legs.",
    ])

    with open(BENCH_PATH, "w") as handle:
        json.dump({"cycles": CYCLES, "engine": data}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")

    # the disabled-hook gate, expressed as the repo's standard noisy-CI
    # envelope around the committed E15 engine baseline: a hook on the
    # advance path that actually cost per-cycle time would collapse the
    # speedup far past this floor
    assert data["speedup_off"] >= 0.75 * baseline, \
        f"telemetry-off engine speedup {data['speedup_off']:.2f}x fell " \
        f"below 75% of the committed baseline ({baseline:.2f}x) — the " \
        f"disabled hooks are no longer near-zero-cost"
    # recording costs bounded too: hooks fire per advance, not per cycle
    assert data["enabled_overhead"] <= 0.25, \
        f"enabled telemetry costs {100 * data['enabled_overhead']:.0f}% " \
        f"of throughput (limit 25%)"
