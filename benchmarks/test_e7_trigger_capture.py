"""E7 — Triggering close to the point of interest (paper Section 3).

"Since the on-chip trace memory is limited, it is very important to be
able to trigger close to the point of interest.  For this purpose MCDS
allows to define very complex conditions ... It is for instance possible
to trigger on events not happening in a defined time window."

We capture a sporadic anomaly burst with a deliberately small EMEM (16 KB)
in two ways:

* free-running ring capture stopped at the end of the run — by then the
  anomaly has usually wrapped out of the buffer;
* trigger-stop capture armed by an IPC-threshold condition — the buffer
  freezes around the anomaly.

A window-watchdog trigger ("heartbeat missing") is exercised on the same
run: the crank interrupt stops arriving during the anomaly-induced
overload... here we watch the eeprom heartbeat with a window shorter than
its period to show deterministic firing.
"""

import pytest

from repro.ed.device import EdConfig
from repro.mcds.trigger import RateThreshold, Trigger, WindowWatchdog
from repro.mcds.counters import CYCLES as CYCLE_BASIS
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 300_000
ANOMALY_PERIOD = 60_000
PARAMS = {"anomaly": True, "anomaly_period": ANOMALY_PERIOD,
          "anomaly_len": 400}
SMALL_EMEM_KB = 16


def anomaly_cycles():
    """Ground-truth anomaly burst start cycles (timer phase + period)."""
    phase = ANOMALY_PERIOD // 3
    starts = []
    cycle = ANOMALY_PERIOD  # PeriodicTimer first fires after one period...
    starts = [c for c in range(phase, CYCLES, ANOMALY_PERIOD)]
    return starts


def in_anomaly_share(messages, starts, window=6000):
    if not messages:
        return 0.0
    hits = 0
    for msg in messages:
        if any(s <= msg.cycle <= s + window for s in starts):
            hits += 1
    return hits / len(messages)


def build(seed=7):
    scenario = EngineControlScenario(
        ed_config_overrides={"emem_kb": SMALL_EMEM_KB})
    return scenario.build(tc1797_config(), PARAMS, seed=seed)


def run_experiment():
    starts = anomaly_cycles()

    # (a) free running: trace everything, read the buffer post mortem
    free = build()
    free.mcds.add_program_trace(cycle_accurate=True)
    free.run(CYCLES)
    free_share = in_anomaly_share(free.emem.contents(), starts)
    free_history = free.emem.history_cycles()

    # (b) trigger-stop: an IPC-dip condition freezes the capture
    trig = build()
    trig.mcds.add_program_trace(cycle_accurate=True)
    ipc_low = trig.mcds.add_rate_counter(
        "ipc.trigger", ["tc.instr_executed"], 256, basis=CYCLE_BASIS)
    condition = RateThreshold(ipc_low, int(0.5 * 256))
    trig.mcds.add_trigger(Trigger(
        "anomaly_seen", condition,
        on_enter=lambda cycle: trig.emem.trigger_stop(cycle, 0.5)))
    trig.run(CYCLES)
    trig_share = in_anomaly_share(trig.emem.contents(), starts)

    # (c) watchdog: the eeprom heartbeat (every ~360k cycles at 180 MHz)
    # watched with a 50k window fires deterministically
    dog_dev = build()
    watchdog = WindowWatchdog(dog_dev.hub, "dflash.access", window=50_000)
    dog_dev.mcds.add_trigger(Trigger(
        "missing_heartbeat", watchdog,
        on_enter=lambda cycle: None))
    dog_dev.run(CYCLES)

    return {
        "free_share": free_share,
        "free_history": free_history,
        "trig_share": trig_share,
        "trigger_cycle": trig.emem.trigger_cycle,
        "anomaly_starts": starts,
        "watchdog_timeouts": watchdog.timeouts,
    }


@pytest.mark.benchmark(group="e7")
def test_e7_trigger_close_to_point_of_interest(benchmark):
    r = once(benchmark, run_experiment)
    lines = [
        f"EMEM: {SMALL_EMEM_KB} KB; anomaly bursts at "
        f"{r['anomaly_starts'][:3]}... every {ANOMALY_PERIOD} cycles",
        f"{'capture mode':<22}{'share of buffer on anomaly':>28}",
        f"{'free-running ring':<22}{r['free_share']:>27.1%}",
        f"{'IPC trigger-stop':<22}{r['trig_share']:>27.1%}",
        f"trigger fired at cycle {r['trigger_cycle']} "
        f"(first burst at {r['anomaly_starts'][0]})",
        f"window-watchdog (event missing in window): "
        f"{r['watchdog_timeouts']} timeouts",
    ]
    emit("E7", "trigger-stop capture vs free-running trace", lines)
    # the triggered capture concentrates the tiny buffer on the anomaly
    assert r["trig_share"] > 4 * max(r["free_share"], 0.01)
    # and fired inside the first anomaly burst
    first = r["anomaly_starts"][0]
    assert first <= r["trigger_cycle"] <= first + 8000
    # the missing-event watchdog fires (eeprom heartbeat slower than window)
    assert r["watchdog_timeouts"] > 3
