"""A1 — Flash port arbitration ablation (DESIGN.md Section 6).

The paper lists "arbitration between the code and data ports of the flash"
among the complex mechanisms of the CPU→flash path.  Our model lets the
data port abort in-flight speculative code prefetches
(``data_port_priority``).  The ablation shows the trade both ways: demand
data reads get faster, speculative code fetches lose some coverage —
exactly the kind of second-order effect the ED measurements exist to make
visible before an architect commits to a policy.
"""

import pytest

from repro.core.optimization import CpiStack
from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 200_000


def run_experiment():
    rows = {}
    for priority in (True, False):
        config = tc1797_config()
        config.flash.data_port_priority = priority
        device = EngineControlScenario().build(config, {}, seed=30)
        device.run(CYCLES)
        counts = device.oracle()
        stack = CpiStack.from_counts(counts, device.cycle, config)
        rows[priority] = {
            "ipc": stack.ipc,
            "load_cpi": stack.components["load_stall"],
            "fetch_cpi": stack.components["fetch_stall"],
            "conflict_waits": counts[signals.PFLASH_PORT_CONFLICT],
        }
    return rows


@pytest.mark.benchmark(group="a1")
def test_a1_data_port_priority(benchmark):
    rows = once(benchmark, run_experiment)
    lines = [f"{'data_port_priority':<20}{'IPC':>8}{'load CPI':>10}"
             f"{'fetch CPI':>11}{'conflict waits':>16}"]
    for priority, r in rows.items():
        lines.append(f"{str(priority):<20}{r['ipc']:>8.4f}"
                     f"{r['load_cpi']:>10.4f}{r['fetch_cpi']:>11.4f}"
                     f"{r['conflict_waits']:>16}")
    lines.append("priority aborts speculative prefetches for demand data "
                 "reads: load stalls shrink, fetch stalls grow")
    emit("A1", "flash code/data port arbitration ablation", lines)

    with_prio, without = rows[True], rows[False]
    assert with_prio["load_cpi"] < without["load_cpi"]
    assert with_prio["fetch_cpi"] > without["fetch_cpi"]
    # the demand reads never queue behind speculative work
    assert with_prio["conflict_waits"] < without["conflict_waits"]
    # net effect is small either way — a policy choice, not a free win
    assert abs(with_prio["ipc"] - without["ipc"]) < 0.05
