"""E17 — Batch-lane portfolio throughput vs the scalar per-customer loop.

The batch backend (``repro.batch``) replaces the live measurement plane —
counter structures, message encoding, EMEM storage, session decode — with
an emission log per lane plus one vectorized reconstruction pass, and
fans N same-config portfolio customers into one ``LaneSimulator``.  Its
advantage therefore *grows with measurement density*: the scalar worker
pays per sample, the lanes pay (almost) only for the simulation itself.

Two legs, both through the real fleet worker entry points:

* **fine** — the finest measurement grid the EMEM trace share can hold
  without degradation (a rate sample per instruction): the workload the
  backend exists for, gated at >= 5x.
* **default** — the campaign defaults (ipc 256, rate_per 100): the
  typical-case speedup, reported transparently and regression-gated
  against the committed baseline only.

Byte-identity is asserted payload-for-payload across every lane before
any speedup is reported — the backend's contract is that results never
depend on which backend ran.

Outputs ``BENCH_batch.json`` at the repo root for the CI perf-smoke
lane, which compares measured speedups against the committed baseline in
``benchmarks/batch_baseline.json`` and fails on a >25% regression.
"""

import gc
import json
import os
import time

import pytest

from repro.fleet.spec import build_matrix
from repro.fleet.worker import execute_job, run_batch_shard
from repro.workloads import CustomerGenerator

from _common import emit, once

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "batch_baseline.json")
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_batch.json")

#: (leg, lanes, cycles, ipc_resolution, rate_per)
LEGS = [
    ("fine", 64, 20_000, 32, 1),
    ("default", 16, 100_000, 256, 100),
]


def engine_jobs(lanes, cycles, ipc_resolution, rate_per):
    """One same-config engine portfolio: N customers, one group key."""
    customers = CustomerGenerator(
        seed=2008, domain_mix=(1, 0, 0, 0)).generate(lanes)
    return [job.to_dict() for job in build_matrix(
        customers, devices=("tc1797",), cycle_budgets=(cycles,),
        seed=2008, ipc_resolution=ipc_resolution, rate_per=rate_per)]


def canon(payload):
    return json.dumps(payload, sort_keys=True)


def run_leg(lanes, cycles, ipc_resolution, rate_per):
    jobs = engine_jobs(lanes, cycles, ipc_resolution, rate_per)

    # each leg holds exactly what the real shard would hold: its own
    # payloads.  Between legs only the canonical strings survive, and a
    # collect levels the GC field so neither leg is billed for the other
    # leg's live object graph.
    gc.collect()
    t0 = time.perf_counter()
    scalar = [execute_job(job) for job in jobs]
    scalar_s = time.perf_counter() - t0
    assert max(s["profile"]["lost_messages"] for s in scalar) == 0, \
        "workload overflows the EMEM; lanes would have refused it"
    scalar_canon = [canon(s) for s in scalar]
    del scalar

    gc.collect()
    t0 = time.perf_counter()
    outcomes = run_batch_shard(jobs)
    batch_s = time.perf_counter() - t0

    assert all(o["status"] == "ok" for o in outcomes)
    assert [o["job"]["name"] for o in outcomes] == \
        [job["name"] for job in jobs]
    # the gate: every lane's payload byte-identical to the scalar worker's
    mismatches = [job["name"] for job, o, s in
                  zip(jobs, outcomes, scalar_canon)
                  if canon(o["payload"]) != s]
    assert not mismatches, \
        f"batch payloads diverged from scalar for {mismatches}"

    return {
        "lanes": lanes,
        "cycles": cycles,
        "ipc_resolution": ipc_resolution,
        "rate_per": rate_per,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "scalar_per_job_s": scalar_s / lanes,
        "batch_per_job_s": batch_s / lanes,
        "speedup": scalar_s / batch_s,
    }


def run_experiment():
    # warm interpreter caches so the first timed leg is not charged for
    # process warm-up (same discipline as E15)
    execute_job(engine_jobs(1, 5_000, 256, 100)[0])
    return {name: run_leg(lanes, cycles, ipc, rate)
            for name, lanes, cycles, ipc, rate in LEGS}


@pytest.mark.benchmark(group="e17")
def test_e17_batch_lanes(benchmark):
    data = once(benchmark, run_experiment)
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)

    lines = [
        f"{'leg':<9}{'lanes':>6}{'cycles':>8}{'ipc':>5}{'rate':>5}"
        f"{'scalar s':>10}{'batch s':>9}{'speedup':>9}{'baseline':>10}",
    ]
    for name, r in data.items():
        lines.append(
            f"{name:<9}{r['lanes']:>6}{r['cycles']:>8}"
            f"{r['ipc_resolution']:>5}{r['rate_per']:>5}"
            f"{r['scalar_s']:>10.2f}{r['batch_s']:>9.2f}"
            f"{r['speedup']:>8.2f}x{baseline[name]['speedup']:>9.2f}x")
    lines += [
        "",
        "byte-identity asserted payload-for-payload on every lane of",
        "both legs before any speedup was reported.",
    ]
    emit("E17", "batch-lane portfolio vs scalar per-customer loop", lines)

    with open(BENCH_PATH, "w") as handle:
        json.dump({"legs": data}, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # acceptance floor (ISSUE): a same-config engine portfolio on the
    # finest supported grid runs >= 5x faster through the lanes
    assert data["fine"]["speedup"] >= 5.0
    # perf smoke: >25% regression against the committed baseline fails
    for name, r in data.items():
        floor = 0.75 * baseline[name]["speedup"]
        assert r["speedup"] >= floor, \
            f"{name}: speedup {r['speedup']:.2f}x regressed below " \
            f"75% of the committed baseline ({floor:.2f}x)"
