"""E2 — Event rates on the executed-instruction basis (paper Section 5).

Regenerates the paper's worked examples: "4 instruction cache misses during
the last 100 executed instructions respond to an instruction cache hit rate
of 96%.  6 CPU data reads from the flash within the last 100 executed
instructions are identical to a CPU data flash access rate of 6%."

Also runs the per-cycle-basis ablation from DESIGN.md: the same events
normalised by clock cycles mislead during stall phases, which is exactly
why the paper normalises by executed instructions.
"""

import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 200_000

PARAMETERS = [
    ("icache.miss_rate", signals.ICACHE_MISS),
    ("flash.data_access_rate", signals.PFLASH_DATA_ACCESS),
    ("flash.data_buffer_hit_rate", signals.PFLASH_BUF_HIT_DATA),
    ("dspr.access_rate", signals.DSPR_ACCESS),
    ("lmu.access_rate", signals.LMU_ACCESS),
    ("tc.load_stall_rate", signals.TC_STALL_LOAD),
]


def run_experiment():
    device = EngineControlScenario().build(tc1797_config(), {}, seed=2)
    specs = [spec.rate(name, signal, per=100)
             for name, signal in PARAMETERS]
    specs.append(spec.interrupt_rate(per=1000))
    session = ProfilingSession(device, specs)
    result = session.run(CYCLES)
    counts = device.oracle()
    instr = counts[signals.TC_INSTR]
    rows = []
    for name, signal in PARAMETERS:
        measured = result.mean_rate(name) * 100
        oracle = counts[signal] / instr * 100
        rows.append((name, measured, oracle))
    irq_measured = result.mean_rate("irq.rate") * 1000
    irq_oracle = counts[signals.IRQ_TAKEN] / instr * 1000

    # ablation: the same stall events on a per-cycle basis
    device2 = EngineControlScenario().build(tc1797_config(), {}, seed=2)
    session2 = ProfilingSession(device2, [
        spec.ParameterSpec("stall_per_cycle", (signals.TC_STALL_LOAD,),
                           100, "cycles"),
    ])
    result2 = session2.run(CYCLES)
    per_cycle = result2.mean_rate("stall_per_cycle") * 100
    per_instr = [m for n, m, o in rows if n == "tc.load_stall_rate"][0]
    return rows, (irq_measured, irq_oracle), (per_instr, per_cycle)


def render(rows, irq, ablation):
    lines = [f"{'parameter':<30}{'per 100 instr':>14}{'oracle':>9}"]
    for name, measured, oracle in rows:
        lines.append(f"{name:<30}{measured:>13.2f}%{oracle:>8.2f}%")
    miss = [m for n, m, o in rows if n == "icache.miss_rate"][0]
    flash = [m for n, m, o in rows if n == "flash.data_access_rate"][0]
    lines.append(f"paper semantics: {miss:.1f} I$ misses per 100 instr "
                 f"-> hit rate {100 - miss:.1f}% "
                 f"(paper example: 4 -> 96%)")
    lines.append(f"CPU data flash access rate: {flash:.1f}% "
                 f"(paper example: 6%)")
    lines.append(f"interrupts per 1000 instr: measured {irq[0]:.2f}, "
                 f"oracle {irq[1]:.2f}")
    lines.append(f"ablation — load-stall events per 100 instructions: "
                 f"{ablation[0]:.2f} vs per 100 cycles: {ablation[1]:.2f} "
                 f"(cycle basis inflates during stall phases)")
    return lines


@pytest.mark.benchmark(group="e2")
def test_e2_event_rates(benchmark):
    rows, irq, ablation = once(benchmark, run_experiment)
    emit("E2", "event rates per 100 executed instructions",
         render(rows, irq, ablation))
    for name, measured, oracle in rows:
        assert measured == pytest.approx(oracle, rel=0.10, abs=0.3), name
    miss = [m for n, m, o in rows if n == "icache.miss_rate"][0]
    flash = [m for n, m, o in rows if n == "flash.data_access_rate"][0]
    # same order of magnitude as the paper's worked examples
    assert 0.5 < miss < 25.0
    assert 1.0 < flash < 15.0
    assert irq[0] == pytest.approx(irq[1], rel=0.25, abs=0.2)
