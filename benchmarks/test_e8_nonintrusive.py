"""E8 — Non-intrusiveness of the full measurement stack (paper Section 5).

"all these parameters can be dynamically and in parallel measured,
non-intrusively with a configurable resolution."

Runs the engine workload bare and under the heaviest observation load the
EEC supports (full parameter set, coupled counters, cycle-accurate program
trace, qualified data trace, bus trace, function profiler) and demands
cycle-exact identity of every product-chip observable.
"""

import pytest

from repro.core.profiling import (FunctionProfiler, MultiResolutionRate,
                                  ProfilingSession, spec)
from repro.mcds.counters import CYCLES as CYCLE_BASIS
from repro.soc.config import tc1797_config
from repro.soc.memory import map as amap
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 250_000


def run_once(observe):
    device = EngineControlScenario().build(tc1797_config(),
                                           {"anomaly": True}, seed=8)
    measurement = {}
    if observe:
        ProfilingSession(device, spec.engine_parameter_set())
        MultiResolutionRate(device, "gate", ["tc.instr_executed"],
                            1024, 64, 0.5, basis=CYCLE_BASIS)
        device.mcds.add_program_trace(cycle_accurate=True)
        device.mcds.add_data_trace(
            (amap.PFLASH_BASE, amap.PFLASH_BASE + 0x40_0000))
        device.mcds.add_bus_trace("spb.transfer")
        profiler = FunctionProfiler(device.cpu.program)
        device.cpu.trace.add(profiler)
        measurement["profiler"] = profiler
    device.run(CYCLES)
    return device, measurement


def run_experiment():
    bare, _ = run_once(False)
    observed, measurement = run_once(True)
    return {
        "retired": (bare.cpu.retired, observed.cpu.retired),
        "pc": (bare.cpu.pc, observed.cpu.pc),
        "pcp": (bare.pcp.retired, observed.pcp.retired),
        "dma": (bare.soc.dma.transfers_done,
                observed.soc.dma.transfers_done),
        "oracle_equal": bare.oracle() == observed.oracle(),
        "messages": observed.mcds.total_messages,
        "bits": observed.mcds.total_bits,
        "hot": measurement["profiler"].hotspots(top=1)[0].name,
    }


@pytest.mark.benchmark(group="e8")
def test_e8_nonintrusive_measurement(benchmark):
    r = once(benchmark, run_experiment)
    lines = [
        f"{'observable':<22}{'bare':>12}{'observed':>12}",
        f"{'TC retired':<22}{r['retired'][0]:>12}{r['retired'][1]:>12}",
        f"{'TC final PC':<22}{hex(r['pc'][0]):>12}{hex(r['pc'][1]):>12}",
        f"{'PCP retired':<22}{r['pcp'][0]:>12}{r['pcp'][1]:>12}",
        f"{'DMA transfers':<22}{r['dma'][0]:>12}{r['dma'][1]:>12}",
        f"oracle snapshots identical: {r['oracle_equal']}",
        f"meanwhile the EEC generated {r['messages']} messages "
        f"({r['bits']} bits); hottest function: {r['hot']}",
    ]
    emit("E8", "cycle-exact non-intrusiveness under full observation",
         lines)
    assert r["retired"][0] == r["retired"][1]
    assert r["pc"][0] == r["pc"][1]
    assert r["pcp"][0] == r["pcp"][1]
    assert r["dma"][0] == r["dma"][1]
    assert r["oracle_equal"]
    assert r["messages"] > 10_000     # the observation was real
