"""E10 — Program-trace compression and cycle-accurate mode (paper Sec. 3).

The MCDS is a "trigger, trace qualification, and trace compression logic
block"; AUDO FUTURE added "improved cycle accurate trace".  We measure
trace cost in bits per executed instruction for three modes and translate
each into seconds of history a 512 KB EMEM holds at 180 MHz:

* compressed flow trace (branch messages + periodic syncs) — the default;
* cycle-accurate mode (adds per-cycle executed-count ticks);
* an uncompressed PC dump (32 bits per instruction) as the strawman.
"""

import pytest

from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 200_000
EMEM_BITS = 512 * 1024 * 8
FREQ_HZ = 180e6


def run_experiment():
    modes = {}
    for cycle_accurate in (False, True):
        device = EngineControlScenario().build(tc1797_config(), {}, seed=10)
        ptu = device.mcds.add_program_trace(cycle_accurate=cycle_accurate)
        device.run(CYCLES)
        label = "cycle-accurate" if cycle_accurate else "flow trace"
        bpi = ptu.bits_per_instruction
        instr_per_cycle = device.cpu.retired / CYCLES
        bits_per_second = bpi * instr_per_cycle * FREQ_HZ
        modes[label] = {
            "bpi": bpi,
            "messages": ptu.messages,
            "history_s": EMEM_BITS / bits_per_second,
        }
    # strawman: full 32-bit PC per executed instruction
    ipc = 0.8
    raw_bps = 32 * ipc * FREQ_HZ
    modes["raw PC dump"] = {
        "bpi": 32.0,
        "messages": None,
        "history_s": EMEM_BITS / raw_bps,
    }
    return modes


@pytest.mark.benchmark(group="e10")
def test_e10_trace_compression(benchmark):
    modes = once(benchmark, run_experiment)
    lines = [f"{'mode':<18}{'bits/instr':>12}{'EMEM history @180MHz':>22}"]
    for label, m in modes.items():
        history = (f"{m['history_s'] * 1e3:.2f} ms")
        lines.append(f"{label:<18}{m['bpi']:>12.2f}{history:>22}")
    ratio = modes["raw PC dump"]["bpi"] / modes["flow trace"]["bpi"]
    lines.append(f"flow-trace compression vs raw PC dump: {ratio:.1f}x")
    emit("E10", "program-trace compression and cycle-accurate mode", lines)

    flow = modes["flow trace"]["bpi"]
    ca = modes["cycle-accurate"]["bpi"]
    assert flow < 8.0                       # compressed flow trace is cheap
    assert flow < ca < 32.0                 # CA costs more, still beats raw
    assert modes["flow trace"]["history_s"] > modes["raw PC dump"]["history_s"] * 4
