"""E6 — Analytic model validation: predicted vs re-simulated gains.

The paper's architects quantify options *analytically* from statistical ED
data ("With an analytical methodology and based on this statistical data,
the performance improvements ... can be quantified", abstract).  Here the
simulator provides what the authors' silicon provided — ground truth — so
the analytic predictions can be scored.  The trace-replay predictions
(DESIGN.md ablation) should land within a few gain points.
"""

import pytest

from repro.core.optimization import (OptionEvaluator, full_catalog, report)
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario
from repro.workloads.transmission import TransmissionScenario

from _common import emit, once

WORK_INSTRUCTIONS = 120_000


def run_experiment():
    outputs = {}
    for scenario in (EngineControlScenario(), TransmissionScenario()):
        evaluator = OptionEvaluator(scenario, tc1797_config(),
                                    full_catalog(),
                                    work_instructions=WORK_INSTRUCTIONS,
                                    seed=6)
        outputs[scenario.name] = evaluator.evaluate()
    return outputs


@pytest.mark.benchmark(group="e6")
def test_e6_analytic_model_validation(benchmark):
    outputs = once(benchmark, run_experiment)
    lines = []
    maes = {}
    for name, results in outputs.items():
        lines.append(f"--- workload: {name} ---")
        lines.extend(report.validation_table(results).splitlines())
        lines.append("")
        maes[name] = (sum(r.prediction_error for r in results)
                      / len(results))
    emit("E6", "analytic prediction vs re-simulated speedup", lines)
    for name, mae in maes.items():
        assert mae < 3.0, f"{name}: MAE {mae:.2f} gain points"
    # predictions must preserve the *ordering* of the top options
    for results in outputs.values():
        by_measured = sorted(results, key=lambda r: -r.measured_gain_percent)
        top_measured = by_measured[0].option.key
        by_predicted = sorted(results,
                              key=lambda r: -r.predicted_gain_percent)
        top3_predicted = {r.option.key for r in by_predicted[:3]}
        assert top_measured in top3_predicted
