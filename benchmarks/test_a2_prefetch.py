"""A2 — Code prefetch ablation (DESIGN.md Section 6).

Quantifies the speculative next-line prefetch of the flash code port —
one of the "pre-fetch buffers" the paper names on the CPU→flash path — on
the engine workload and on the I-cache-thrash microkernel (its best case:
a sequential miss stream).
"""

import pytest

from repro.core.optimization import CpiStack
from repro.soc.config import tc1797_config
from repro.soc.device import Soc
from repro.workloads import micro
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 150_000


def run_experiment():
    rows = {}
    for prefetch in (True, False):
        config = tc1797_config()
        config.flash.prefetch_enabled = prefetch

        device = EngineControlScenario().build(config, {}, seed=31)
        device.run(CYCLES)
        stack = CpiStack.from_counts(device.oracle(), device.cycle, config)

        soc = Soc(config, seed=31)
        soc.load_program(micro.icache_thrash_kernel(footprint_kb=24))
        soc.run(60_000)
        micro_stack = CpiStack.from_counts(soc.oracle(), soc.cycle, config)

        rows[prefetch] = {
            "engine_ipc": stack.ipc,
            "engine_fetch_cpi": stack.components["fetch_stall"],
            "thrash_ipc": micro_stack.ipc,
        }
    return rows


@pytest.mark.benchmark(group="a2")
def test_a2_prefetch_ablation(benchmark):
    rows = once(benchmark, run_experiment)
    lines = [f"{'prefetch':<10}{'engine IPC':>12}{'engine fetch CPI':>18}"
             f"{'thrash-kernel IPC':>19}"]
    for prefetch, r in rows.items():
        lines.append(f"{str(prefetch):<10}{r['engine_ipc']:>12.4f}"
                     f"{r['engine_fetch_cpi']:>18.4f}"
                     f"{r['thrash_ipc']:>19.4f}")
    gain = (rows[True]["engine_ipc"] / rows[False]["engine_ipc"] - 1) * 100
    lines.append(f"prefetch is worth {gain:.1f}% IPC on the engine workload")
    emit("A2", "flash code-prefetch ablation", lines)

    assert rows[True]["engine_ipc"] > rows[False]["engine_ipc"]
    assert (rows[True]["engine_fetch_cpi"]
            < rows[False]["engine_fetch_cpi"] * 0.8)
    assert rows[True]["thrash_ipc"] > rows[False]["thrash_ipc"]
