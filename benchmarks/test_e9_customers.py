"""E9 — Multi-customer application profiles (paper Section 4).

"from a microcontroller manufacturer perspective there are many customers
and many applications ... Analysis of the application profiles of the
different customer applications (different access rates, access localities,
access dependencies due to the different HW/SW mappings) with the target of
further optimization of the hardware for the future automotive
applications."

Profiles a generated population of customers, prints the profile matrix,
and checks that the architect's conclusion (which option family wins) is a
population property, stable across the powertrain customers.
"""

import pytest

from repro.core.optimization import (CpiStack, OptionEvaluator,
                                     hardware_options)
from repro.soc.config import tc1797_config
from repro.soc.kernel import signals
from repro.workloads import CustomerGenerator

from _common import emit, once

CYCLES = 120_000
N_CUSTOMERS = 8
RANK_WORK = 80_000

PROFILE_COLUMNS = [
    ("I$miss", signals.ICACHE_MISS),
    ("flashD", signals.PFLASH_DATA_ACCESS),
    ("dspr", signals.DSPR_ACCESS),
    ("lmu", signals.LMU_ACCESS),
    ("irq", signals.IRQ_TAKEN),
]


def run_experiment():
    customers = CustomerGenerator(seed=42).generate(N_CUSTOMERS)
    profiles = []
    for customer in customers:
        device = customer.build(tc1797_config(), seed=9)
        device.run(CYCLES)
        counts = device.oracle()
        instr = max(1, counts[signals.TC_INSTR])
        stack = CpiStack.from_counts(counts, device.cycle, tc1797_config())
        profiles.append({
            "name": customer.name,
            "ipc": stack.ipc,
            "rates": {label: 100.0 * counts[sig] / instr
                      for label, sig in PROFILE_COLUMNS},
            "pcp_share": counts[signals.PCP_INSTR] / instr,
            "flash_cpi": (stack.components.get("fetch_stall", 0)
                          + stack.components.get("load_stall", 0)),
            "domain": customer.domain,
            "scenario": customer.scenario,
            "params": customer.params,
        })

    # architect step: rank hardware options for the engine customers
    rankings = {}
    engine_profiles = [p for p in profiles if p["domain"] == "engine"][:3]
    for p in engine_profiles:
        evaluator = OptionEvaluator(p["scenario"], tc1797_config(),
                                    hardware_options(),
                                    work_instructions=RANK_WORK, seed=9)
        evaluator.scenario.default_params = dict(
            evaluator.scenario.default_params)
        evaluator.scenario.default_params.update(p["params"])
        results = evaluator.evaluate()
        rankings[p["name"]] = [r.option.key for r in results]
    return profiles, rankings


@pytest.mark.benchmark(group="e9")
def test_e9_customer_profile_matrix(benchmark):
    profiles, rankings = once(benchmark, run_experiment)
    header = (f"{'customer':<26}{'IPC':>6}"
              + "".join(f"{label:>8}" for label, _ in PROFILE_COLUMNS)
              + f"{'pcp%':>7}{'flashCPI':>9}")
    lines = [header]
    for p in profiles:
        lines.append(
            f"{p['name']:<26}{p['ipc']:>6.2f}"
            + "".join(f"{p['rates'][label]:>8.2f}"
                      for label, _ in PROFILE_COLUMNS)
            + f"{100 * p['pcp_share']:>7.2f}{p['flash_cpi']:>9.3f}")
    lines.append("")
    lines.append("top-3 hardware options per engine customer "
                 "(by gain/cost):")
    for name, ranking in rankings.items():
        lines.append(f"  {name:<26}{', '.join(ranking[:3])}")
    emit("E9", "customer application profile matrix", lines)

    # diversity: customers differ materially in their profiles
    ipcs = [p["ipc"] for p in profiles]
    assert max(ipcs) - min(ipcs) > 0.1
    assert len({p["domain"] for p in profiles}) >= 2
    # HW/SW split visible: some customers offload to the PCP, some don't
    pcp_shares = [p["pcp_share"] for p in profiles]
    assert any(s > 0 for s in pcp_shares)
    # the architect's conclusion is stable: every engine customer's top-3
    # contains a flash-path option
    flash_path = {"icache_x2", "flash_25ns", "prefetch_x4", "dbuf_x4",
                  "dcache_4k", "banks_x4"}
    for name, ranking in rankings.items():
        assert set(ranking[:3]) & flash_path, name
