"""A3 — Message-encoding ablation: scalable timestamping (DESIGN.md §6).

Paper Section 3: the MCDS records "with scalable time-stamping".
Timestamps cost bits on every message; without them the rate series loses
its time axis (samples can only be ordered, not placed).  The ablation
quantifies the premium across the full profiling parameter set.
"""

import pytest

from repro.core.profiling import ProfilingSession, spec
from repro.ed.device import EdConfig
from repro.soc.config import tc1797_config
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 150_000


def run_experiment():
    rows = {}
    for timestamps in (True, False):
        scenario = EngineControlScenario(
            ed_config_overrides={"timestamps": timestamps})
        device = scenario.build(tc1797_config(), {}, seed=32)
        session = ProfilingSession(device, spec.engine_parameter_set())
        result = session.run(CYCLES)
        rows[timestamps] = {
            "bits": result.trace_bits,
            "samples": sum(len(result[name]) for name in result.names),
            "mbps": result.bandwidth_mbps(),
        }
    return rows


@pytest.mark.benchmark(group="a3")
def test_a3_timestamp_ablation(benchmark):
    rows = once(benchmark, run_experiment)
    premium = rows[True]["bits"] / rows[False]["bits"] - 1.0
    lines = [f"{'timestamps':<12}{'samples':>9}{'trace bits':>12}"
             f"{'Mbit/s':>9}"]
    for timestamps, r in rows.items():
        lines.append(f"{str(timestamps):<12}{r['samples']:>9}"
                     f"{r['bits']:>12}{r['mbps']:>9.2f}")
    lines.append(f"delta-encoded timestamps cost {premium:.0%} extra "
                 f"bandwidth and buy the time axis of every series")
    emit("A3", "scalable timestamping ablation", lines)

    assert rows[True]["samples"] == rows[False]["samples"]
    assert rows[True]["bits"] > rows[False]["bits"]
    # delta encoding keeps the premium moderate (well under 2x)
    assert premium < 0.8
