"""A4 — Interrupt-entry latency under interference (hard real-time).

The paper's target systems are "hard real-time systems, where most of the
processing activities are triggered directly by interrupts" (Section 1).
Per-SRN request lines plus cycle-level timestamps let the MCDS measure the
crank-angle service latency distribution directly — here with and without
a higher-priority sporadic burst task, the classic interference analysis
an integrator runs before signing off a schedule.
"""

import pytest

from repro.mcds.latency import LatencyProbe
from repro.soc.config import tc1797_config
from repro.soc.interrupts.icu import srn_raised_signal, srn_taken_signal
from repro.workloads.engine import EngineControlScenario

from _common import emit, once

CYCLES = 400_000


def run_experiment():
    rows = {}
    for anomaly in (False, True):
        device = EngineControlScenario().build(
            tc1797_config(),
            {"anomaly": anomaly, "anomaly_period": 45_000,
             "anomaly_len": 300},
            seed=33)
        probe = LatencyProbe(device.hub,
                             srn_raised_signal("crank"),
                             srn_taken_signal("crank"))
        device.run(CYCLES)
        rows[anomaly] = {
            "n": probe.count,
            "min": probe.min(),
            "mean": probe.mean(),
            "p95": probe.percentile(95),
            "max": probe.max(),
        }
    return rows


@pytest.mark.benchmark(group="a4")
def test_a4_interrupt_latency(benchmark):
    rows = once(benchmark, run_experiment)
    lines = [f"{'interference':<14}{'n':>4}{'min':>6}{'mean':>8}"
             f"{'p95':>7}{'max':>7}  (cycles)"]
    for anomaly, r in rows.items():
        label = "burst task" if anomaly else "none"
        lines.append(f"{label:<14}{r['n']:>4}{r['min']:>6}"
                     f"{r['mean']:>8.1f}{r['p95']:>7}{r['max']:>7}")
    lines.append("crank-angle ISR entry latency, measured on per-SRN "
                 "request/taken lines with cycle timestamps")
    emit("A4", "interrupt-entry latency under interference", lines)

    quiet, loaded = rows[False], rows[True]
    assert quiet["n"] >= 8 and loaded["n"] >= 8
    # undisturbed: entry within the pipeline-drain bound
    assert quiet["max"] <= 10
    # a higher-priority burst stretches the tail by orders of magnitude
    assert loaded["max"] > 50 * quiet["max"]
    assert loaded["min"] <= quiet["max"]   # quiet services still happen
