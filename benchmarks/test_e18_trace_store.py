"""E18 — Trace-store ingest throughput, query selectivity, diff exactness.

Four legs, each one of the trace store's load-bearing claims:

* **ingest** — a synthetic 120k-event stream (the shape a large fleet
  campaign emits: ``job.execute`` spans plus gap/profile instants) is
  streamed through a :class:`~repro.traces.TraceWriter` with its
  streaming summary enabled.  Gated on events/s against the committed
  floor in ``traces_baseline.json``.
* **query** — a 500us window over the full segment must answer by
  reading the footer plus only the overlapping column blocks: the
  instrumented reader proves ``bytes_read / file_bytes < 0.20``.
* **identity** — one small campaign run with the trace store attached
  and one without produce byte-identical payloads (canonical JSON):
  recording is observation, never participation.
* **diff** — two seeded campaign runs, the second with one customer's
  cycle budget deliberately doubled, must diff to exactly that
  customer — no false positives from wall-clock noise, because the
  diff joins on payload-derived instants only.

Outputs ``BENCH_traces.json`` at the repo root for the CI
trace-analytics lane.
"""

import gc
import json
import os
import time

import pytest

from repro import traces
from repro.fleet import CampaignSpec, run_campaign
from repro.fleet.spec import canonical_json
from repro.obs import telemetry

from _common import emit, once

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "traces_baseline.json")
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_traces.json")

INGEST_EVENTS = 120_000
CAMPAIGN_CYCLES = 6_000
SEED = 2008


def synthetic_events(total):
    """A fleet-shaped event stream: 9 spans + 1 instant per 10 events."""
    for i in range(total):
        if i % 10 == 9:
            yield {"name": "gap.recorded", "cat": "mcds", "ph": "i",
                   "s": "t", "ts": i * 5.0, "pid": 0, "tid": 0,
                   "args": {"lost": i % 3, "job": f"cust-{i % 16}"}}
        else:
            yield {"name": "job.execute", "cat": "fleet", "ph": "X",
                   "ts": i * 5.0, "dur": 4.0, "pid": 0, "tid": 0,
                   "args": {"job": f"cust-{i % 16}", "index": i}}


def run_ingest(segment_path):
    gc.collect()
    t0 = time.perf_counter()
    with traces.TraceWriter(segment_path, run_id="e18") as writer:
        for event in synthetic_events(INGEST_EVENTS):
            writer.append(event)
    wall_s = time.perf_counter() - t0
    assert writer.events_written == INGEST_EVENTS
    return {
        "events": INGEST_EVENTS,
        "wall_s": wall_s,
        "events_per_s": INGEST_EVENTS / wall_s,
        "file_bytes": os.path.getsize(segment_path),
        "bytes_per_event": os.path.getsize(segment_path) / INGEST_EVENTS,
        "blocks": len(writer._blocks),
    }


def run_query(segment_path):
    # a 500us window in the middle of a ~600ms timeline
    begin = INGEST_EVENTS * 5.0 / 2
    result = traces.query_segment(segment_path, traces.TraceQuery(
        begin_us=begin, end_us=begin + 500.0))
    assert result.events, "the window must not be empty"
    return {
        "window_us": 500.0,
        "events": len(result.events),
        "blocks_scanned": result.blocks_scanned,
        "blocks_total": result.blocks_total,
        "bytes_read": result.bytes_read,
        "file_bytes": result.file_bytes,
        "bytes_fraction": result.bytes_fraction,
    }


def payload_canon(report):
    return canonical_json([r["payload"] for r in
                           sorted(report.records,
                                  key=lambda r: r["job_id"])])


def run_identity(tmp_dir):
    spec = CampaignSpec(count=2, cycles=CAMPAIGN_CYCLES, seed=SEED,
                        ipc_resolution=256)
    bare = payload_canon(run_campaign(spec, workers=0))
    path = os.path.join(tmp_dir, "identity.rtrace")
    with telemetry(run_id="identity") as tel:
        with traces.recording(tel, path):
            stored = payload_canon(run_campaign(spec, workers=0))
    assert bare == stored, \
        "payloads diverged with the trace store attached"
    return {"jobs": 2, "identical": True,
            "payload_bytes": len(bare)}


def run_diff(tmp_dir):
    spec = CampaignSpec(count=3, cycles=CAMPAIGN_CYCLES, seed=SEED,
                        ipc_resolution=256)
    jobs = [job.to_dict() for job in spec.build_jobs()]
    perturbed = [dict(job) for job in jobs]
    perturbed[1]["cycles"] = CAMPAIGN_CYCLES * 2
    target = perturbed[1]["name"]

    segments = {}
    for label, job_list in (("before", jobs), ("after", perturbed)):
        path = os.path.join(tmp_dir, f"{label}.rtrace")
        with telemetry(run_id=label) as tel:
            with traces.recording(tel, path):
                run_campaign(CampaignSpec(jobs=job_list), workers=0)
        segments[label] = path

    diff = traces.diff_summaries(traces.summary_for(segments["before"]),
                                 traces.summary_for(segments["after"]))
    assert diff.changed_jobs == [target], \
        f"expected exactly [{target}], got {diff.changed_jobs}"
    return {
        "compared_jobs": diff.compared_jobs,
        "perturbed": target,
        "changed_jobs": diff.changed_jobs,
        "changes": len(diff.changes),
        "regressions": len(diff.regressions),
    }


@pytest.mark.benchmark(group="e18")
def test_e18_trace_store(benchmark, tmp_path):
    segment = str(tmp_path / "e18.rtrace")

    def run_experiment():
        return {
            "ingest": run_ingest(segment),
            "query": run_query(segment),
            "identity": run_identity(str(tmp_path)),
            "diff": run_diff(str(tmp_path)),
        }

    data = once(benchmark, run_experiment)
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)

    ingest, query = data["ingest"], data["query"]
    lines = [
        f"ingest: {ingest['events']} events in {ingest['wall_s']:.2f}s "
        f"= {ingest['events_per_s']:,.0f} events/s "
        f"({ingest['bytes_per_event']:.1f} B/event, "
        f"{ingest['blocks']} blocks)",
        f"query:  {query['window_us']:.0f}us window matched "
        f"{query['events']} events reading "
        f"{query['blocks_scanned']}/{query['blocks_total']} blocks, "
        f"{query['bytes_read']}/{query['file_bytes']} bytes "
        f"({query['bytes_fraction']:.1%} of the file)",
        f"identity: {data['identity']['jobs']} campaign payloads "
        f"byte-identical with the store on vs off",
        f"diff:   perturbing {data['diff']['perturbed']!r} surfaced "
        f"exactly {data['diff']['changed_jobs']} "
        f"({data['diff']['changes']} changed metrics)",
    ]
    emit("E18", "columnar trace store: ingest, query, diff", lines)

    with open(BENCH_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # acceptance gates (ISSUE): ingest throughput floor, windowed query
    # reads < 20% of the file, diff surfaces exactly the perturbation
    floor = baseline["ingest"]["events_per_s_floor"]
    assert ingest["events_per_s"] >= floor, \
        f"ingest {ingest['events_per_s']:,.0f} events/s below the " \
        f"committed floor ({floor:,.0f})"
    assert query["bytes_fraction"] < 0.20
    assert query["blocks_scanned"] < query["blocks_total"]
