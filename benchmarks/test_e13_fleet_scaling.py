"""E13 — Fleet campaign scaling over the customer population (ROADMAP).

The architect's population profiling (E9) is embarrassingly parallel
across customers: every job rebuilds its own seeded device.  E13 measures
what the ``repro.fleet`` subsystem buys: wall-clock speedup of an
N-worker campaign over the sequential 1-worker path, and the cost of a
warm-cache re-run (which must execute zero jobs).  Determinism is
asserted, not assumed — the parallel aggregate must be byte-identical to
the sequential one.
"""

import os
import tempfile
import time

import pytest

from repro.fleet import build_matrix, run_campaign
from repro.workloads import CustomerGenerator

from _common import emit, once

CYCLES = 60_000
N_CUSTOMERS = 8
WORKERS = 4
SEED = 9


def run_experiment():
    customers = CustomerGenerator(seed=42).generate(N_CUSTOMERS)
    jobs = build_matrix(customers, cycle_budgets=(CYCLES,), seed=SEED)
    with tempfile.TemporaryDirectory() as root:
        t0 = time.perf_counter()
        seq = run_campaign(jobs, workers=1,
                           campaign_dir=f"{root}/seq")
        seq_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        par = run_campaign(jobs, workers=WORKERS,
                           cache_dir=f"{root}/cache",
                           campaign_dir=f"{root}/par")
        par_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_campaign(jobs, workers=WORKERS,
                            cache_dir=f"{root}/cache",
                            campaign_dir=f"{root}/warm")
        warm_wall = time.perf_counter() - t0

        with open(seq.aggregate_path, "rb") as a, \
                open(par.aggregate_path, "rb") as b:
            identical = a.read() == b.read()
    return {
        "seq_wall": seq_wall, "par_wall": par_wall, "warm_wall": warm_wall,
        "identical": identical, "seq": seq.metrics, "par": par.metrics,
        "warm": warm.metrics,
    }


@pytest.mark.benchmark(group="e13")
def test_e13_fleet_scaling(benchmark):
    data = once(benchmark, run_experiment)
    speedup = data["seq_wall"] / data["par_wall"]
    warm_speedup = data["seq_wall"] / data["warm_wall"]
    lines = [
        f"{'campaign':<22}{'wall s':>9}{'jobs/s':>9}{'executed':>10}"
        f"{'cache':>7}{'util%':>7}",
        f"{'sequential (1 worker)':<22}{data['seq_wall']:>9.2f}"
        f"{data['seq'].jobs_per_sec:>9.2f}{data['seq'].executed:>10}"
        f"{data['seq'].cache_hits:>7}"
        f"{100 * data['seq'].worker_utilization:>7.0f}",
        f"{f'parallel ({WORKERS} workers)':<22}{data['par_wall']:>9.2f}"
        f"{data['par'].jobs_per_sec:>9.2f}{data['par'].executed:>10}"
        f"{data['par'].cache_hits:>7}"
        f"{100 * data['par'].worker_utilization:>7.0f}",
        f"{'warm-cache re-run':<22}{data['warm_wall']:>9.2f}"
        f"{data['warm'].jobs_per_sec:>9.2f}{data['warm'].executed:>10}"
        f"{data['warm'].cache_hits:>7}"
        f"{100 * data['warm'].worker_utilization:>7.0f}",
        "",
        f"host cores: {os.cpu_count()}",
        f"speedup {WORKERS} workers vs sequential: {speedup:.2f}x",
        f"warm-cache re-run vs sequential: {warm_speedup:.1f}x "
        f"({data['warm_wall'] * 1000:.0f} ms, 0 jobs executed)",
        f"parallel aggregate byte-identical to sequential: "
        f"{data['identical']}",
    ]
    emit("E13", "fleet campaign scaling & cache warm re-run", lines)

    assert data["identical"]
    assert data["warm"].executed == 0
    assert data["warm"].cache_hits == N_CUSTOMERS
    # parallel speedup needs actual cores; on a single-core host the
    # campaign still completes, it just can't overlap simulation
    if (os.cpu_count() or 1) >= 2:
        assert speedup > 1.2
    assert data["warm_wall"] < data["seq_wall"]
